//! # `dbps` — Parallelism in Database Production Systems
//!
//! Umbrella crate re-exporting the whole workspace. See the `README.md`
//! for a tour and `DESIGN.md` for the paper-to-module map.
//!
//! The sub-crates:
//!
//! * [`wm`] — working-memory substrate (typed tuples, relations, indexes,
//!   atomic deltas).
//! * [`rules`] — OPS5-flavoured rule language with a parser and builder.
//! * [`rete`] — match substrate: Rete and TREAT incremental matchers plus
//!   conflict-resolution strategies.
//! * [`lock`] — the lock manager: S/X two-phase locking and the paper's
//!   `R_c`/`R_a`/`W_a` protocol.
//! * [`engine`] — single-thread, static-parallel and dynamic-parallel
//!   engines, and the execution-semantics checker.
//! * [`sim`] — the discrete-event simulator reproducing section 5.
//! * [`obs`] — observability: transaction-lifecycle event history,
//!   phase latency histograms, per-rule tables, JSON reports.
//! * [`server`] — the multi-session front door: wire protocol,
//!   admission control / overload shedding, disconnect-safe sessions.

#![forbid(unsafe_code)]

pub use dps_core as engine;
pub use dps_lock as lock;
pub use dps_obs as obs;
pub use dps_match as rete;
pub use dps_rules as rules;
pub use dps_server as server;
pub use dps_sim as sim;
pub use dps_wm as wm;
