//! Match shards: the rule partition's class-connected components packed
//! onto N independent Rete networks.
//!
//! The coordination-avoidance rule (Bailis et al.): rules whose
//! condition classes don't overlap need no coordination at all. The
//! union-find over shared classes (the same computation
//! [`crate::PartitionedRete`] performs) yields the *finest* such
//! partition; a [`ShardPlan`] folds those components onto a bounded
//! number of shards so each shard can sit behind its own mutex with its
//! own conflict-set slice. Shard Retes are built with
//! [`Rete::with_rules`], so they emit **global** rule ids natively —
//! there is no local→global translation and no merged conflict set to
//! refresh; a shard's `conflict_set()` *is* the authoritative slice for
//! its rules.
//!
//! [`ShardedRete`] is the serial composition of a plan and its Retes —
//! the differential-testing vehicle (sharded ≡ monolithic, see
//! `tests/match_shard.rs`) and the substrate `dps-core`'s parallel
//! engine wraps one mutex around per shard.

use std::collections::{BTreeSet, HashMap};

use dps_rules::analysis::{commutes, rule_access, Granularity};
use dps_rules::{Rule, RuleId, RuleSet};
use dps_wm::{Atom, Change, WorkingMemory};

use crate::{InstKey, Matcher, Rete};

/// Default shard count for the sharded match pipeline. Eight matches
/// the workspace's other sharding defaults; the plan clamps to the
/// number of class-connected components, so small rule sets never pay
/// for empty shards.
pub const DEFAULT_MATCH_SHARDS: usize = 8;

/// Classes a rule mentions anywhere (conditions — positive and negated —
/// and `make` targets).
pub(crate) fn rule_classes(rule: &Rule) -> BTreeSet<Atom> {
    let mut out: BTreeSet<Atom> = rule
        .conditions
        .iter()
        .map(|c| c.ce().class.clone())
        .collect();
    for action in &rule.actions {
        if let dps_rules::Action::Make { class, .. } = action {
            out.insert(class.clone());
        }
    }
    out
}

/// Union-find partition of rule indices joined through shared classes:
/// returns the class-connected components, deterministically ordered by
/// their smallest rule index.
pub(crate) fn class_components(rules: &RuleSet) -> Vec<Vec<usize>> {
    let n = rules.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut class_owner: HashMap<Atom, usize> = HashMap::new();
    for (i, rule) in rules.rules().iter().enumerate() {
        for class in rule_classes(rule) {
            match class_owner.get(&class) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    class_owner.insert(class, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Per-rule elidability from the static commute matrix: a rule may skip
/// the lock manager iff *every* pair inside its class-connected
/// component — the diagonal included — commutes
/// ([`dps_rules::analysis::commutes`] at class+attribute granularity).
/// All-pairs is the sound quantifier: concurrency is per component, so
/// any two firings of component rules can interleave, and a single
/// non-commuting pair means lock-holding and lock-skipping firings
/// could meet on the same resource.
fn elidable_components(rules: &RuleSet, components: &[Vec<usize>]) -> Vec<bool> {
    let accesses: Vec<_> = rules.rules().iter().map(rule_access).collect();
    let mut elidable = vec![false; rules.len()];
    for members in components {
        let all_commute = members.iter().enumerate().all(|(k, &i)| {
            members[k..]
                .iter()
                .all(|&j| commutes(&accesses[i], &accesses[j], Granularity::ClassAttribute))
        });
        if all_commute {
            for &m in members {
                elidable[m] = true;
            }
        }
    }
    elidable
}

/// The static shard layout: which rules live on which shard, and which
/// shards a working-memory class routes to.
///
/// Components are assigned round-robin in deterministic component order;
/// the shard count is clamped to the component count (a plan never
/// contains an empty shard, and `shards = 1` collapses to the
/// monolithic layout — the recovery knob the benchmarks measure).
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// `rules_per_shard[s]` = global rule ids on shard `s`, ascending.
    rules_per_shard: Vec<Vec<RuleId>>,
    /// class → shards whose rules mention it (ascending, deduplicated).
    routes: HashMap<Atom, Vec<usize>>,
    /// rule index → owning shard.
    shard_of_rule: Vec<usize>,
    /// Number of class-connected components (≥ shard count).
    components: usize,
    /// rule index → provably elidable (see [`ShardPlan::elidable`]).
    elidable_rule: Vec<bool>,
}

impl ShardPlan {
    /// Computes the plan for `rules` over at most `shards` shards.
    pub fn new(rules: &RuleSet, shards: usize) -> Self {
        let components = class_components(rules);
        let n_components = components.len();
        let n_shards = shards.max(1).min(n_components.max(1));
        let mut rules_per_shard: Vec<Vec<RuleId>> = vec![Vec::new(); n_shards];
        let mut shard_of_rule = vec![0usize; rules.len()];
        let mut routes: HashMap<Atom, Vec<usize>> = HashMap::new();
        for (ci, members) in components.iter().enumerate() {
            let s = ci % n_shards;
            for &m in members {
                rules_per_shard[s].push(RuleId(m as u32));
                shard_of_rule[m] = s;
                for class in rule_classes(&rules.rules()[m]) {
                    let shards = routes.entry(class).or_default();
                    if !shards.contains(&s) {
                        shards.push(s);
                    }
                }
            }
        }
        for shard_rules in &mut rules_per_shard {
            shard_rules.sort_unstable();
        }
        for shards in routes.values_mut() {
            shards.sort_unstable();
        }
        let elidable_rule = elidable_components(rules, &components);
        ShardPlan {
            rules_per_shard,
            routes,
            shard_of_rule,
            components: n_components,
            elidable_rule,
        }
    }

    /// Number of shards in the plan (≥ 1, ≤ requested, ≤ components).
    pub fn shards(&self) -> usize {
        self.rules_per_shard.len()
    }

    /// Number of class-connected components the plan was folded from.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Global rule ids on shard `s`, ascending.
    pub fn rules_of(&self, s: usize) -> &[RuleId] {
        &self.rules_per_shard[s]
    }

    /// The shard owning a rule.
    pub fn shard_of(&self, rule: RuleId) -> usize {
        self.shard_of_rule
            .get(rule.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// `true` when every firing of `rule` provably commutes with every
    /// firing that can run concurrently — i.e. the static commute matrix
    /// over the rule's class-connected component is all-true (including
    /// the diagonal). Rules in *other* components share no classes, so
    /// they commute trivially; a whole component therefore either elides
    /// or locks — never a mix, which keeps the §4 doom protocol's
    /// lock-order argument intact for the locking rules.
    pub fn elidable(&self, rule: RuleId) -> bool {
        self.elidable_rule
            .get(rule.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Number of rules the commute matrix proved elidable.
    pub fn elidable_count(&self) -> usize {
        self.elidable_rule.iter().filter(|&&e| e).count()
    }

    /// Shards whose alpha classes intersect a change batch (ascending,
    /// deduplicated). Classes no rule mentions route nowhere.
    pub fn affected(&self, changes: &[Change]) -> Vec<usize> {
        let mut out: Vec<usize> = changes
            .iter()
            .filter_map(|c| self.routes.get(&c.wme().data.class))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Builds the per-shard Rete networks over the initial working
    /// memory, in shard order. Each network speaks global rule ids
    /// (see [`Rete::with_rules`]).
    pub fn build(&self, rules: &RuleSet, wm: &WorkingMemory) -> Vec<Rete> {
        (0..self.shards())
            .map(|s| {
                Rete::with_rules(
                    self.rules_of(s)
                        .iter()
                        .map(|&id| (id, rules.get(id).expect("plan ids come from this set"))),
                    wm,
                )
            })
            .collect()
    }
}

/// A plan plus its per-shard Retes, driven serially: the reference
/// composition the equivalence property tests pin against a monolithic
/// [`Rete`], and the shape `dps-core` parallelises by giving each shard
/// its own mutex and delta cursor.
pub struct ShardedRete {
    plan: ShardPlan,
    shards: Vec<Rete>,
}

impl ShardedRete {
    /// Partitions `rules` onto at most `shards` shards and loads the
    /// initial working memory into every shard network.
    pub fn new(rules: &RuleSet, wm: &WorkingMemory, shards: usize) -> Self {
        let plan = ShardPlan::new(rules, shards);
        let shards = plan.build(rules, wm);
        ShardedRete { plan, shards }
    }

    /// The shard layout.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// One shard's network (its conflict set is the authoritative slice
    /// for that shard's rules).
    pub fn shard(&self, s: usize) -> &Rete {
        &self.shards[s]
    }

    /// Applies a change batch, fanning out only to affected shards;
    /// returns how many shards actually ran their networks.
    pub fn apply(&mut self, changes: &[Change]) -> usize {
        let affected = self.plan.affected(changes);
        for &s in &affected {
            self.shards[s].apply(changes);
        }
        affected.len()
    }

    /// Total conflict-set size across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.conflict_set().len()).sum()
    }

    /// `true` when every shard's conflict-set slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The union of the per-shard conflict-set slices, as keys (shards
    /// are disjoint by construction, so this is a disjoint union).
    pub fn conflict_keys(&self) -> BTreeSet<InstKey> {
        self.shards
            .iter()
            .flat_map(|s| s.conflict_set().iter().map(|i| i.key()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::WmeData;

    const CORPUS: &str = r#"
        (p fam1-a (a ^k <x>) (b ^k <x>) --> (remove 1))
        (p fam1-b (b ^k <x>) --> (remove 1))
        (p fam2-a (c ^k <x>) -(d ^k <x>) --> (remove 1))
        (p fam3-a (e ^k <x>) --> (make f ^k <x>))
        (p fam3-b (f ^k <x>) --> (remove 1))
    "#;

    #[test]
    fn plan_folds_components_round_robin() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        // 3 components ({a,b}, {c,d}, {e,f}) folded onto 2 shards.
        let plan = ShardPlan::new(&rules, 2);
        assert_eq!(plan.components(), 3);
        assert_eq!(plan.shards(), 2);
        let total: usize = (0..plan.shards()).map(|s| plan.rules_of(s).len()).sum();
        assert_eq!(total, rules.len());
        // Every rule's owning shard agrees with the per-shard lists.
        for s in 0..plan.shards() {
            for &id in plan.rules_of(s) {
                assert_eq!(plan.shard_of(id), s);
            }
        }
    }

    #[test]
    fn shard_count_clamps_to_components() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let plan = ShardPlan::new(&rules, 64);
        assert_eq!(plan.shards(), 3, "no empty shards");
        assert_eq!(ShardPlan::new(&rules, 1).shards(), 1);
    }

    #[test]
    fn routes_cover_negated_and_make_classes() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let plan = ShardPlan::new(&rules, 3);
        let mut wm = WorkingMemory::new();
        // `d` appears only inside a negated CE; `f` is a make target.
        for class in ["a", "b", "c", "d", "e", "f"] {
            let w = wm.insert_full(WmeData::new(class).with("k", 1i64));
            assert_eq!(
                plan.affected(&[Change::Added(w)]).len(),
                1,
                "class {class} must route to its component's shard"
            );
        }
        // Unknown classes route nowhere.
        let w = wm.insert_full(WmeData::new("zzz-unknown"));
        assert!(plan.affected(&[Change::Added(w)]).is_empty());
    }

    #[test]
    fn sharded_initial_load_matches_monolithic() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("b").with("k", 1i64));
        wm.insert(WmeData::new("c").with("k", 1i64));
        wm.insert(WmeData::new("e").with("k", 2i64));
        for shards in [1, 2, 3, 8] {
            let sharded = ShardedRete::new(&rules, &wm, shards);
            let mono = Rete::new(&rules, &wm);
            let mono_keys: BTreeSet<InstKey> =
                mono.conflict_set().iter().map(|i| i.key()).collect();
            assert_eq!(sharded.conflict_keys(), mono_keys, "{shards} shards");
            assert_eq!(sharded.len(), mono.conflict_set().len());
        }
    }

    #[test]
    fn global_rule_ids_survive_sharding() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("e").with("k", 7i64));
        let sharded = ShardedRete::new(&rules, &wm, 3);
        let fam3 = rules.id_of("fam3-a").unwrap();
        let shard = sharded.shard(sharded.plan().shard_of(fam3));
        let inst = shard.conflict_set().iter().next().unwrap();
        assert_eq!(inst.rule, fam3, "shard Retes speak global ids");
    }

    #[test]
    fn commute_matrix_marks_counter_and_make_components() {
        let rules = RuleSet::parse(
            r#"
            (p bump (ctr ^n <n> ^more yes) --> (modify 1 ^n (+ <n> 1)))
            (p emit (src ^k <x>) --> (make sink ^k <x>))
            (p store (cell ^v <v>) --> (modify 1 ^v 0))
            "#,
        )
        .unwrap();
        let plan = ShardPlan::new(&rules, 8);
        assert!(plan.elidable(rules.id_of("bump").unwrap()), "counter bump");
        assert!(plan.elidable(rules.id_of("emit").unwrap()), "pure make");
        assert!(
            !plan.elidable(rules.id_of("store").unwrap()),
            "absolute write never elides"
        );
        assert_eq!(plan.elidable_count(), 2);
    }

    #[test]
    fn one_bad_pair_locks_the_whole_component() {
        // bump alone would elide, but it shares `ctr` with an absolute
        // writer: the component's matrix has a false entry, so both lock.
        let rules = RuleSet::parse(
            r#"
            (p bump (ctr ^n <n>) --> (modify 1 ^n (+ <n> 1)))
            (p reset (ctr ^n > 100) --> (modify 1 ^n 0))
            "#,
        )
        .unwrap();
        let plan = ShardPlan::new(&rules, 8);
        assert_eq!(plan.elidable_count(), 0);
    }

    #[test]
    fn legacy_corpus_is_never_elidable() {
        // Removes and a negated CE throughout: the matrix proves nothing.
        let rules = RuleSet::parse(CORPUS).unwrap();
        let plan = ShardPlan::new(&rules, 3);
        assert_eq!(plan.elidable_count(), 0);
    }

    #[test]
    fn unaffected_shards_do_not_run() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        let mut sharded = ShardedRete::new(&rules, &wm, 3);
        let w = wm.insert_full(WmeData::new("b").with("k", 0i64));
        assert_eq!(sharded.apply(&[Change::Added(w)]), 1, "one shard fans in");
        assert_eq!(sharded.len(), 1, "only fam1-b fires");
    }
}
