//! Conflict-resolution strategies — the **select** phase.
//!
//! The paper's correctness framework (§3.2) is deliberately independent of
//! the selection heuristic: "heuristics such as LEX, MEA, and others can
//! be incorporated as devices to favor some sequences over others" but
//! "they do not rule out any execution sequence entirely". Accordingly
//! every strategy here picks *some* member of the conflict set, and the
//! engines treat the choice as a pluggable policy.

use std::cmp::Ordering;
use std::collections::HashSet;

use dps_wm::Timestamp;

use crate::{ConflictSet, InstKey, Instantiation};

/// A conflict-resolution strategy.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Deterministic first-in (by instantiation key order).
    Fifo,
    /// OPS5 LEX: order instantiations by their recency vectors
    /// (matched-WME timestamps, descending) compared lexicographically;
    /// ties broken by specificity (more matched WMEs first), then key.
    Lex,
    /// OPS5 MEA: the recency of the *first* condition element dominates,
    /// then LEX applies.
    Mea,
    /// Highest salience first; ties resolved by LEX.
    Salience,
    /// Uniformly random choice with a deterministic xorshift state —
    /// reproducible given the seed, and the work-horse of the
    /// execution-semantics property tests (random valid sequences).
    Random(u64),
}

fn lex_cmp(a: &Instantiation, b: &Instantiation) -> Ordering {
    let (ra, rb) = (a.recency(), b.recency());
    // Lexicographic on descending timestamp vectors: larger vector wins.
    for (x, y) in ra.iter().zip(rb.iter()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    ra.len()
        .cmp(&rb.len())
        .then_with(|| a.key().cmp(&b.key()).reverse())
}

fn mea_cmp(a: &Instantiation, b: &Instantiation) -> Ordering {
    let fa: Timestamp = a.first_ce_recency();
    let fb: Timestamp = b.first_ce_recency();
    fa.cmp(&fb).then_with(|| lex_cmp(a, b))
}

impl Strategy {
    /// Picks the dominant instantiation among those not refracted
    /// (already fired and still present). Returns `None` when every
    /// instantiation is refracted or the set is empty — the paper's
    /// termination condition.
    pub fn select<'a>(
        &mut self,
        conflict: &'a ConflictSet,
        refracted: &HashSet<InstKey>,
    ) -> Option<&'a Instantiation> {
        let mut candidates = conflict.iter().filter(|i| !refracted.contains(&i.key()));
        match self {
            Strategy::Fifo => candidates.next(),
            Strategy::Lex => candidates.max_by(|a, b| lex_cmp(a, b)),
            Strategy::Mea => candidates.max_by(|a, b| mea_cmp(a, b)),
            Strategy::Salience => {
                candidates.max_by(|a, b| a.salience.cmp(&b.salience).then_with(|| lex_cmp(a, b)))
            }
            Strategy::Random(state) => {
                let all: Vec<&Instantiation> = candidates.collect();
                if all.is_empty() {
                    return None;
                }
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                Some(all[(r % all.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_rules::{Bindings, RuleId};
    use dps_wm::{Wme, WmeData, WmeId};

    fn wme(id: u64, ts: u64) -> Wme {
        Wme {
            id: WmeId(id),
            data: WmeData::new("c"),
            timestamp: ts,
        }
    }

    fn inst(rule: u32, salience: i32, stamps: &[u64]) -> Instantiation {
        Instantiation {
            rule: RuleId(rule),
            wmes: stamps
                .iter()
                .enumerate()
                .map(|(i, &t)| wme(100 + i as u64 + 10 * rule as u64, t))
                .collect(),
            bindings: Bindings::new(),
            salience,
        }
    }

    fn set(insts: Vec<Instantiation>) -> ConflictSet {
        let mut cs = ConflictSet::new();
        for i in insts {
            cs.insert(i);
        }
        cs
    }

    #[test]
    fn empty_set_selects_none() {
        let cs = ConflictSet::new();
        for mut s in [
            Strategy::Fifo,
            Strategy::Lex,
            Strategy::Mea,
            Strategy::Random(1),
        ] {
            assert!(s.select(&cs, &HashSet::new()).is_none());
        }
    }

    #[test]
    fn lex_prefers_most_recent() {
        let cs = set(vec![inst(0, 0, &[1, 2]), inst(1, 0, &[5, 3])]);
        let picked = Strategy::Lex.select(&cs, &HashSet::new()).unwrap();
        assert_eq!(picked.rule, RuleId(1));
    }

    #[test]
    fn lex_breaks_ties_on_second_element() {
        let cs = set(vec![inst(0, 0, &[5, 2]), inst(1, 0, &[5, 4])]);
        let picked = Strategy::Lex.select(&cs, &HashSet::new()).unwrap();
        assert_eq!(picked.rule, RuleId(1));
    }

    #[test]
    fn lex_prefers_more_specific_on_equal_prefix() {
        let cs = set(vec![inst(0, 0, &[5]), inst(1, 0, &[5, 1])]);
        let picked = Strategy::Lex.select(&cs, &HashSet::new()).unwrap();
        assert_eq!(picked.rule, RuleId(1));
    }

    #[test]
    fn mea_dominated_by_first_ce() {
        // Rule 0's first CE is older but its overall recency is higher.
        let cs = set(vec![inst(0, 0, &[2, 9]), inst(1, 0, &[5, 1])]);
        assert_eq!(
            Strategy::Mea.select(&cs, &HashSet::new()).unwrap().rule,
            RuleId(1)
        );
        assert_eq!(
            Strategy::Lex.select(&cs, &HashSet::new()).unwrap().rule,
            RuleId(0)
        );
    }

    #[test]
    fn salience_dominates_lex() {
        let cs = set(vec![inst(0, 10, &[1]), inst(1, 0, &[9])]);
        assert_eq!(
            Strategy::Salience
                .select(&cs, &HashSet::new())
                .unwrap()
                .rule,
            RuleId(0)
        );
    }

    #[test]
    fn refraction_excludes_fired() {
        let cs = set(vec![inst(0, 0, &[1]), inst(1, 0, &[9])]);
        let top = Strategy::Lex.select(&cs, &HashSet::new()).unwrap().key();
        let refracted: HashSet<InstKey> = [top].into_iter().collect();
        assert_eq!(
            Strategy::Lex.select(&cs, &refracted).unwrap().rule,
            RuleId(0)
        );
        let both: HashSet<InstKey> = cs.iter().map(|i| i.key()).collect();
        assert!(Strategy::Lex.select(&cs, &both).is_none());
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let cs = set(vec![inst(0, 0, &[1]), inst(1, 0, &[2]), inst(2, 0, &[3])]);
        let mut s1 = Strategy::Random(42);
        let mut s2 = Strategy::Random(42);
        for _ in 0..20 {
            let a = s1.select(&cs, &HashSet::new()).unwrap().key();
            let b = s2.select(&cs, &HashSet::new()).unwrap().key();
            assert_eq!(a, b);
        }
        // Different seeds eventually differ.
        let mut s3 = Strategy::Random(7);
        let picks: HashSet<u32> = (0..50)
            .map(|_| s3.select(&cs, &HashSet::new()).unwrap().rule.0)
            .collect();
        assert!(picks.len() > 1, "random should spread over candidates");
    }

    #[test]
    fn fifo_is_deterministic_first() {
        let cs = set(vec![inst(1, 0, &[9]), inst(0, 0, &[1])]);
        assert_eq!(
            Strategy::Fifo.select(&cs, &HashSet::new()).unwrap().rule,
            RuleId(0)
        );
    }
}
