//! The Rete network (Forgy 1982): incremental many-pattern/many-object
//! matching with partial-match state.
//!
//! Structure (following the classic description, with the negation
//! handling of Doorenbos' formulation):
//!
//! * The **alpha network** ([`crate::AlphaNetwork`]) evaluates class and
//!   constant tests once per WME and stores survivors in shared alpha
//!   memories.
//! * The **beta network** is a DAG of *sources* (token holders) and
//!   *joins*. A source is the top memory (holding the dummy token), a
//!   beta memory, or a negative node (holding the tokens whose negated
//!   pattern currently has **no** match). Join nodes test variable
//!   consistency between a source's tokens and an alpha memory and feed
//!   the next beta memory. Production nodes materialise complete tokens
//!   as [`Instantiation`]s in the conflict set.
//! * **Sharing**: alpha memories are shared by constant-test signature;
//!   join, memory and negative nodes are shared by
//!   `(parent, alpha memory, tests)`, so rules with common LHS prefixes
//!   share beta state too.
//!
//! **Hash-indexed joins**: when a join's tests include an equality
//! against an earlier condition's attribute, both sides are indexed —
//! the alpha memory by the tested attribute's value and the join by the
//! tokens' key value — so activations probe a bucket instead of
//! scanning the whole memory (keys are normalised so the strict hash
//! lookup coincides with the matcher's numerically coercing equality).
//!
//! Removal is exact (no recomputation): every token records its parent
//! and children, a WME-to-token index locates all tokens carrying a
//! retracted WME, and negative nodes keep per-token join-result sets so a
//! retraction can *enable* previously blocked tokens.

use std::collections::{BTreeSet, HashMap, HashSet};

use dps_rules::{Bindings, Condition, Predicate, Rule, RuleId, RuleSet, TestAtom, VarName};
use dps_wm::{Atom, Change, Timestamp, Value, Wme, WmeId, WorkingMemory};

use crate::alpha::index_key;
use crate::{AlphaMemId, AlphaNetwork, ConflictSet, Matcher};

/// Index of a node in the Rete graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct NodeId(usize);

/// Identifier of a token. Monotonic, never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct TokenId(u64);

/// Where a join test reads its right-hand value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum TestTarget {
    /// Another attribute of the candidate WME itself (intra-CE test).
    NewAttr(Atom),
    /// An attribute of the WME matched at an earlier condition.
    Token {
        /// Condition index (0-based over *all* conditions).
        cond: usize,
        /// Attribute of that WME.
        attr: Atom,
    },
}

/// One variable-consistency test evaluated at a join or negative node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct JoinTest {
    /// Attribute of the candidate WME (left operand).
    new_attr: Atom,
    /// Predicate, applied as `predicate(new_value, target_value)`.
    predicate: Predicate,
    /// Right operand source.
    target: TestTarget,
}

/// A token: a partial match covering conditions `0..=level`.
#[derive(Clone, Debug)]
struct Token {
    parent: Option<TokenId>,
    /// The WME matched at this token's condition (`None` for the dummy
    /// token and for negative-node output tokens).
    wme: Option<Wme>,
    /// Node that owns (stores) this token.
    owner: NodeId,
    children: Vec<TokenId>,
}

#[derive(Clone, Debug)]
enum Node {
    /// Token holder (top memory or beta memory). Children are join,
    /// negative and production nodes.
    Memory {
        tokens: BTreeSet<TokenId>,
        children: Vec<NodeId>,
    },
    /// Join between `parent` source tokens and `amem`. Its child is the
    /// beta memory receiving matched (token, wme) pairs. When the tests
    /// include an equality against an earlier condition's attribute, the
    /// join is *hash-indexed*: `index` buckets the parent's tokens by
    /// their key value, and the alpha memory carries a matching value
    /// index, so activations probe instead of scanning.
    Join {
        parent: NodeId,
        amem: AlphaMemId,
        tests: Vec<JoinTest>,
        out: NodeId,
        index: Option<JoinIndex>,
    },
    /// Negated condition. Owns an *output* token per input token whose
    /// join against `amem` is empty; children are like a memory's.
    Negative {
        amem: AlphaMemId,
        tests: Vec<JoinTest>,
        /// input token → (matching wme ids, output token if none match)
        entries: HashMap<TokenId, NegEntry>,
        /// Output tokens (for source iteration by downstream joins).
        tokens: BTreeSet<TokenId>,
        children: Vec<NodeId>,
    },
    /// Terminal node: materialises instantiations.
    Production {
        rule: RuleId,
        salience: i32,
        /// var → (condition index, attribute) for binding extraction.
        binding_map: Vec<(VarName, usize, Atom)>,
        /// Which condition indices are positive (for wme extraction).
        positive_conds: Vec<usize>,
        /// final token → instantiation key in the conflict set.
        insts: HashMap<TokenId, crate::InstKey>,
    },
}

/// Hash support for an equality join: the first `Eq`-against-token test
/// becomes the probe key on both sides.
#[derive(Clone, Debug)]
struct JoinIndex {
    /// Attribute of the candidate WME (alpha side).
    new_attr: Atom,
    /// Condition index of the token-side operand.
    cond: usize,
    /// Attribute of the token-side operand.
    attr: Atom,
    /// Normalised token-side key → tokens of the parent source.
    tokens_by_key: HashMap<Value, BTreeSet<TokenId>>,
}

#[derive(Clone, Debug, Default)]
struct NegEntry {
    results: HashSet<WmeId>,
    out: Option<TokenId>,
}

/// Statistics about network size and activity, for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReteStats {
    /// Distinct alpha memories.
    pub alpha_memories: usize,
    /// Beta-level nodes (memories + negatives).
    pub beta_nodes: usize,
    /// Join nodes.
    pub join_nodes: usize,
    /// Join nodes with a hash index (equality probe instead of scan).
    pub indexed_joins: usize,
    /// Production nodes.
    pub production_nodes: usize,
    /// Live tokens (partial matches currently stored).
    pub tokens: usize,
    /// Right activations processed since construction.
    pub right_activations: u64,
    /// Left activations processed since construction.
    pub left_activations: u64,
}

/// The Rete matcher. See the module docs.
#[derive(Clone, Debug)]
pub struct Rete {
    alpha: AlphaNetwork,
    nodes: Vec<Node>,
    /// Join/negative nodes attached to each alpha memory, in build order.
    amem_successors: HashMap<AlphaMemId, Vec<NodeId>>,
    /// Sharing keys for join/negative/memory nodes.
    join_share: HashMap<(NodeId, AlphaMemId, Vec<JoinTest>, bool), NodeId>,
    tokens: HashMap<TokenId, Token>,
    next_token: u64,
    /// Tokens whose own `wme` is this id.
    tokens_by_wme: HashMap<WmeId, HashSet<TokenId>>,
    /// (negative node, input token) pairs whose result set contains the id.
    neg_by_wme: HashMap<WmeId, HashSet<(NodeId, TokenId)>>,
    conflict: ConflictSet,
    stats: ReteStats,
    top: NodeId,
    dummy: TokenId,
}

impl Rete {
    /// Builds the network for `rules` and loads the initial working
    /// memory.
    pub fn new(rules: &RuleSet, wm: &WorkingMemory) -> Self {
        Rete::with_rules(rules.iter(), wm)
    }

    /// Builds the network for an arbitrary `(RuleId, &Rule)` collection
    /// and loads the initial working memory.
    ///
    /// The given ids are stored verbatim in the production nodes, so the
    /// resulting conflict set speaks the *caller's* id space. This is
    /// what lets a match shard own a Rete over a subset of the rule set
    /// while still emitting global rule ids — no translation layer, no
    /// re-merge (contrast [`crate::PartitionedRete`], which pays a
    /// local→global rewrite per affected component).
    pub fn with_rules<'a>(
        rules: impl IntoIterator<Item = (RuleId, &'a Rule)>,
        wm: &WorkingMemory,
    ) -> Self {
        let mut rete = Rete {
            alpha: AlphaNetwork::default(),
            nodes: vec![Node::Memory {
                tokens: BTreeSet::new(),
                children: Vec::new(),
            }],
            amem_successors: HashMap::new(),
            join_share: HashMap::new(),
            tokens: HashMap::new(),
            next_token: 0,
            tokens_by_wme: HashMap::new(),
            neg_by_wme: HashMap::new(),
            conflict: ConflictSet::new(),
            stats: ReteStats::default(),
            top: NodeId(0),
            dummy: TokenId(0),
        };
        // Install the dummy token.
        let dummy = rete.alloc_token(None, None, rete.top);
        rete.dummy = dummy;
        if let Node::Memory { tokens, .. } = &mut rete.nodes[0] {
            tokens.insert(dummy);
        }
        for (id, rule) in rules {
            rete.compile_rule(id, rule);
        }
        for wme in wm.iter() {
            rete.add_wme(wme.clone());
        }
        rete
    }

    /// Current network statistics.
    pub fn stats(&self) -> ReteStats {
        let mut s = self.stats;
        s.alpha_memories = self.alpha.memory_count();
        s.tokens = self.tokens.len() - 1; // exclude the dummy
        for n in &self.nodes {
            match n {
                Node::Memory { .. } | Node::Negative { .. } => s.beta_nodes += 1,
                Node::Join { index, .. } => {
                    s.join_nodes += 1;
                    if index.is_some() {
                        s.indexed_joins += 1;
                    }
                }
                Node::Production { .. } => s.production_nodes += 1,
            }
        }
        s
    }

    // -------------------------------------------------------------
    // Compilation
    // -------------------------------------------------------------

    fn compile_rule(&mut self, id: RuleId, rule: &Rule) {
        // First Eq occurrence of each variable in a positive CE.
        let mut binding_map: Vec<(VarName, usize, Atom)> = Vec::new();
        fn bound_at(map: &[(VarName, usize, Atom)], var: &VarName) -> Option<(usize, Atom)> {
            map.iter()
                .find(|(v, _, _)| v == var)
                .map(|(_, c, a)| (*c, a.clone()))
        }

        let mut source = self.top;
        let mut positive_conds = Vec::new();
        for (ci, cond) in rule.conditions.iter().enumerate() {
            let ce = cond.ce();
            let amem = self.alpha.register(ce);
            // Build the variable-consistency tests for this CE.
            let mut tests = Vec::new();
            // Local (within this CE) first occurrences, for intra-CE tests
            // and for locally bound negative-CE variables.
            let mut local_first: Vec<(VarName, Atom)> = Vec::new();
            for t in &ce.tests {
                let TestAtom::Var(var) = &t.operand else {
                    continue;
                };
                let global = bound_at(&binding_map, var);
                let local = local_first
                    .iter()
                    .find(|(v, _)| v == var)
                    .map(|(_, a)| a.clone());
                match (t.predicate, global, local) {
                    // Binding occurrence: variable not seen anywhere yet.
                    (Predicate::Eq, None, None) => {
                        local_first.push((var.clone(), t.attr.clone()));
                        if let Condition::Pos(_) = cond {
                            binding_map.push((var.clone(), ci, t.attr.clone()));
                        }
                    }
                    // Test against an earlier condition's binding.
                    (p, Some((cond_idx, attr)), None) => {
                        tests.push(JoinTest {
                            new_attr: t.attr.clone(),
                            predicate: p,
                            target: TestTarget::Token {
                                cond: cond_idx,
                                attr,
                            },
                        });
                    }
                    // Intra-CE test (local occurrence takes precedence:
                    // inside a negated CE the local binding shadows).
                    (p, _, Some(local_attr)) => {
                        tests.push(JoinTest {
                            new_attr: t.attr.clone(),
                            predicate: p,
                            target: TestTarget::NewAttr(local_attr),
                        });
                    }
                    // Validation guarantees non-Eq predicates are bound.
                    (_, None, None) => unreachable!("validated rule has no unbound test"),
                }
            }

            match cond {
                Condition::Pos(_) => {
                    positive_conds.push(ci);
                    source = self.get_or_make_join(source, amem, tests);
                }
                Condition::Neg(_) => {
                    source = self.get_or_make_negative(source, amem, tests);
                }
            }
        }

        // Attach the production node.
        let pnode = NodeId(self.nodes.len());
        self.nodes.push(Node::Production {
            rule: id,
            salience: rule.salience,
            binding_map,
            positive_conds,
            insts: HashMap::new(),
        });
        self.add_child(source, pnode);
        // Activate for tokens already in the source (sharing may reuse a
        // populated subnetwork).
        for t in self.source_tokens(source) {
            self.deliver_to_production(pnode, t);
        }
    }

    fn get_or_make_join(
        &mut self,
        parent: NodeId,
        amem: AlphaMemId,
        tests: Vec<JoinTest>,
    ) -> NodeId {
        let key = (parent, amem, tests.clone(), false);
        if let Some(&join) = self.join_share.get(&key) {
            let Node::Join { out, .. } = &self.nodes[join.0] else {
                unreachable!()
            };
            return *out;
        }
        // Pick the first token-equality test as the hash-join key.
        let index = tests.iter().find_map(|t| match (&t.predicate, &t.target) {
            (Predicate::Eq, TestTarget::Token { cond, attr }) => Some(JoinIndex {
                new_attr: t.new_attr.clone(),
                cond: *cond,
                attr: attr.clone(),
                tokens_by_key: HashMap::new(),
            }),
            _ => None,
        });
        if let Some(ix) = &index {
            self.alpha.ensure_index(amem, &ix.new_attr);
        }
        let join = NodeId(self.nodes.len());
        let out = NodeId(self.nodes.len() + 1);
        self.nodes.push(Node::Join {
            parent,
            amem,
            tests,
            out,
            index,
        });
        self.nodes.push(Node::Memory {
            tokens: BTreeSet::new(),
            children: Vec::new(),
        });
        self.add_child(parent, join);
        self.amem_successors.entry(amem).or_default().push(join);
        self.join_share.insert(key, join);
        // Populate from existing state (tokens × amem).
        let parent_tokens = self.source_tokens(parent);
        for t in parent_tokens {
            self.index_token(join, t);
            self.join_left_activate(join, t);
        }
        out
    }

    fn get_or_make_negative(
        &mut self,
        parent: NodeId,
        amem: AlphaMemId,
        tests: Vec<JoinTest>,
    ) -> NodeId {
        let key = (parent, amem, tests.clone(), true);
        if let Some(&neg) = self.join_share.get(&key) {
            return neg;
        }
        let neg = NodeId(self.nodes.len());
        self.nodes.push(Node::Negative {
            amem,
            tests,
            entries: HashMap::new(),
            tokens: BTreeSet::new(),
            children: Vec::new(),
        });
        self.add_child(parent, neg);
        self.amem_successors.entry(amem).or_default().push(neg);
        self.join_share.insert(key, neg);
        for t in self.source_tokens(parent) {
            self.negative_left_activate(neg, t);
        }
        neg
    }

    fn add_child(&mut self, parent: NodeId, child: NodeId) {
        match &mut self.nodes[parent.0] {
            Node::Memory { children, .. } | Node::Negative { children, .. } => children.push(child),
            _ => unreachable!("only sources have children"),
        }
    }

    // -------------------------------------------------------------
    // Token plumbing
    // -------------------------------------------------------------

    fn alloc_token(&mut self, parent: Option<TokenId>, wme: Option<Wme>, owner: NodeId) -> TokenId {
        let id = TokenId(self.next_token);
        self.next_token += 1;
        if let Some(w) = &wme {
            self.tokens_by_wme.entry(w.id).or_default().insert(id);
        }
        if let Some(p) = parent {
            if let Some(pt) = self.tokens.get_mut(&p) {
                pt.children.push(id);
            }
        }
        self.tokens.insert(
            id,
            Token {
                parent,
                wme,
                owner,
                children: Vec::new(),
            },
        );
        id
    }

    /// The full condition-indexed chain of WMEs for a token (dummy token
    /// excluded). Index = condition index; `None` for negative conditions.
    fn token_chain(&self, mut tid: TokenId) -> Vec<Option<Wme>> {
        let mut rev = Vec::new();
        while tid != self.dummy {
            let t = &self.tokens[&tid];
            rev.push(t.wme.clone());
            match t.parent {
                Some(p) => tid = p,
                None => break,
            }
        }
        rev.reverse();
        rev
    }

    fn source_tokens(&self, node: NodeId) -> Vec<TokenId> {
        match &self.nodes[node.0] {
            Node::Memory { tokens, .. } | Node::Negative { tokens, .. } => {
                tokens.iter().copied().collect()
            }
            _ => unreachable!("only sources hold tokens"),
        }
    }

    fn source_children(&self, node: NodeId) -> Vec<NodeId> {
        match &self.nodes[node.0] {
            Node::Memory { children, .. } | Node::Negative { children, .. } => children.clone(),
            _ => unreachable!(),
        }
    }

    /// The normalised token-side key of `chain` for a join index.
    fn chain_key(chain: &[Option<Wme>], cond: usize, attr: &str) -> Value {
        match chain.get(cond) {
            Some(Some(w)) => index_key(&w.get_or_nil(attr)),
            _ => Value::Nil,
        }
    }

    /// Adds `token` to a join's hash index (no-op for unindexed joins).
    fn index_token(&mut self, join: NodeId, token: TokenId) {
        let Node::Join {
            index: Some(ix), ..
        } = &self.nodes[join.0]
        else {
            return;
        };
        let (cond, attr) = (ix.cond, ix.attr.clone());
        let key = Self::chain_key(&self.token_chain(token), cond, attr.as_str());
        let Node::Join {
            index: Some(ix), ..
        } = &mut self.nodes[join.0]
        else {
            unreachable!()
        };
        ix.tokens_by_key.entry(key).or_default().insert(token);
    }

    /// Removes `token` from a join's hash index.
    fn unindex_token(&mut self, join: NodeId, token: TokenId, chain: &[Option<Wme>]) {
        let Node::Join {
            index: Some(ix), ..
        } = &self.nodes[join.0]
        else {
            return;
        };
        let key = Self::chain_key(chain, ix.cond, ix.attr.as_str());
        let Node::Join {
            index: Some(ix), ..
        } = &mut self.nodes[join.0]
        else {
            unreachable!()
        };
        if let Some(bucket) = ix.tokens_by_key.get_mut(&key) {
            bucket.remove(&token);
            if bucket.is_empty() {
                ix.tokens_by_key.remove(&key);
            }
        }
    }

    fn eval_tests(&self, tests: &[JoinTest], chain: &[Option<Wme>], new: &Wme) -> bool {
        tests.iter().all(|t| {
            let left = new.get_or_nil(t.new_attr.as_str());
            let right = match &t.target {
                TestTarget::NewAttr(attr) => new.get_or_nil(attr.as_str()),
                TestTarget::Token { cond, attr } => match chain.get(*cond) {
                    Some(Some(w)) => w.get_or_nil(attr.as_str()),
                    _ => return false,
                },
            };
            t.predicate.apply(&left, &right)
        })
    }

    // -------------------------------------------------------------
    // Activations
    // -------------------------------------------------------------

    /// A new token appeared in `source`: tell all its children.
    fn source_token_added(&mut self, source: NodeId, token: TokenId) {
        let children = self.source_children(source);
        // Register in all indexed joins first, then activate.
        for &child in &children {
            if matches!(&self.nodes[child.0], Node::Join { index: Some(_), .. }) {
                self.index_token(child, token);
            }
        }
        for child in children {
            match &self.nodes[child.0] {
                Node::Join { .. } => self.join_left_activate(child, token),
                Node::Negative { .. } => self.negative_left_activate(child, token),
                Node::Production { .. } => self.deliver_to_production(child, token),
                Node::Memory { .. } => unreachable!("memories hang off joins"),
            }
        }
    }

    fn join_left_activate(&mut self, join: NodeId, token: TokenId) {
        self.stats.left_activations += 1;
        let Node::Join {
            amem,
            tests,
            out,
            index,
            ..
        } = &self.nodes[join.0]
        else {
            unreachable!()
        };
        let (amem, tests, out) = (*amem, tests.clone(), *out);
        let probe = index
            .as_ref()
            .map(|ix| (ix.new_attr.clone(), ix.cond, ix.attr.clone()));
        let chain = self.token_chain(token);
        let candidates: Vec<Wme> = match probe {
            Some((new_attr, cond, attr)) => {
                let key = Self::chain_key(&chain, cond, attr.as_str());
                let mem = self.alpha.memory(amem);
                mem.lookup(new_attr.as_str(), &key)
                    .iter()
                    .filter_map(|&id| mem.get(id).cloned())
                    .collect()
            }
            None => self.alpha.memory(amem).wmes().to_vec(),
        };
        for w in candidates {
            if self.eval_tests(&tests, &chain, &w) {
                self.memory_add_token(out, token, w);
            }
        }
    }

    fn join_right_activate(&mut self, join: NodeId, w: &Wme) {
        self.stats.right_activations += 1;
        let Node::Join {
            parent,
            tests,
            out,
            index,
            ..
        } = &self.nodes[join.0]
        else {
            unreachable!()
        };
        let (parent, tests, out) = (*parent, tests.clone(), *out);
        let tokens: Vec<TokenId> = match index {
            Some(ix) => {
                let key = index_key(&w.get_or_nil(ix.new_attr.as_str()));
                ix.tokens_by_key
                    .get(&key)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default()
            }
            None => self.source_tokens(parent),
        };
        for t in tokens {
            let chain = self.token_chain(t);
            if self.eval_tests(&tests, &chain, w) {
                self.memory_add_token(out, t, w.clone());
            }
        }
    }

    fn memory_add_token(&mut self, mem: NodeId, parent: TokenId, w: Wme) {
        let tid = self.alloc_token(Some(parent), Some(w), mem);
        let Node::Memory { tokens, .. } = &mut self.nodes[mem.0] else {
            unreachable!()
        };
        tokens.insert(tid);
        self.source_token_added(mem, tid);
    }

    fn negative_left_activate(&mut self, neg: NodeId, input: TokenId) {
        self.stats.left_activations += 1;
        let Node::Negative { amem, tests, .. } = &self.nodes[neg.0] else {
            unreachable!()
        };
        let (amem, tests) = (*amem, tests.clone());
        let chain = self.token_chain(input);
        let results: HashSet<WmeId> = self
            .alpha
            .memory(amem)
            .wmes()
            .iter()
            .filter(|w| self.eval_tests(&tests, &chain, w))
            .map(|w| w.id)
            .collect();
        for wid in &results {
            self.neg_by_wme
                .entry(*wid)
                .or_default()
                .insert((neg, input));
        }
        let empty = results.is_empty();
        let Node::Negative { entries, .. } = &mut self.nodes[neg.0] else {
            unreachable!()
        };
        entries.insert(input, NegEntry { results, out: None });
        if empty {
            self.negative_emit(neg, input);
        }
    }

    /// Creates and propagates the output token for a blocked-free input.
    fn negative_emit(&mut self, neg: NodeId, input: TokenId) {
        let out_tok = self.alloc_token(Some(input), None, neg);
        let Node::Negative {
            entries, tokens, ..
        } = &mut self.nodes[neg.0]
        else {
            unreachable!()
        };
        if let Some(e) = entries.get_mut(&input) {
            e.out = Some(out_tok);
        }
        tokens.insert(out_tok);
        self.source_token_added(neg, out_tok);
    }

    fn negative_right_activate(&mut self, neg: NodeId, w: &Wme) {
        self.stats.right_activations += 1;
        let Node::Negative { tests, entries, .. } = &self.nodes[neg.0] else {
            unreachable!()
        };
        let tests = tests.clone();
        let inputs: Vec<TokenId> = entries.keys().copied().collect();
        for input in inputs {
            let chain = self.token_chain(input);
            if !self.eval_tests(&tests, &chain, w) {
                continue;
            }
            self.neg_by_wme
                .entry(w.id)
                .or_default()
                .insert((neg, input));
            let Node::Negative { entries, .. } = &mut self.nodes[neg.0] else {
                unreachable!()
            };
            let entry = entries.get_mut(&input).expect("input is keyed");
            let was_empty = entry.results.is_empty();
            entry.results.insert(w.id);
            if was_empty {
                // The negated pattern now matches: retract the output.
                if let Some(out) = entry.out.take() {
                    self.delete_token(out);
                }
            }
        }
    }

    fn deliver_to_production(&mut self, pnode: NodeId, token: TokenId) {
        let chain = self.token_chain(token);
        let Node::Production {
            rule,
            salience,
            binding_map,
            positive_conds,
            ..
        } = &self.nodes[pnode.0]
        else {
            unreachable!()
        };
        let mut bindings = Bindings::new();
        for (var, cond, attr) in binding_map {
            if let Some(Some(w)) = chain.get(*cond) {
                bindings.bind(var.clone(), w.get_or_nil(attr.as_str()));
            }
        }
        let wmes: Vec<Wme> = positive_conds
            .iter()
            .filter_map(|&c| chain.get(c).cloned().flatten())
            .collect();
        let inst = crate::Instantiation {
            rule: *rule,
            wmes,
            bindings,
            salience: *salience,
        };
        let key = inst.key();
        self.conflict.insert(inst);
        let Node::Production { insts, .. } = &mut self.nodes[pnode.0] else {
            unreachable!()
        };
        insts.insert(token, key);
    }

    // -------------------------------------------------------------
    // Deletion
    // -------------------------------------------------------------

    fn delete_token(&mut self, tid: TokenId) {
        let Some(token) = self.tokens.get(&tid) else {
            return;
        };
        let children = token.children.clone();
        let owner = token.owner;
        let parent = token.parent;
        let wme_id = token.wme.as_ref().map(|w| w.id);
        for c in children {
            self.delete_token(c);
        }
        // Drop the token from sibling join hash indexes (chain walk needs
        // the token's parents, which are still intact here).
        let owner_children = self.source_children(owner);
        if owner_children
            .iter()
            .any(|c| matches!(&self.nodes[c.0], Node::Join { index: Some(_), .. }))
        {
            let chain = self.token_chain(tid);
            for &child in &owner_children {
                if matches!(&self.nodes[child.0], Node::Join { index: Some(_), .. }) {
                    self.unindex_token(child, tid, &chain);
                }
            }
        }
        // Production retractions: the owner's production children hold
        // instantiations keyed by this token.
        for child in owner_children {
            if let Node::Production { insts, .. } = &mut self.nodes[child.0] {
                if let Some(key) = insts.remove(&tid) {
                    self.conflict.remove(&key);
                }
            }
        }
        // Detach from owner.
        match &mut self.nodes[owner.0] {
            Node::Memory { tokens, .. } => {
                tokens.remove(&tid);
            }
            Node::Negative {
                entries, tokens, ..
            } => {
                tokens.remove(&tid);
                // This was an output token; clear the back-pointer.
                if let Some(p) = parent {
                    if let Some(e) = entries.get_mut(&p) {
                        if e.out == Some(tid) {
                            e.out = None;
                        }
                    }
                }
            }
            _ => unreachable!("tokens live in sources"),
        }
        // If this token is an *input* of negative children, drop their
        // entries and index links (output tokens are our children and are
        // already gone).
        for child in self.source_children(owner) {
            if let Node::Negative { entries, .. } = &mut self.nodes[child.0] {
                if let Some(entry) = entries.remove(&tid) {
                    for wid in entry.results {
                        if let Some(set) = self.neg_by_wme.get_mut(&wid) {
                            set.remove(&(child, tid));
                        }
                    }
                }
            }
        }
        if let Some(p) = parent {
            if let Some(pt) = self.tokens.get_mut(&p) {
                pt.children.retain(|&c| c != tid);
            }
        }
        if let Some(wid) = wme_id {
            if let Some(set) = self.tokens_by_wme.get_mut(&wid) {
                set.remove(&tid);
                if set.is_empty() {
                    self.tokens_by_wme.remove(&wid);
                }
            }
        }
        self.tokens.remove(&tid);
    }

    // -------------------------------------------------------------
    // WME-level entry points
    // -------------------------------------------------------------

    fn add_wme(&mut self, wme: Wme) {
        let hits = self.alpha.add_wme(wme.clone());
        for amem in hits {
            let succs = self.amem_successors.get(&amem).cloned().unwrap_or_default();
            for node in succs {
                match &self.nodes[node.0] {
                    Node::Join { .. } => self.join_right_activate(node, &wme),
                    Node::Negative { .. } => self.negative_right_activate(node, &wme),
                    _ => unreachable!(),
                }
            }
        }
    }

    fn remove_wme(&mut self, class: &Atom, id: WmeId) {
        self.alpha.remove_wme(class, id);
        // Kill tokens carrying the WME.
        let carriers: Vec<TokenId> = self
            .tokens_by_wme
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for t in carriers {
            self.delete_token(t);
        }
        // Unblock negative entries that were matched by it.
        let blocked: Vec<(NodeId, TokenId)> = self
            .neg_by_wme
            .remove(&id)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        let mut to_emit = Vec::new();
        for (neg, input) in blocked {
            let Node::Negative { entries, .. } = &mut self.nodes[neg.0] else {
                unreachable!()
            };
            if let Some(e) = entries.get_mut(&input) {
                e.results.remove(&id);
                if e.results.is_empty() && e.out.is_none() {
                    to_emit.push((neg, input));
                }
            }
        }
        // Deterministic order across HashMap iteration.
        to_emit.sort_unstable_by_key(|&(n, t)| (n, t));
        for (neg, input) in to_emit {
            self.negative_emit(neg, input);
        }
    }

    /// Test/debug helper: the timestamps of all live tokens (excluding
    /// the dummy), for state-size assertions.
    #[doc(hidden)]
    pub fn live_token_timestamps(&self) -> Vec<Timestamp> {
        let mut ts: Vec<Timestamp> = self
            .tokens
            .values()
            .filter_map(|t| t.wme.as_ref().map(|w| w.timestamp))
            .collect();
        ts.sort_unstable();
        ts
    }
}

impl Matcher for Rete {
    fn apply(&mut self, changes: &[Change]) {
        for change in changes {
            match change {
                Change::Added(w) => self.add_wme(w.clone()),
                Change::Removed(w) => self.remove_wme(&w.data.class.clone(), w.id),
            }
        }
    }

    fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::{DeltaSet, Value, WmeData};

    fn setup(rules_src: &str) -> (RuleSet, WorkingMemory) {
        (RuleSet::parse(rules_src).unwrap(), WorkingMemory::new())
    }

    fn apply_insert(rete: &mut Rete, wm: &mut WorkingMemory, data: WmeData) -> WmeId {
        let w = wm.insert_full(data);
        let id = w.id;
        rete.apply(&[Change::Added(w)]);
        id
    }

    fn apply_remove(rete: &mut Rete, wm: &mut WorkingMemory, id: WmeId) {
        let w = wm.remove(id).unwrap();
        rete.apply(&[Change::Removed(w)]);
    }

    #[test]
    fn single_ce_match_and_retract() {
        let (rules, mut wm) = setup("(p r (job ^state open) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        assert!(rete.conflict_set().is_empty());
        let id = apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("job").with("state", "open"),
        );
        assert_eq!(rete.conflict_set().len(), 1);
        apply_remove(&mut rete, &mut wm, id);
        assert!(rete.conflict_set().is_empty());
        assert!(rete.live_token_timestamps().is_empty(), "no leaked tokens");
    }

    #[test]
    fn join_on_shared_variable() {
        let (rules, mut wm) = setup("(p r (a ^k <x>) (b ^k <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 2i64));
        assert!(rete.conflict_set().is_empty(), "keys differ");
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 1i64));
        assert_eq!(rete.conflict_set().len(), 1);
        // A second `a` with k=1 doubles the instantiations.
        apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", 1i64));
        assert_eq!(rete.conflict_set().len(), 2);
    }

    #[test]
    fn cross_ce_ordering_test() {
        let (rules, mut wm) = setup("(p r (lo ^v <x>) (hi ^v > <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("lo").with("v", 3i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("hi").with("v", 5i64));
        assert_eq!(rete.conflict_set().len(), 1);
        apply_insert(&mut rete, &mut wm, WmeData::new("hi").with("v", 2i64));
        assert_eq!(rete.conflict_set().len(), 1, "2 > 3 is false");
    }

    #[test]
    fn intra_ce_variable_consistency() {
        let (rules, mut wm) = setup("(p r (pair ^l <v> ^r <v>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("pair").with("l", 1i64).with("r", 2i64),
        );
        assert!(rete.conflict_set().is_empty());
        apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("pair").with("l", 7i64).with("r", 7i64),
        );
        assert_eq!(rete.conflict_set().len(), 1);
    }

    #[test]
    fn negation_blocks_and_unblocks() {
        let (rules, mut wm) = setup("(p r (go) -(hold) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        let _go = apply_insert(&mut rete, &mut wm, WmeData::new("go"));
        assert_eq!(rete.conflict_set().len(), 1);
        let hold = apply_insert(&mut rete, &mut wm, WmeData::new("hold"));
        assert!(rete.conflict_set().is_empty(), "hold blocks the rule");
        apply_remove(&mut rete, &mut wm, hold);
        assert_eq!(rete.conflict_set().len(), 1, "retraction unblocks");
    }

    #[test]
    fn negation_with_variable_from_earlier_ce() {
        let (rules, mut wm) = setup("(p r (job ^id <j>) -(lock ^job <j>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("job").with("id", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("job").with("id", 2i64));
        assert_eq!(rete.conflict_set().len(), 2);
        let l1 = apply_insert(&mut rete, &mut wm, WmeData::new("lock").with("job", 1i64));
        assert_eq!(rete.conflict_set().len(), 1, "only job 1 is blocked");
        apply_insert(&mut rete, &mut wm, WmeData::new("lock").with("job", 2i64));
        assert_eq!(rete.conflict_set().len(), 0);
        apply_remove(&mut rete, &mut wm, l1);
        assert_eq!(rete.conflict_set().len(), 1);
    }

    #[test]
    fn two_blockers_require_both_retractions() {
        let (rules, mut wm) = setup("(p r (go) -(hold) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("go"));
        let h1 = apply_insert(&mut rete, &mut wm, WmeData::new("hold"));
        let h2 = apply_insert(&mut rete, &mut wm, WmeData::new("hold"));
        assert!(rete.conflict_set().is_empty());
        apply_remove(&mut rete, &mut wm, h1);
        assert!(rete.conflict_set().is_empty(), "h2 still blocks");
        apply_remove(&mut rete, &mut wm, h2);
        assert_eq!(rete.conflict_set().len(), 1);
    }

    #[test]
    fn removal_cascades_through_joins() {
        let (rules, mut wm) = setup("(p r (a ^k <x>) (b ^k <x>) (c ^k <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        let a = apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("c").with("k", 1i64));
        assert_eq!(rete.conflict_set().len(), 1);
        apply_remove(&mut rete, &mut wm, a);
        assert!(rete.conflict_set().is_empty());
        assert!(
            rete.live_token_timestamps().is_empty(),
            "cascade removed all partial matches"
        );
    }

    #[test]
    fn modify_retimestamps_instantiation() {
        let (rules, mut wm) = setup("(p r (c ^n > 0) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        let id = apply_insert(&mut rete, &mut wm, WmeData::new("c").with("n", 1i64));
        let key_before = rete.conflict_set().iter().next().unwrap().key();
        let mut d = DeltaSet::new();
        d.modify(id, [(Atom::from("n"), Value::Int(2))]);
        let changes = wm.apply(&d).unwrap();
        rete.apply(&changes);
        assert_eq!(rete.conflict_set().len(), 1);
        let key_after = rete.conflict_set().iter().next().unwrap().key();
        assert_ne!(
            key_before, key_after,
            "fresh timestamp → fresh instantiation"
        );
    }

    #[test]
    fn alpha_and_beta_sharing_across_rules() {
        let (rules, wm) = setup(
            "(p r1 (a ^k <x>) (b ^k <x>) --> (remove 1))
             (p r2 (a ^k <x>) (b ^k <x>) --> (remove 2))",
        );
        let rete = Rete::new(&rules, &wm);
        let stats = rete.stats();
        assert_eq!(stats.alpha_memories, 2, "a and b shared across rules");
        assert_eq!(
            stats.join_nodes, 2,
            "join chain shared; production nodes differ"
        );
        assert_eq!(stats.production_nodes, 2);
    }

    #[test]
    fn shared_subnetwork_activates_late_added_production() {
        // r2 compiled after WMEs exist? Here: rules compiled first, but
        // r2 shares r1's join chain; both must fire.
        let (rules, mut wm) = setup(
            "(p r1 (a ^k <x>) (b ^k <x>) --> (remove 1))
             (p r2 (a ^k <x>) (b ^k <x>) --> (remove 2))",
        );
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 1i64));
        assert_eq!(rete.conflict_set().len(), 2);
    }

    #[test]
    fn initial_working_memory_is_matched() {
        let rules = RuleSet::parse("(p r (x) (y) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("x"));
        wm.insert(WmeData::new("y"));
        wm.insert(WmeData::new("y"));
        let rete = Rete::new(&rules, &wm);
        assert_eq!(rete.conflict_set().len(), 2);
    }

    #[test]
    fn bindings_are_extracted() {
        let (rules, mut wm) =
            setup("(p r (job ^id <j> ^cost <c>) --> (make log ^job <j> ^was <c>))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("job").with("id", 7i64).with("cost", 3i64),
        );
        let inst = rete.conflict_set().iter().next().unwrap();
        assert_eq!(inst.bindings.get("j"), Some(&Value::Int(7)));
        assert_eq!(inst.bindings.get("c"), Some(&Value::Int(3)));
        assert_eq!(inst.wmes.len(), 1);
    }

    #[test]
    fn negated_ce_does_not_contribute_wmes() {
        let (rules, mut wm) = setup("(p r (go ^id <g>) -(hold) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("go").with("id", 4i64));
        let inst = rete.conflict_set().iter().next().unwrap();
        assert_eq!(inst.wmes.len(), 1);
        assert_eq!(inst.wmes[0].class().as_str(), "go");
    }

    #[test]
    fn three_way_join_with_negation_in_middle() {
        let (rules, mut wm) = setup("(p r (a ^k <x>) -(veto ^k <x>) (b ^k <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 1i64));
        assert_eq!(rete.conflict_set().len(), 1);
        let v = apply_insert(&mut rete, &mut wm, WmeData::new("veto").with("k", 1i64));
        assert!(rete.conflict_set().is_empty());
        apply_remove(&mut rete, &mut wm, v);
        assert_eq!(rete.conflict_set().len(), 1);
    }

    #[test]
    fn consecutive_negations() {
        let (rules, mut wm) =
            setup("(p r (go ^k <x>) -(hold ^k <x>) -(veto ^k <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("go").with("k", 1i64));
        assert_eq!(rete.conflict_set().len(), 1);
        let h = apply_insert(&mut rete, &mut wm, WmeData::new("hold").with("k", 1i64));
        assert!(rete.conflict_set().is_empty());
        let v = apply_insert(&mut rete, &mut wm, WmeData::new("veto").with("k", 1i64));
        apply_remove(&mut rete, &mut wm, h);
        assert!(
            rete.conflict_set().is_empty(),
            "second negation still blocks"
        );
        apply_remove(&mut rete, &mut wm, v);
        assert_eq!(rete.conflict_set().len(), 1);
        // Re-block through the second negation only.
        apply_insert(&mut rete, &mut wm, WmeData::new("veto").with("k", 1i64));
        assert!(rete.conflict_set().is_empty());
    }

    #[test]
    fn disjunction_filters_in_alpha_network() {
        let (rules, mut wm) = setup("(p r (job ^state << open pending >>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("job").with("state", "open"),
        );
        apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("job").with("state", "pending"),
        );
        apply_insert(
            &mut rete,
            &mut wm,
            WmeData::new("job").with("state", "closed"),
        );
        assert_eq!(rete.conflict_set().len(), 2);
    }

    #[test]
    fn equality_joins_are_indexed() {
        let (rules, mut wm) = setup("(p r (a ^k <x>) (b ^k <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        assert_eq!(rete.stats().indexed_joins, 1, "second CE joins on <x>");
        // Scale: many distinct keys, each joining exactly once.
        for k in 0..50i64 {
            apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", k));
        }
        for k in 0..50i64 {
            apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", k));
        }
        assert_eq!(rete.conflict_set().len(), 50);
        // Retract half the `a`s; their joins disappear exactly.
        let ids: Vec<WmeId> = wm.class_iter("a").map(|w| w.id).take(25).collect();
        for id in ids {
            apply_remove(&mut rete, &mut wm, id);
        }
        assert_eq!(rete.conflict_set().len(), 25);
        assert_eq!(
            rete.live_token_timestamps().len(),
            25 + 25,
            "25 a-tokens + 25 join tokens"
        );
    }

    #[test]
    fn indexed_join_respects_numeric_coercion() {
        // Int 2 on one side, Float 2.0 on the other: loose equality says
        // they join; the normalised hash keys must agree.
        let (rules, mut wm) = setup("(p r (a ^k <x>) (b ^k <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("a").with("k", 2i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 2.0f64));
        assert_eq!(rete.conflict_set().len(), 1, "Int(2) joins Float(2.0)");
        apply_insert(&mut rete, &mut wm, WmeData::new("b").with("k", 2.5f64));
        assert_eq!(rete.conflict_set().len(), 1, "2.5 does not join 2");
    }

    #[test]
    fn ordering_only_joins_stay_unindexed_but_work() {
        let (rules, mut wm) = setup("(p r (lo ^v <x>) (hi ^v > <x>) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        assert_eq!(rete.stats().indexed_joins, 0, "no equality test to index");
        apply_insert(&mut rete, &mut wm, WmeData::new("lo").with("v", 1i64));
        apply_insert(&mut rete, &mut wm, WmeData::new("hi").with("v", 2i64));
        assert_eq!(rete.conflict_set().len(), 1);
    }

    #[test]
    fn stats_track_activations() {
        let (rules, mut wm) = setup("(p r (a) (b) --> (remove 1))");
        let mut rete = Rete::new(&rules, &wm);
        apply_insert(&mut rete, &mut wm, WmeData::new("a"));
        apply_insert(&mut rete, &mut wm, WmeData::new("b"));
        let s = rete.stats();
        assert!(s.right_activations >= 2);
        assert!(s.tokens > 0);
    }
}
