//! Intra-phase match parallelism (§2's "user transparent" category):
//! the rule set is partitioned into **class-connected components** —
//! rules that share no working-memory class can never share matches —
//! and each component gets its own Rete network. A change batch fans out
//! only to the components whose classes it touches, optionally on
//! parallel threads.
//!
//! This simultaneously realises the paper's *user-visible* partitioning
//! idea ("partitioning the database into classes of objects accessed by
//! different tasks"): the component structure **is** that partition,
//! computed automatically.

use std::collections::{BTreeSet, HashMap, HashSet};

use dps_rules::{RuleId, RuleSet};
use dps_wm::{Atom, Change, WorkingMemory};

use crate::{ConflictSet, Matcher, Rete};

/// One class-connected component of the rule set.
struct Component {
    /// Global rule ids, in local order (local `RuleId(i)` ↔ `global[i]`).
    global: Vec<RuleId>,
    matcher: Rete,
}

/// Size/shape statistics of the partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of components.
    pub components: usize,
    /// Rules per component.
    pub rules_per_component: Vec<usize>,
}

/// A matcher composed of independent per-component Rete networks.
///
/// Semantically identical to one monolithic [`Rete`] over the whole rule
/// set (enforced by differential tests); operationally, a change batch
/// is routed only to affected components, and with
/// [`PartitionedRete::set_parallel`] the components match on separate
/// threads — the paper's intra-phase parallelism.
pub struct PartitionedRete {
    components: Vec<Component>,
    /// class → components reading it.
    routes: HashMap<Atom, Vec<usize>>,
    merged: ConflictSet,
    parallel: bool,
}

/// Classes a rule mentions anywhere (conditions and `make` targets).
fn rule_classes(rule: &dps_rules::Rule) -> BTreeSet<Atom> {
    let mut out: BTreeSet<Atom> = rule
        .conditions
        .iter()
        .map(|c| c.ce().class.clone())
        .collect();
    for action in &rule.actions {
        if let dps_rules::Action::Make { class, .. } = action {
            out.insert(class.clone());
        }
    }
    out
}

impl PartitionedRete {
    /// Partitions `rules` into class-connected components and builds one
    /// Rete per component over the initial working memory.
    pub fn new(rules: &RuleSet, wm: &WorkingMemory) -> Self {
        // Union-find over rule indices, joined through shared classes.
        let n = rules.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut class_owner: HashMap<Atom, usize> = HashMap::new();
        for (i, rule) in rules.rules().iter().enumerate() {
            for class in rule_classes(rule) {
                match class_owner.get(&class) {
                    Some(&j) => {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                    None => {
                        class_owner.insert(class, i);
                    }
                }
            }
        }
        // Group rules by root.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
        group_list.sort_by_key(|g| g[0]); // deterministic component order

        let mut components = Vec::with_capacity(group_list.len());
        let mut routes: HashMap<Atom, Vec<usize>> = HashMap::new();
        let mut merged = ConflictSet::new();
        for (ci, members) in group_list.into_iter().enumerate() {
            let mut sub = RuleSet::new();
            let mut global = Vec::with_capacity(members.len());
            let mut classes = HashSet::new();
            for &m in &members {
                let rule = &rules.rules()[m];
                classes.extend(rule_classes(rule));
                sub.add(rule.clone())
                    .expect("names unique in the source set");
                global.push(RuleId(m as u32));
            }
            for class in &classes {
                routes.entry(class.clone()).or_default().push(ci);
            }
            let matcher = Rete::new(&sub, wm);
            for inst in matcher.conflict_set().iter() {
                let mut inst = inst.clone();
                inst.rule = global[inst.rule.0 as usize];
                merged.insert(inst);
            }
            components.push(Component { global, matcher });
        }
        PartitionedRete {
            components,
            routes,
            merged,
            parallel: false,
        }
    }

    /// Enables (or disables) threaded fan-out of change batches.
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Partition shape.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            components: self.components.len(),
            rules_per_component: self.components.iter().map(|c| c.global.len()).collect(),
        }
    }

    /// Indices of components affected by a change batch.
    fn affected(&self, changes: &[Change]) -> Vec<usize> {
        let mut out: Vec<usize> = changes
            .iter()
            .filter_map(|c| self.routes.get(&c.wme().data.class))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Refreshes `merged` for one component: drop its rules' entries and
    /// re-insert (translating local rule ids to global).
    fn refresh_component(&mut self, ci: usize) {
        let comp = &self.components[ci];
        for &gid in &comp.global {
            self.merged.remove_of_rule(gid);
        }
        let fresh: Vec<crate::Instantiation> = comp
            .matcher
            .conflict_set()
            .iter()
            .map(|inst| {
                let mut inst = inst.clone();
                inst.rule = comp.global[inst.rule.0 as usize];
                inst
            })
            .collect();
        for inst in fresh {
            self.merged.insert(inst);
        }
    }
}

impl Matcher for PartitionedRete {
    fn apply(&mut self, changes: &[Change]) {
        let affected = self.affected(changes);
        if affected.len() > 1 && self.parallel {
            // Split the affected components out and run them on threads.
            let mut slots: Vec<(usize, &mut Component)> = Vec::new();
            let mut rest: &mut [Component] = &mut self.components;
            let mut offset = 0;
            for &ci in &affected {
                let (left, right) = rest.split_at_mut(ci - offset + 1);
                slots.push((ci, &mut left[ci - offset]));
                rest = right;
                offset = ci + 1;
            }
            std::thread::scope(|scope| {
                for (_, comp) in &mut slots {
                    let matcher = &mut comp.matcher;
                    scope.spawn(move || matcher.apply(changes));
                }
            });
        } else {
            for &ci in &affected {
                self.components[ci].matcher.apply(changes);
            }
        }
        for ci in affected {
            self.refresh_component(ci);
        }
    }

    fn conflict_set(&self) -> &ConflictSet {
        &self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::WmeData;
    use std::collections::BTreeSet as Set;

    const CORPUS: &str = r#"
        (p fam1-a (a ^k <x>) (b ^k <x>) --> (remove 1))
        (p fam1-b (b ^k <x>) --> (remove 1))
        (p fam2-a (c ^k <x>) -(d ^k <x>) --> (remove 1))
        (p fam3-a (e ^k <x>) --> (make f ^k <x>))
        (p fam3-b (f ^k <x>) --> (remove 1))
    "#;

    fn keys(cs: &ConflictSet) -> Set<crate::InstKey> {
        cs.iter().map(|i| i.key()).collect()
    }

    #[test]
    fn components_follow_class_connectivity() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let wm = WorkingMemory::new();
        let pm = PartitionedRete::new(&rules, &wm);
        let stats = pm.stats();
        // {a,b}, {c,d}, {e,f (via make)} → 3 components.
        assert_eq!(stats.components, 3);
        let mut sizes = stats.rules_per_component.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn agrees_with_monolithic_rete_on_streams() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        let mut mono = Rete::new(&rules, &wm);
        let mut part = PartitionedRete::new(&rules, &wm);
        part.set_parallel(true);
        let classes = ["a", "b", "c", "d", "e", "f"];
        let mut live = Vec::new();
        for step in 0..120u64 {
            let changes = if step % 5 == 4 && !live.is_empty() {
                let id = live.remove((step as usize * 7) % live.len());
                match wm.remove(id) {
                    Ok(w) => vec![Change::Removed(w)],
                    Err(_) => continue,
                }
            } else {
                let class = classes[(step as usize) % classes.len()];
                let w = wm.insert_full(WmeData::new(class).with("k", (step % 3) as i64));
                live.push(w.id);
                vec![Change::Added(w)]
            };
            mono.apply(&changes);
            part.apply(&changes);
            assert_eq!(
                keys(mono.conflict_set()),
                keys(part.conflict_set()),
                "diverged at step {step}"
            );
        }
    }

    #[test]
    fn initial_working_memory_is_matched() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("b").with("k", 1i64));
        wm.insert(WmeData::new("c").with("k", 1i64));
        let pm = PartitionedRete::new(&rules, &wm);
        let mono = Rete::new(&rules, &wm);
        assert_eq!(keys(pm.conflict_set()), keys(mono.conflict_set()));
        assert_eq!(pm.conflict_set().len(), 2);
    }

    #[test]
    fn global_rule_ids_are_preserved() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("e").with("k", 7i64));
        let pm = PartitionedRete::new(&rules, &wm);
        let inst = pm.conflict_set().iter().next().unwrap();
        assert_eq!(inst.rule, rules.id_of("fam3-a").unwrap());
    }

    #[test]
    fn unrelated_changes_do_not_touch_other_components() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        let mut pm = PartitionedRete::new(&rules, &wm);
        let w = wm.insert_full(WmeData::new("zzz-unknown"));
        pm.apply(&[Change::Added(w)]);
        assert!(pm.conflict_set().is_empty());
        let w = wm.insert_full(WmeData::new("b").with("k", 0i64));
        pm.apply(&[Change::Added(w)]);
        assert_eq!(pm.conflict_set().len(), 1, "only fam1-b fires");
    }

    #[test]
    fn parallel_and_serial_fanout_agree() {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        let mut serial = PartitionedRete::new(&rules, &wm);
        let mut parallel = PartitionedRete::new(&rules, &wm);
        parallel.set_parallel(true);
        // One batch touching several components at once.
        let mut batch = Vec::new();
        for class in ["a", "b", "c", "e", "f"] {
            batch.push(Change::Added(
                wm.insert_full(WmeData::new(class).with("k", 1i64)),
            ));
        }
        serial.apply(&batch);
        parallel.apply(&batch);
        assert_eq!(keys(serial.conflict_set()), keys(parallel.conflict_set()));
        assert!(!serial.conflict_set().is_empty());
    }
}
