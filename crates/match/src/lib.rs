//! # `dps-match` — the match substrate
//!
//! The match phase is the classic bottleneck of production systems
//! (Forgy 1982), and the ICDE 1990 paper's production-cycle model assumes
//! an incremental matcher that keeps the **conflict set** — the set of
//! satisfied rule instantiations — up to date as working memory changes.
//! This crate implements both published algorithms the paper surveys:
//!
//! * [`Rete`] — Forgy's Rete network: a shared **alpha network** of
//!   constant tests feeding per-pattern alpha memories, and a **beta
//!   network** of join nodes storing partial matches (tokens), with full
//!   incremental add *and* remove, negated condition elements, and
//!   node sharing for common subexpressions.
//! * [`Treat`] — Miranker's TREAT: alpha memories only; instantiations are
//!   (re)computed by joining alpha memories when a change arrives. Less
//!   state, more recomputation — the classic trade-off the benchmarks
//!   in `dps-bench` quantify.
//!
//! Both implement the [`Matcher`] trait consumed by the engines in
//! `dps-core`, and both maintain a [`ConflictSet`] of [`Instantiation`]s.
//! The **select** phase is covered by [`Strategy`], which implements the
//! OPS5 conflict-resolution heuristics the paper names (LEX, MEA) plus
//! salience, FIFO and a seeded-random strategy. As the paper stresses
//! (§3.2), these heuristics "do not rule out any execution sequence
//! entirely" — correctness never depends on the strategy chosen.
//!
//! ```
//! use dps_match::{Matcher, Rete};
//! use dps_rules::RuleSet;
//! use dps_wm::{WorkingMemory, WmeData};
//!
//! let rules = RuleSet::parse("(p done (task ^state finished) --> (remove 1))").unwrap();
//! let mut wm = WorkingMemory::new();
//! wm.insert(WmeData::new("task").with("state", "finished"));
//!
//! let rete = Rete::new(&rules, &wm);
//! assert_eq!(rete.conflict_set().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alpha;
mod conflict;
mod instantiation;
mod partition;
mod resolve;
mod rete;
mod shard;
mod treat;

pub use alpha::{AlphaMemId, AlphaNetwork};
pub use conflict::ConflictSet;
pub use instantiation::{InstKey, Instantiation};
pub use partition::{PartitionStats, PartitionedRete};
pub use resolve::Strategy;
pub use rete::Rete;
pub use shard::{ShardPlan, ShardedRete, DEFAULT_MATCH_SHARDS};
pub use treat::Treat;

use dps_wm::Change;

/// An incremental matcher: consumes working-memory change logs and keeps
/// the conflict set current.
pub trait Matcher {
    /// Feeds a batch of changes (one committed production's effects).
    fn apply(&mut self, changes: &[Change]);

    /// The current conflict set.
    fn conflict_set(&self) -> &ConflictSet;
}
