//! Rule instantiations — the members of the conflict set.

use std::fmt;

use dps_rules::{Bindings, RuleId};
use dps_wm::{Timestamp, Wme, WmeId};

/// Identity of an instantiation: the rule plus the exact WMEs (with their
/// recency stamps) matched by its positive condition elements.
///
/// Timestamps participate in identity because an OPS5 `modify` re-inserts
/// a WME under the same id with a fresh stamp — the old instantiation is
/// gone and a new one (same ids, newer stamp) may appear, and
/// *refraction* must treat them as distinct.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstKey {
    /// The matched rule.
    pub rule: RuleId,
    /// `(id, timestamp)` of each positive-CE match, in CE order.
    pub wmes: Vec<(WmeId, Timestamp)>,
}

/// A satisfied rule instantiation: one concrete way a rule's LHS matches
/// working memory.
#[derive(Clone, Debug, PartialEq)]
pub struct Instantiation {
    /// The matched rule.
    pub rule: RuleId,
    /// The WMEs matched by the positive CEs, in CE order.
    pub wmes: Vec<Wme>,
    /// Variable bindings established by the match.
    pub bindings: Bindings,
    /// Rule salience (copied from the rule for cheap strategy access).
    pub salience: i32,
}

impl Instantiation {
    /// The identity key.
    pub fn key(&self) -> InstKey {
        InstKey {
            rule: self.rule,
            wmes: self.wmes.iter().map(|w| (w.id, w.timestamp)).collect(),
        }
    }

    /// Recency vector: matched-WME timestamps sorted descending — the
    /// comparison key of OPS5's LEX strategy.
    pub fn recency(&self) -> Vec<Timestamp> {
        let mut ts: Vec<Timestamp> = self.wmes.iter().map(|w| w.timestamp).collect();
        ts.sort_unstable_by(|a, b| b.cmp(a));
        ts
    }

    /// Timestamp of the first CE's match — MEA's dominant criterion.
    pub fn first_ce_recency(&self) -> Timestamp {
        self.wmes.first().map_or(0, |w| w.timestamp)
    }

    /// `true` when this instantiation matched the given element.
    pub fn mentions(&self, id: WmeId) -> bool {
        self.wmes.iter().any(|w| w.id == id)
    }
}

impl fmt::Display for Instantiation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.rule)?;
        for (i, w) in self.wmes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", w.id)?;
        }
        write!(f, "]{}", self.bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::WmeData;

    fn wme(id: u64, ts: u64) -> Wme {
        Wme {
            id: WmeId(id),
            data: WmeData::new("c"),
            timestamp: ts,
        }
    }

    fn inst(rule: u32, wmes: Vec<Wme>) -> Instantiation {
        Instantiation {
            rule: RuleId(rule),
            wmes,
            bindings: Bindings::new(),
            salience: 0,
        }
    }

    #[test]
    fn key_includes_timestamps() {
        let a = inst(1, vec![wme(1, 5)]);
        let b = inst(1, vec![wme(1, 9)]); // same wme id, fresher stamp
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn recency_sorts_descending() {
        let i = inst(0, vec![wme(1, 3), wme(2, 9), wme(3, 5)]);
        assert_eq!(i.recency(), vec![9, 5, 3]);
        assert_eq!(i.first_ce_recency(), 3);
    }

    #[test]
    fn mentions_checks_ids() {
        let i = inst(0, vec![wme(4, 1)]);
        assert!(i.mentions(WmeId(4)));
        assert!(!i.mentions(WmeId(5)));
    }

    #[test]
    fn display_is_compact() {
        let i = inst(2, vec![wme(1, 1), wme(2, 2)]);
        assert_eq!(i.to_string(), "r2[w1,w2]{}");
    }
}
