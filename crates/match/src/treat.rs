//! The TREAT matcher (Miranker 1984): alpha memories only, no stored
//! partial matches.
//!
//! TREAT keeps the same shared alpha network as Rete but no beta state.
//! When a WME arrives, instantiations are computed by joining the alpha
//! memories with the new WME pinned at each condition it matches; when a
//! WME is retracted, the conflict set is purged by index, and rules whose
//! *negated* patterns lost a match are re-joined. This is the classic
//! state-versus-recomputation trade-off against [`crate::Rete`], which
//! the `dps-bench` crate measures (experiment X4).

use std::collections::HashMap;

use dps_rules::{match_ce, Bindings, Condition, Rule, RuleId, RuleSet};
use dps_wm::{Change, Wme, WmeId, WorkingMemory};

use crate::{AlphaMemId, AlphaNetwork, ConflictSet, Instantiation, Matcher};

/// Per-rule compiled form: each condition with its alpha memory.
#[derive(Clone, Debug)]
struct CompiledRule {
    id: RuleId,
    rule: Rule,
    /// Alpha memory of each condition, in condition order.
    amems: Vec<AlphaMemId>,
}

/// Counters for the recomputation work TREAT performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreatStats {
    /// Candidate WMEs enumerated during joins.
    pub join_candidates: u64,
    /// Full rule re-joins triggered by negated-pattern retractions.
    pub rejoin_passes: u64,
}

/// The TREAT matcher. See the module docs.
#[derive(Clone, Debug)]
pub struct Treat {
    alpha: AlphaNetwork,
    rules: Vec<CompiledRule>,
    /// amem → (rule index, condition index) pairs reading it.
    readers: HashMap<AlphaMemId, Vec<(usize, usize)>>,
    conflict: ConflictSet,
    stats: TreatStats,
}

impl Treat {
    /// Compiles `rules` and loads the initial working memory.
    pub fn new(rules: &RuleSet, wm: &WorkingMemory) -> Self {
        let mut alpha = AlphaNetwork::default();
        let mut compiled = Vec::new();
        let mut readers: HashMap<AlphaMemId, Vec<(usize, usize)>> = HashMap::new();
        for (id, rule) in rules.iter() {
            let amems: Vec<AlphaMemId> = rule
                .conditions
                .iter()
                .map(|c| alpha.register(c.ce()))
                .collect();
            for (ci, &amem) in amems.iter().enumerate() {
                readers.entry(amem).or_default().push((compiled.len(), ci));
            }
            compiled.push(CompiledRule {
                id,
                rule: rule.clone(),
                amems,
            });
        }
        let mut treat = Treat {
            alpha,
            rules: compiled,
            readers,
            conflict: ConflictSet::new(),
            stats: TreatStats::default(),
        };
        for wme in wm.iter() {
            treat.add_wme(wme.clone());
        }
        treat
    }

    /// Recomputation counters.
    pub fn stats(&self) -> TreatStats {
        self.stats
    }

    /// Recursive join over the rule's conditions. `pin` fixes one
    /// condition to one WME (the arriving one); `None` joins freely.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        cr: &CompiledRule,
        pin: Option<(usize, &Wme)>,
        ci: usize,
        bindings: Bindings,
        acc: &mut Vec<Wme>,
        out: &mut Vec<Instantiation>,
        candidates_seen: &mut u64,
    ) {
        if ci == cr.rule.conditions.len() {
            out.push(Instantiation {
                rule: cr.id,
                wmes: acc.clone(),
                bindings,
                salience: cr.rule.salience,
            });
            return;
        }
        let cond = &cr.rule.conditions[ci];
        let ce = cond.ce();
        match cond {
            Condition::Pos(_) => {
                if let Some((pinned_ci, w)) = pin {
                    if pinned_ci == ci {
                        *candidates_seen += 1;
                        if let Some(b) = match_ce(ce, w, &bindings) {
                            acc.push(w.clone());
                            self.join(cr, pin, ci + 1, b, acc, out, candidates_seen);
                            acc.pop();
                        }
                        return;
                    }
                }
                let mem = self.alpha.memory(cr.amems[ci]);
                for w in mem.wmes() {
                    *candidates_seen += 1;
                    if let Some(b) = match_ce(ce, w, &bindings) {
                        acc.push(w.clone());
                        self.join(cr, pin, ci + 1, b, acc, out, candidates_seen);
                        acc.pop();
                    }
                }
            }
            Condition::Neg(_) => {
                let mem = self.alpha.memory(cr.amems[ci]);
                let blocked = mem.wmes().iter().any(|w| {
                    *candidates_seen += 1;
                    match_ce(ce, w, &bindings).is_some()
                });
                if !blocked {
                    self.join(cr, pin, ci + 1, bindings, acc, out, candidates_seen);
                }
            }
        }
    }

    fn compute_instantiations(
        &mut self,
        rule_idx: usize,
        pin: Option<(usize, &Wme)>,
    ) -> Vec<Instantiation> {
        let cr = self.rules[rule_idx].clone();
        let mut out = Vec::new();
        let mut acc = Vec::new();
        let mut seen = 0u64;
        self.join(&cr, pin, 0, Bindings::new(), &mut acc, &mut out, &mut seen);
        self.stats.join_candidates += seen;
        out
    }

    fn add_wme(&mut self, wme: Wme) {
        let hits = self.alpha.add_wme(wme.clone());
        let mut positive_sites: Vec<(usize, usize)> = Vec::new();
        let mut negative_rules: Vec<usize> = Vec::new();
        for amem in hits {
            for &(ri, ci) in self.readers.get(&amem).into_iter().flatten() {
                if self.rules[ri].rule.conditions[ci].is_negated() {
                    negative_rules.push(ri);
                } else {
                    positive_sites.push((ri, ci));
                }
            }
        }
        // 1. The new WME may invalidate instantiations via negated CEs.
        negative_rules.sort_unstable();
        negative_rules.dedup();
        for ri in negative_rules {
            let cr = &self.rules[ri];
            let negated: Vec<usize> = cr
                .rule
                .conditions
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_negated())
                .map(|(i, _)| i)
                .collect();
            let rule_id = cr.id;
            let doomed: Vec<crate::InstKey> = self
                .conflict
                .of_rule(rule_id)
                .filter(|inst| {
                    negated.iter().any(|&ci| {
                        let ce = self.rules[ri].rule.conditions[ci].ce();
                        match_ce(ce, &wme, &inst.bindings).is_some()
                    })
                })
                .map(Instantiation::key)
                .collect();
            for k in doomed {
                self.conflict.remove(&k);
            }
        }
        // 2. The new WME may enable instantiations at positive positions.
        for (ri, ci) in positive_sites {
            for inst in self.compute_instantiations(ri, Some((ci, &wme))) {
                self.conflict.insert(inst);
            }
        }
    }

    fn remove_wme(&mut self, wme: &Wme) {
        let hits = self.alpha.remove_wme(&wme.data.class, wme.id);
        // 1. Drop everything that matched it positively.
        self.conflict.remove_mentioning(wme.id);
        // 2. Its disappearance may enable rules that it blocked via a
        //    negated CE: re-join those rules from scratch.
        let mut rejoin: Vec<usize> = Vec::new();
        for amem in hits {
            for &(ri, ci) in self.readers.get(&amem).into_iter().flatten() {
                if self.rules[ri].rule.conditions[ci].is_negated() {
                    rejoin.push(ri);
                }
            }
        }
        rejoin.sort_unstable();
        rejoin.dedup();
        for ri in rejoin {
            self.stats.rejoin_passes += 1;
            for inst in self.compute_instantiations(ri, None) {
                self.conflict.insert(inst); // idempotent
            }
        }
    }

    /// Test helper: ids of WMEs currently in any alpha memory.
    #[doc(hidden)]
    pub fn alpha_population(&self) -> Vec<WmeId> {
        let mut ids: Vec<WmeId> = (0..self.alpha.memory_count())
            .flat_map(|i| self.alpha.memory(AlphaMemId(i)).wmes().iter().map(|w| w.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl Matcher for Treat {
    fn apply(&mut self, changes: &[Change]) {
        for change in changes {
            match change {
                Change::Added(w) => self.add_wme(w.clone()),
                Change::Removed(w) => self.remove_wme(w),
            }
        }
    }

    fn conflict_set(&self) -> &ConflictSet {
        &self.conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::WmeData;

    fn drive(rules_src: &str, script: impl FnOnce(&mut Treat, &mut WorkingMemory)) -> usize {
        let rules = RuleSet::parse(rules_src).unwrap();
        let mut wm = WorkingMemory::new();
        let mut treat = Treat::new(&rules, &wm);
        script(&mut treat, &mut wm);
        treat.conflict_set().len()
    }

    fn ins(t: &mut Treat, wm: &mut WorkingMemory, data: WmeData) -> WmeId {
        let w = wm.insert_full(data);
        let id = w.id;
        t.apply(&[Change::Added(w)]);
        id
    }

    fn del(t: &mut Treat, wm: &mut WorkingMemory, id: WmeId) {
        let w = wm.remove(id).unwrap();
        t.apply(&[Change::Removed(w)]);
    }

    #[test]
    fn basic_match() {
        let n = drive("(p r (job ^state open) --> (remove 1))", |t, wm| {
            ins(t, wm, WmeData::new("job").with("state", "open"));
            ins(t, wm, WmeData::new("job").with("state", "closed"));
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn join_and_retract() {
        let rules = RuleSet::parse("(p r (a ^k <x>) (b ^k <x>) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        let mut t = Treat::new(&rules, &wm);
        let a = ins(&mut t, &mut wm, WmeData::new("a").with("k", 1i64));
        ins(&mut t, &mut wm, WmeData::new("b").with("k", 1i64));
        assert_eq!(t.conflict_set().len(), 1);
        del(&mut t, &mut wm, a);
        assert!(t.conflict_set().is_empty());
    }

    #[test]
    fn negation_blocks_and_unblocks() {
        let rules = RuleSet::parse("(p r (go) -(hold) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        let mut t = Treat::new(&rules, &wm);
        ins(&mut t, &mut wm, WmeData::new("go"));
        assert_eq!(t.conflict_set().len(), 1);
        let h = ins(&mut t, &mut wm, WmeData::new("hold"));
        assert!(t.conflict_set().is_empty());
        del(&mut t, &mut wm, h);
        assert_eq!(t.conflict_set().len(), 1);
        assert!(t.stats().rejoin_passes >= 1);
    }

    #[test]
    fn negation_with_binding() {
        let rules = RuleSet::parse("(p r (job ^id <j>) -(lock ^job <j>) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        let mut t = Treat::new(&rules, &wm);
        ins(&mut t, &mut wm, WmeData::new("job").with("id", 1i64));
        ins(&mut t, &mut wm, WmeData::new("job").with("id", 2i64));
        assert_eq!(t.conflict_set().len(), 2);
        let l = ins(&mut t, &mut wm, WmeData::new("lock").with("job", 1i64));
        assert_eq!(t.conflict_set().len(), 1);
        del(&mut t, &mut wm, l);
        assert_eq!(t.conflict_set().len(), 2);
    }

    #[test]
    fn same_wme_at_two_positions_is_deduplicated() {
        let rules = RuleSet::parse("(p r (n ^v <x>) (n ^v <x>) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        let mut t = Treat::new(&rules, &wm);
        ins(&mut t, &mut wm, WmeData::new("n").with("v", 1i64));
        // (w,w) must appear exactly once despite being generated from two
        // pinned positions.
        assert_eq!(t.conflict_set().len(), 1);
    }

    #[test]
    fn initial_load_matches() {
        let rules = RuleSet::parse("(p r (x) (y) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("x"));
        wm.insert(WmeData::new("y"));
        let t = Treat::new(&rules, &wm);
        assert_eq!(t.conflict_set().len(), 1);
        assert_eq!(t.alpha_population().len(), 2);
    }
}
