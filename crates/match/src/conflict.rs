//! The conflict set: all currently satisfied instantiations.

use std::collections::{BTreeMap, HashMap, HashSet};

use dps_rules::RuleId;
use dps_wm::WmeId;

use crate::{InstKey, Instantiation};

/// The set of active instantiations (the paper's `P^A`), with indexes for
/// the operations matchers and engines perform constantly:
///
/// * insert / remove by identity key;
/// * drop everything mentioning a WME (on its removal);
/// * enumerate deterministically (keys are ordered) for reproducible
///   selection and testing.
#[derive(Clone, Debug, Default)]
pub struct ConflictSet {
    insts: BTreeMap<InstKey, Instantiation>,
    by_wme: HashMap<WmeId, HashSet<InstKey>>,
    by_rule: HashMap<RuleId, HashSet<InstKey>>,
}

impl ConflictSet {
    /// Creates an empty conflict set.
    pub fn new() -> Self {
        ConflictSet::default()
    }

    /// Number of active instantiations.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when no rule is satisfied — the paper's termination
    /// condition ("If the conflict set is empty ... the system halts").
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Inserts an instantiation; returns `false` if it was already
    /// present (idempotent).
    pub fn insert(&mut self, inst: Instantiation) -> bool {
        let key = inst.key();
        if self.insts.contains_key(&key) {
            return false;
        }
        for w in &inst.wmes {
            self.by_wme.entry(w.id).or_default().insert(key.clone());
        }
        self.by_rule
            .entry(inst.rule)
            .or_default()
            .insert(key.clone());
        self.insts.insert(key, inst);
        true
    }

    /// Removes by key; returns the instantiation when present.
    pub fn remove(&mut self, key: &InstKey) -> Option<Instantiation> {
        let inst = self.insts.remove(key)?;
        for w in &inst.wmes {
            if let Some(set) = self.by_wme.get_mut(&w.id) {
                set.remove(key);
                if set.is_empty() {
                    self.by_wme.remove(&w.id);
                }
            }
        }
        if let Some(set) = self.by_rule.get_mut(&inst.rule) {
            set.remove(key);
            if set.is_empty() {
                self.by_rule.remove(&inst.rule);
            }
        }
        Some(inst)
    }

    /// Removes every instantiation mentioning `id`; returns how many left.
    ///
    /// Takes the whole `by_wme` index set out of the map in one move
    /// instead of cloning each `InstKey` into a temporary `Vec` (an
    /// `InstKey` owns a `Vec<(WmeId, Timestamp)>`, so the old per-key
    /// clones were O(conditions) heap allocations each; see the
    /// micro-bench note in `benches::conflict_drain`). `remove` tolerates
    /// the already-removed `by_wme` entry (`get_mut` → `None`).
    pub fn remove_mentioning(&mut self, id: WmeId) -> usize {
        let keys = self.by_wme.remove(&id).unwrap_or_default();
        let n = keys.len();
        for k in &keys {
            self.remove(k);
        }
        n
    }

    /// Removes every instantiation of a rule; returns them.
    ///
    /// Same drain-the-index pattern as [`remove_mentioning`]: the
    /// `by_rule` set is moved out wholesale, so no `InstKey` is cloned.
    ///
    /// [`remove_mentioning`]: ConflictSet::remove_mentioning
    pub fn remove_of_rule(&mut self, rule: RuleId) -> Vec<Instantiation> {
        let keys = self.by_rule.remove(&rule).unwrap_or_default();
        keys.iter().filter_map(|k| self.remove(k)).collect()
    }

    /// `true` when the key is present.
    pub fn contains(&self, key: &InstKey) -> bool {
        self.insts.contains_key(key)
    }

    /// Looks up by key.
    pub fn get(&self, key: &InstKey) -> Option<&Instantiation> {
        self.insts.get(key)
    }

    /// Iterates instantiations in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Instantiation> {
        self.insts.values()
    }

    /// Instantiations of one rule, in key order.
    pub fn of_rule(&self, rule: RuleId) -> impl Iterator<Item = &Instantiation> + '_ {
        self.insts.values().filter(move |i| i.rule == rule)
    }

    /// The distinct rules currently active.
    pub fn active_rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.by_rule.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_rules::Bindings;
    use dps_wm::{Wme, WmeData};

    fn wme(id: u64, ts: u64) -> Wme {
        Wme {
            id: WmeId(id),
            data: WmeData::new("c"),
            timestamp: ts,
        }
    }

    fn inst(rule: u32, ids: &[(u64, u64)]) -> Instantiation {
        Instantiation {
            rule: RuleId(rule),
            wmes: ids.iter().map(|&(i, t)| wme(i, t)).collect(),
            bindings: Bindings::new(),
            salience: 0,
        }
    }

    #[test]
    fn insert_is_idempotent() {
        let mut cs = ConflictSet::new();
        assert!(cs.insert(inst(0, &[(1, 1)])));
        assert!(!cs.insert(inst(0, &[(1, 1)])));
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn remove_mentioning_drops_all_users() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[(1, 1), (2, 2)]));
        cs.insert(inst(1, &[(2, 2)]));
        cs.insert(inst(2, &[(3, 3)]));
        assert_eq!(cs.remove_mentioning(WmeId(2)), 2);
        assert_eq!(cs.len(), 1);
        assert!(cs.iter().next().unwrap().mentions(WmeId(3)));
    }

    #[test]
    fn remove_of_rule() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[(1, 1)]));
        cs.insert(inst(0, &[(2, 2)]));
        cs.insert(inst(1, &[(3, 3)]));
        let removed = cs.remove_of_rule(RuleId(0));
        assert_eq!(removed.len(), 2);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn indexes_stay_consistent_after_removals() {
        let mut cs = ConflictSet::new();
        let i = inst(0, &[(1, 1)]);
        let k = i.key();
        cs.insert(i);
        cs.remove(&k);
        assert!(cs.is_empty());
        assert_eq!(cs.remove_mentioning(WmeId(1)), 0);
        assert!(cs.remove(&k).is_none());
        assert_eq!(cs.active_rules().count(), 0);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(1, &[(5, 5)]));
        cs.insert(inst(0, &[(9, 9)]));
        cs.insert(inst(0, &[(2, 2)]));
        let order: Vec<(u32, u64)> = cs.iter().map(|i| (i.rule.0, i.wmes[0].id.0)).collect();
        assert_eq!(order, [(0, 2), (0, 9), (1, 5)]);
    }

    #[test]
    fn of_rule_filters() {
        let mut cs = ConflictSet::new();
        cs.insert(inst(0, &[(1, 1)]));
        cs.insert(inst(1, &[(2, 2)]));
        assert_eq!(cs.of_rule(RuleId(1)).count(), 1);
    }
}
