//! The alpha network: constant tests and alpha memories, shared across
//! rules and across matchers (Rete and TREAT use the same structure).

use std::collections::HashMap;

use dps_rules::{ConditionElement, Predicate, RuleSet, TestAtom};
use dps_wm::{Atom, Value, Wme, WmeId, WorkingMemory};

/// Index of an alpha memory within an [`AlphaNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlphaMemId(pub usize);

/// A canonical, order-insensitive signature of a condition element's
/// class + constant tests — the sharing key of the alpha network. The
/// value list is a singleton for ordinary constant tests and the sorted
/// alternatives for a `<< ... >>` disjunction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct AlphaKey {
    class: Atom,
    tests: Vec<(Atom, Predicate, Vec<Value>)>,
}

impl AlphaKey {
    fn of(ce: &ConditionElement) -> Self {
        let mut tests: Vec<(Atom, Predicate, Vec<Value>)> = ce
            .constant_tests()
            .map(|t| match &t.operand {
                TestAtom::Const(v) => (t.attr.clone(), t.predicate, vec![v.clone()]),
                TestAtom::OneOf(vs) => {
                    let mut vs = vs.clone();
                    vs.sort();
                    vs.dedup();
                    (t.attr.clone(), t.predicate, vs)
                }
                TestAtom::Var(_) => unreachable!("constant_tests yields constants"),
            })
            .collect();
        tests.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        AlphaKey {
            class: ce.class.clone(),
            tests,
        }
    }

    fn matches(&self, wme: &Wme) -> bool {
        wme.class() == &self.class
            && self.tests.iter().all(|(attr, p, vs)| {
                let actual = wme.get_or_nil(attr.as_str());
                vs.iter().any(|v| p.apply(&actual, v))
            })
    }
}

/// Normalises a value for use as a strict hash key standing in for the
/// matcher's *loose* (numerically coercing) equality: integral floats
/// collapse onto their integer form (and `-0.0` onto `0`), so
/// `Int(2)` and `Float(2.0)` share a key exactly when they are
/// loose-equal. (Floats with magnitude ≥ 2^63 keep their float key; the
/// only values this mis-buckets are astronomically large int/float pairs
/// at the edge of `i64`, which scans would also treat inconsistently
/// under IEEE rounding.)
pub(crate) fn index_key(v: &Value) -> Value {
    if let Value::Float(f) = v {
        if f.fract() == 0.0 && f.is_finite() && *f >= i64::MIN as f64 && *f < i64::MAX as f64 {
            return Value::Int(*f as i64);
        }
    }
    v.clone()
}

/// One alpha memory: the WMEs passing one class + constant-test signature.
#[derive(Clone, Debug, Default)]
pub struct AlphaMemory {
    /// Live members in insertion order (ids kept sorted for determinism).
    wmes: Vec<Wme>,
    /// Optional per-attribute value indexes (normalised keys), registered
    /// by join nodes that test equality on the attribute.
    indexes: HashMap<Atom, HashMap<Value, Vec<WmeId>>>,
}

impl AlphaMemory {
    /// Live members.
    pub fn wmes(&self) -> &[Wme] {
        &self.wmes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.wmes.len()
    }

    /// `true` when the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.wmes.is_empty()
    }

    /// Looks up a member by id.
    pub fn get(&self, id: WmeId) -> Option<&Wme> {
        self.wmes
            .binary_search_by_key(&id, |w| w.id)
            .ok()
            .map(|i| &self.wmes[i])
    }

    /// Registers (and builds) a value index on `attr` (idempotent).
    pub fn ensure_index(&mut self, attr: &Atom) {
        if self.indexes.contains_key(attr) {
            return;
        }
        let mut by_val: HashMap<Value, Vec<WmeId>> = HashMap::new();
        for w in &self.wmes {
            by_val
                .entry(index_key(&w.get_or_nil(attr.as_str())))
                .or_default()
                .push(w.id);
        }
        self.indexes.insert(attr.clone(), by_val);
    }

    /// Ids of members whose (normalised) `attr` value equals `key`.
    /// Panics in debug builds if the index was never registered.
    pub fn lookup(&self, attr: &str, key: &Value) -> &[WmeId] {
        debug_assert!(
            self.indexes.contains_key(attr),
            "index on {attr} not registered"
        );
        self.indexes
            .get(attr)
            .and_then(|by_val| by_val.get(key))
            .map_or(&[], Vec::as_slice)
    }

    fn insert(&mut self, wme: Wme) {
        for (attr, by_val) in &mut self.indexes {
            let key = index_key(&wme.get_or_nil(attr.as_str()));
            let bucket = by_val.entry(key).or_default();
            if !bucket.contains(&wme.id) {
                bucket.push(wme.id);
            }
        }
        match self.wmes.binary_search_by_key(&wme.id, |w| w.id) {
            Ok(i) => self.wmes[i] = wme,
            Err(i) => self.wmes.insert(i, wme),
        }
    }

    fn remove(&mut self, id: WmeId) -> bool {
        match self.wmes.binary_search_by_key(&id, |w| w.id) {
            Ok(i) => {
                let wme = self.wmes.remove(i);
                for (attr, by_val) in &mut self.indexes {
                    let key = index_key(&wme.get_or_nil(attr.as_str()));
                    if let Some(bucket) = by_val.get_mut(&key) {
                        bucket.retain(|&x| x != id);
                        if bucket.is_empty() {
                            by_val.remove(&key);
                        }
                    }
                }
                true
            }
            Err(_) => false,
        }
    }
}

/// The shared alpha network: class-indexed constant-test nodes feeding
/// alpha memories.
///
/// Built once from a [`RuleSet`]; identical class+constant-test patterns
/// across condition elements (within or across rules) share one memory —
/// Rete's "sharing of common subexpressions".
#[derive(Clone, Debug, Default)]
pub struct AlphaNetwork {
    keys: Vec<AlphaKey>,
    mems: Vec<AlphaMemory>,
    share: HashMap<AlphaKey, AlphaMemId>,
    /// Class → alpha memories that could accept members of it.
    by_class: HashMap<Atom, Vec<AlphaMemId>>,
}

impl AlphaNetwork {
    /// Builds the network for every condition element of every rule and
    /// loads the initial working memory.
    pub fn new(rules: &RuleSet, wm: &WorkingMemory) -> Self {
        let mut net = AlphaNetwork::default();
        for (_, rule) in rules.iter() {
            for cond in &rule.conditions {
                net.register(cond.ce());
            }
        }
        for wme in wm.iter() {
            net.add_wme(wme.clone());
        }
        net
    }

    /// Registers a condition element, returning its (possibly shared)
    /// alpha memory id. Memories registered after WMEs were loaded start
    /// empty, so register everything before loading.
    pub fn register(&mut self, ce: &ConditionElement) -> AlphaMemId {
        let key = AlphaKey::of(ce);
        if let Some(&id) = self.share.get(&key) {
            return id;
        }
        let id = AlphaMemId(self.mems.len());
        self.by_class.entry(key.class.clone()).or_default().push(id);
        self.share.insert(key.clone(), id);
        self.keys.push(key);
        self.mems.push(AlphaMemory::default());
        id
    }

    /// Number of distinct alpha memories (a sharing metric).
    pub fn memory_count(&self) -> usize {
        self.mems.len()
    }

    /// The memory for an id.
    pub fn memory(&self, id: AlphaMemId) -> &AlphaMemory {
        &self.mems[id.0]
    }

    /// Adds a WME, returning the ids of the memories it entered.
    pub fn add_wme(&mut self, wme: Wme) -> Vec<AlphaMemId> {
        let mut hits = Vec::new();
        if let Some(candidates) = self.by_class.get(wme.class()) {
            for &id in candidates {
                if self.keys[id.0].matches(&wme) {
                    self.mems[id.0].insert(wme.clone());
                    hits.push(id);
                }
            }
        }
        hits
    }

    /// Registers a per-attribute value index on a memory (idempotent).
    pub fn ensure_index(&mut self, id: AlphaMemId, attr: &Atom) {
        self.mems[id.0].ensure_index(attr);
    }

    /// Removes a WME, returning the ids of the memories it left.
    pub fn remove_wme(&mut self, class: &Atom, id: WmeId) -> Vec<AlphaMemId> {
        let mut hits = Vec::new();
        if let Some(candidates) = self.by_class.get(class) {
            for &mem in candidates {
                if self.mems[mem.0].remove(id) {
                    hits.push(mem);
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_rules::parser::parse_condition_element;
    use dps_wm::WmeData;

    fn net_with(ces: &[&str]) -> (AlphaNetwork, Vec<AlphaMemId>) {
        let mut net = AlphaNetwork::default();
        let ids = ces
            .iter()
            .map(|s| net.register(&parse_condition_element(s).unwrap()))
            .collect();
        (net, ids)
    }

    fn wme(id: u64, class: &str, pairs: &[(&str, Value)]) -> Wme {
        let mut data = WmeData::new(class);
        for (a, v) in pairs {
            data.set(*a, v.clone());
        }
        Wme {
            id: WmeId(id),
            data,
            timestamp: id,
        }
    }

    #[test]
    fn identical_patterns_share_one_memory() {
        let (net, ids) = net_with(&["(job ^state open)", "(job ^state open)"]);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(net.memory_count(), 1);
    }

    #[test]
    fn test_order_does_not_defeat_sharing() {
        let (net, ids) = net_with(&["(job ^a 1 ^b 2)", "(job ^b 2 ^a 1)"]);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(net.memory_count(), 1);
    }

    #[test]
    fn variable_tests_do_not_affect_the_key() {
        // Constant parts equal; variable parts differ → still shared.
        let (net, ids) = net_with(&["(job ^state open ^v <x>)", "(job ^state open ^w <y>)"]);
        assert_eq!(ids[0], ids[1]);
        let _ = net;
    }

    #[test]
    fn different_constants_get_different_memories() {
        let (net, ids) = net_with(&[
            "(job ^state open)",
            "(job ^state closed)",
            "(task ^state open)",
        ]);
        assert_eq!(net.memory_count(), 3);
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn add_routes_to_matching_memories() {
        let (mut net, ids) = net_with(&["(job ^state open)", "(job)"]);
        let hits = net.add_wme(wme(1, "job", &[("state", Value::from("open"))]));
        assert_eq!(hits.len(), 2);
        let hits = net.add_wme(wme(2, "job", &[("state", Value::from("closed"))]));
        assert_eq!(hits, vec![ids[1]]);
        let hits = net.add_wme(wme(3, "task", &[]));
        assert!(hits.is_empty());
        assert_eq!(net.memory(ids[0]).len(), 1);
        assert_eq!(net.memory(ids[1]).len(), 2);
    }

    #[test]
    fn remove_reports_memories_left() {
        let (mut net, ids) = net_with(&["(job ^state open)"]);
        net.add_wme(wme(1, "job", &[("state", Value::from("open"))]));
        let left = net.remove_wme(&Atom::from("job"), WmeId(1));
        assert_eq!(left, vec![ids[0]]);
        assert!(net.memory(ids[0]).is_empty());
        // Second removal is a no-op.
        assert!(net.remove_wme(&Atom::from("job"), WmeId(1)).is_empty());
    }

    #[test]
    fn numeric_constant_tests() {
        let (mut net, ids) = net_with(&["(m ^v > 4)"]);
        assert_eq!(
            net.add_wme(wme(1, "m", &[("v", Value::Int(5))])),
            vec![ids[0]]
        );
        assert!(net.add_wme(wme(2, "m", &[("v", Value::Int(3))])).is_empty());
        assert!(
            net.add_wme(wme(3, "m", &[])).is_empty(),
            "missing attr = Nil fails '>'"
        );
    }

    #[test]
    fn value_index_tracks_membership() {
        let (mut net, ids) = net_with(&["(m)"]);
        net.ensure_index(ids[0], &Atom::from("k"));
        net.add_wme(wme(1, "m", &[("k", Value::Int(3))]));
        net.add_wme(wme(2, "m", &[("k", Value::Int(3))]));
        net.add_wme(wme(3, "m", &[("k", Value::Int(5))]));
        let mem = net.memory(ids[0]);
        assert_eq!(mem.lookup("k", &Value::Int(3)), [WmeId(1), WmeId(2)]);
        assert_eq!(mem.lookup("k", &Value::Int(5)), [WmeId(3)]);
        assert!(mem.lookup("k", &Value::Int(9)).is_empty());
        net.remove_wme(&Atom::from("m"), WmeId(1));
        assert_eq!(net.memory(ids[0]).lookup("k", &Value::Int(3)), [WmeId(2)]);
        assert_eq!(net.memory(ids[0]).get(WmeId(2)).unwrap().id, WmeId(2));
        assert!(net.memory(ids[0]).get(WmeId(1)).is_none());
    }

    #[test]
    fn index_key_normalises_numerics() {
        assert_eq!(index_key(&Value::Float(2.0)), Value::Int(2));
        assert_eq!(index_key(&Value::Float(-0.0)), Value::Int(0));
        assert_eq!(index_key(&Value::Float(2.5)), Value::Float(2.5));
        assert_eq!(index_key(&Value::Int(7)), Value::Int(7));
        assert_eq!(index_key(&Value::from("x")), Value::from("x"));
        assert_eq!(index_key(&Value::Float(f64::NAN)).to_string(), "NaN");
    }

    #[test]
    fn index_built_late_covers_existing_members() {
        let (mut net, ids) = net_with(&["(m)"]);
        net.add_wme(wme(1, "m", &[("k", Value::Float(4.0))]));
        net.ensure_index(ids[0], &Atom::from("k"));
        // Normalised key: Int(4) finds the Float(4.0) member.
        assert_eq!(net.memory(ids[0]).lookup("k", &Value::Int(4)), [WmeId(1)]);
    }

    #[test]
    fn initial_load_from_working_memory() {
        let rules = dps_rules::RuleSet::parse("(p r (job ^state open) --> (remove 1))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("job").with("state", "open"));
        wm.insert(WmeData::new("job").with("state", "closed"));
        let net = AlphaNetwork::new(&rules, &wm);
        assert_eq!(net.memory(AlphaMemId(0)).len(), 1);
    }
}
