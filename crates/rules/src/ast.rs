//! The rule abstract syntax tree.

use std::fmt;

use dps_wm::{Atom, Value};

use crate::RuleError;

/// A variable name, e.g. the `x` in `<x>`.
pub type VarName = Atom;

/// The operand of an attribute test: a constant or a variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TestAtom {
    /// Compare against a constant.
    Const(Value),
    /// Compare against (or bind) a variable.
    Var(VarName),
    /// OPS5 value disjunction `<< v1 v2 ... >>`: equal to any listed
    /// constant. Only meaningful with [`Predicate::Eq`] (validated).
    OneOf(Vec<Value>),
}

impl fmt::Display for TestAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestAtom::Const(v) => write!(f, "{v}"),
            TestAtom::Var(v) => write!(f, "<{v}>"),
            TestAtom::OneOf(vs) => {
                write!(f, "<<")?;
                for v in vs {
                    write!(f, " {v}")?;
                }
                write!(f, " >>")
            }
        }
    }
}

/// Comparison predicate in an attribute test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `=` — equality (and the binding occurrence for unbound variables).
    Eq,
    /// `<>` — inequality.
    Ne,
    /// `<` — numeric less-than.
    Lt,
    /// `<=` — numeric less-or-equal.
    Le,
    /// `>` — numeric greater-than.
    Gt,
    /// `>=` — numeric greater-or-equal.
    Ge,
}

impl Predicate {
    /// Applies the predicate to a WME value (left) and operand (right).
    /// Ordering predicates on non-numeric values evaluate to `false`.
    pub fn apply(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Predicate::Eq => left.loose_eq(right),
            Predicate::Ne => !left.loose_eq(right),
            Predicate::Lt => left.num_cmp(right) == Some(Less),
            Predicate::Le => matches!(left.num_cmp(right), Some(Less | Equal)),
            Predicate::Gt => left.num_cmp(right) == Some(Greater),
            Predicate::Ge => matches!(left.num_cmp(right), Some(Greater | Equal)),
        }
    }

    /// The DSL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            Predicate::Eq => "=",
            Predicate::Ne => "<>",
            Predicate::Lt => "<",
            Predicate::Le => "<=",
            Predicate::Gt => ">",
            Predicate::Ge => ">=",
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One test on one attribute of the candidate WME.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AttrTest {
    /// Attribute being tested.
    pub attr: Atom,
    /// Predicate.
    pub predicate: Predicate,
    /// Right-hand operand.
    pub operand: TestAtom,
}

impl AttrTest {
    /// `true` when the operand is bindings-free — such tests can be
    /// evaluated in the alpha network.
    pub fn is_constant(&self) -> bool {
        matches!(self.operand, TestAtom::Const(_) | TestAtom::OneOf(_))
    }
}

/// A condition element: a pattern over one class.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ConditionElement {
    /// Class the candidate WME must belong to.
    pub class: Atom,
    /// Conjunction of attribute tests.
    pub tests: Vec<AttrTest>,
}

impl ConditionElement {
    /// Creates a test-free pattern matching any WME of `class`.
    pub fn any(class: impl Into<Atom>) -> Self {
        ConditionElement {
            class: class.into(),
            tests: Vec::new(),
        }
    }

    /// The constant (bindings-free) tests — the alpha-network share key.
    pub fn constant_tests(&self) -> impl Iterator<Item = &AttrTest> {
        self.tests.iter().filter(|t| t.is_constant())
    }

    /// The variable tests, which require join-time bindings.
    pub fn variable_tests(&self) -> impl Iterator<Item = &AttrTest> {
        self.tests.iter().filter(|t| !t.is_constant())
    }

    /// Variables this CE can *bind* (equality tests on a variable).
    pub fn bindable_vars(&self) -> impl Iterator<Item = &VarName> {
        self.tests
            .iter()
            .filter_map(|t| match (&t.predicate, &t.operand) {
                (Predicate::Eq, TestAtom::Var(v)) => Some(v),
                _ => None,
            })
    }

    /// All variables mentioned by this CE.
    pub fn mentioned_vars(&self) -> impl Iterator<Item = &VarName> {
        self.tests.iter().filter_map(|t| match &t.operand {
            TestAtom::Var(v) => Some(v),
            _ => None,
        })
    }
}

/// A positive or negated condition element.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Must match at least one WME.
    Pos(ConditionElement),
    /// Must match no WME (OPS5 negation).
    Neg(ConditionElement),
}

impl Condition {
    /// The underlying pattern.
    pub fn ce(&self) -> &ConditionElement {
        match self {
            Condition::Pos(ce) | Condition::Neg(ce) => ce,
        }
    }

    /// `true` for a negated CE.
    pub fn is_negated(&self) -> bool {
        matches!(self, Condition::Neg(_))
    }
}

/// Arithmetic operator in an RHS expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division when both operands are integers;
    /// division by zero is a runtime [`RuleError`]).
    Div,
    /// Remainder.
    Mod,
}

impl Op {
    /// The DSL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::Mod => "%",
        }
    }
}

/// An RHS expression: constants, bound variables and arithmetic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A variable bound by the LHS.
    Var(VarName),
    /// Binary arithmetic.
    BinOp(Op, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary operations.
    pub fn bin(op: Op, l: Expr, r: Expr) -> Expr {
        Expr::BinOp(op, Box::new(l), Box::new(r))
    }

    /// Variables mentioned anywhere in the expression.
    pub fn vars(&self, out: &mut Vec<VarName>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::BinOp(_, l, r) => {
                l.vars(out);
                r.vars(out);
            }
        }
    }
}

/// One RHS operation. `make`/`modify`/`remove` mirror the paper's
/// `create`/`modify`/`delete`; `halt` stops the interpreter (OPS5).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Insert a new WME.
    Make {
        /// Class of the new element.
        class: Atom,
        /// Attribute expressions.
        attrs: Vec<(Atom, Expr)>,
    },
    /// Modify the WME matched by the `ce`-th positive condition element
    /// (1-based, as in OPS5).
    Modify {
        /// 1-based positive-CE index.
        ce: usize,
        /// Attributes to overwrite.
        attrs: Vec<(Atom, Expr)>,
    },
    /// Remove the WME matched by the `ce`-th positive condition element.
    Remove {
        /// 1-based positive-CE index.
        ce: usize,
    },
    /// Stop the interpreter after this production commits.
    Halt,
}

/// A production rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Unique rule name.
    pub name: Atom,
    /// Priority used by salience-based conflict resolution (default 0).
    pub salience: i32,
    /// The LHS: an ordered conjunction of condition elements.
    pub conditions: Vec<Condition>,
    /// The RHS.
    pub actions: Vec<Action>,
}

impl Rule {
    /// Number of positive condition elements.
    pub fn positive_arity(&self) -> usize {
        self.conditions.iter().filter(|c| !c.is_negated()).count()
    }

    /// The positive condition elements, in order.
    pub fn positive_ces(&self) -> impl Iterator<Item = &ConditionElement> {
        self.conditions
            .iter()
            .filter(|c| !c.is_negated())
            .map(Condition::ce)
    }

    /// Structural validation:
    ///
    /// * the first condition must be positive (it anchors the join chain);
    /// * every variable used in a negated CE, an ordering/inequality test,
    ///   or the RHS must be bound by an earlier (or same, for positive CEs)
    ///   equality occurrence;
    /// * `modify`/`remove` indices must reference existing positive CEs.
    pub fn validate(&self) -> Result<(), RuleError> {
        if self.conditions.is_empty() {
            return Err(RuleError::Invalid(
                self.name.clone(),
                "rule has no conditions".into(),
            ));
        }
        if self.conditions[0].is_negated() {
            return Err(RuleError::Invalid(
                self.name.clone(),
                "first condition element must be positive".into(),
            ));
        }
        let mut bound: Vec<VarName> = Vec::new();
        for cond in &self.conditions {
            let ce = cond.ce();
            // Non-binding uses must refer to variables bound earlier or
            // (for positive CEs) bindable within this CE.
            let locally_bindable: Vec<&VarName> = if cond.is_negated() {
                // A negated CE may bind variables only for its own local
                // tests; those bindings do not escape. We allow local
                // equality occurrences.
                ce.bindable_vars().collect()
            } else {
                ce.bindable_vars().collect()
            };
            for t in &ce.tests {
                if let TestAtom::OneOf(vs) = &t.operand {
                    if t.predicate != Predicate::Eq {
                        return Err(RuleError::Invalid(
                            self.name.clone(),
                            format!("disjunction on ^{} requires the = predicate", t.attr),
                        ));
                    }
                    if vs.is_empty() {
                        return Err(RuleError::Invalid(
                            self.name.clone(),
                            format!("empty disjunction on ^{}", t.attr),
                        ));
                    }
                }
                if let TestAtom::Var(v) = &t.operand {
                    let is_binding_occurrence = t.predicate == Predicate::Eq;
                    if !is_binding_occurrence
                        && !bound.contains(v)
                        && !locally_bindable.contains(&v)
                    {
                        return Err(RuleError::UnboundVariable(self.name.clone(), v.clone()));
                    }
                }
            }
            if !cond.is_negated() {
                for v in ce.bindable_vars() {
                    if !bound.contains(v) {
                        bound.push(v.clone());
                    }
                }
            }
        }
        let arity = self.positive_arity();
        for action in &self.actions {
            match action {
                Action::Make { attrs, .. } => {
                    for (_, e) in attrs {
                        let mut vs = Vec::new();
                        e.vars(&mut vs);
                        for v in vs {
                            if !bound.contains(&v) {
                                return Err(RuleError::UnboundVariable(self.name.clone(), v));
                            }
                        }
                    }
                }
                Action::Modify { ce, attrs } => {
                    if *ce == 0 || *ce > arity {
                        return Err(RuleError::BadCeIndex(self.name.clone(), *ce, arity));
                    }
                    for (_, e) in attrs {
                        let mut vs = Vec::new();
                        e.vars(&mut vs);
                        for v in vs {
                            if !bound.contains(&v) {
                                return Err(RuleError::UnboundVariable(self.name.clone(), v));
                            }
                        }
                    }
                }
                Action::Remove { ce } => {
                    if *ce == 0 || *ce > arity {
                        return Err(RuleError::BadCeIndex(self.name.clone(), *ce, arity));
                    }
                }
                Action::Halt => {}
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Display: the canonical DSL rendering (parse . to_string == identity).
// ---------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "<{v}>"),
            Expr::BinOp(op, l, r) => write!(f, "({} {l} {r})", op.symbol()),
        }
    }
}

impl fmt::Display for ConditionElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.class)?;
        // Group tests by attribute so conjunctions render inside braces.
        let mut i = 0;
        while i < self.tests.len() {
            let attr = &self.tests[i].attr;
            let mut j = i;
            while j < self.tests.len() && &self.tests[j].attr == attr {
                j += 1;
            }
            let group = &self.tests[i..j];
            write!(f, " ^{attr} ")?;
            if group.len() == 1 && group[0].predicate == Predicate::Eq {
                write!(f, "{}", group[0].operand)?;
            } else {
                write!(f, "{{")?;
                for t in group {
                    if t.predicate == Predicate::Eq {
                        write!(f, " {}", t.operand)?;
                    } else {
                        write!(f, " {} {}", t.predicate, t.operand)?;
                    }
                }
                write!(f, " }}")?;
            }
            i = j;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Pos(ce) => write!(f, "{ce}"),
            Condition::Neg(ce) => write!(f, "-{ce}"),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Make { class, attrs } => {
                write!(f, "(make {class}")?;
                for (a, e) in attrs {
                    write!(f, " ^{a} {e}")?;
                }
                write!(f, ")")
            }
            Action::Modify { ce, attrs } => {
                write!(f, "(modify {ce}")?;
                for (a, e) in attrs {
                    write!(f, " ^{a} {e}")?;
                }
                write!(f, ")")
            }
            Action::Remove { ce } => write!(f, "(remove {ce})"),
            Action::Halt => write!(f, "(halt)"),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(p {}", self.name)?;
        if self.salience != 0 {
            write!(f, " (salience {})", self.salience)?;
        }
        for c in &self.conditions {
            write!(f, "\n   {c}")?;
        }
        write!(f, "\n   -->")?;
        for a in &self.actions {
            write!(f, "\n   {a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(s: &str) -> TestAtom {
        TestAtom::Var(Atom::from(s))
    }

    fn test(attr: &str, p: Predicate, op: TestAtom) -> AttrTest {
        AttrTest {
            attr: Atom::from(attr),
            predicate: p,
            operand: op,
        }
    }

    fn simple_rule() -> Rule {
        Rule {
            name: Atom::from("r"),
            salience: 0,
            conditions: vec![Condition::Pos(ConditionElement {
                class: Atom::from("task"),
                tests: vec![test("n", Predicate::Eq, var("x"))],
            })],
            actions: vec![Action::Modify {
                ce: 1,
                attrs: vec![(
                    Atom::from("n"),
                    Expr::bin(
                        Op::Add,
                        Expr::Var(Atom::from("x")),
                        Expr::Const(Value::Int(1)),
                    ),
                )],
            }],
        }
    }

    #[test]
    fn predicates_apply() {
        use Predicate::*;
        let (two, three) = (Value::Int(2), Value::Int(3));
        assert!(Eq.apply(&two, &Value::Float(2.0)));
        assert!(Ne.apply(&two, &three));
        assert!(Lt.apply(&two, &three));
        assert!(Le.apply(&two, &two));
        assert!(Gt.apply(&three, &two));
        assert!(Ge.apply(&three, &three));
        // Ordering on non-numerics is false, never a panic.
        assert!(!Lt.apply(&Value::from("a"), &Value::from("b")));
    }

    #[test]
    fn valid_rule_passes() {
        assert_eq!(simple_rule().validate(), Ok(()));
    }

    #[test]
    fn first_condition_must_be_positive() {
        let mut r = simple_rule();
        r.conditions[0] = Condition::Neg(ConditionElement::any("task"));
        assert!(matches!(r.validate(), Err(RuleError::Invalid(_, _))));
    }

    #[test]
    fn empty_conditions_rejected() {
        let mut r = simple_rule();
        r.conditions.clear();
        assert!(r.validate().is_err());
    }

    #[test]
    fn unbound_variable_in_rhs_rejected() {
        let mut r = simple_rule();
        r.actions.push(Action::Make {
            class: Atom::from("out"),
            attrs: vec![(Atom::from("v"), Expr::Var(Atom::from("ghost")))],
        });
        assert_eq!(
            r.validate(),
            Err(RuleError::UnboundVariable(
                Atom::from("r"),
                Atom::from("ghost")
            ))
        );
    }

    #[test]
    fn unbound_variable_in_ordering_test_rejected() {
        let mut r = simple_rule();
        r.conditions.push(Condition::Pos(ConditionElement {
            class: Atom::from("limit"),
            tests: vec![test("max", Predicate::Lt, var("unseen"))],
        }));
        assert!(matches!(
            r.validate(),
            Err(RuleError::UnboundVariable(_, _))
        ));
    }

    #[test]
    fn negated_ce_variables_do_not_escape() {
        // <y> bound only inside a negated CE must not be usable in the RHS.
        let mut r = simple_rule();
        r.conditions.push(Condition::Neg(ConditionElement {
            class: Atom::from("block"),
            tests: vec![test("v", Predicate::Eq, var("y"))],
        }));
        r.actions.push(Action::Make {
            class: Atom::from("out"),
            attrs: vec![(Atom::from("v"), Expr::Var(Atom::from("y")))],
        });
        assert!(matches!(
            r.validate(),
            Err(RuleError::UnboundVariable(_, _))
        ));
    }

    #[test]
    fn bad_ce_index_rejected() {
        let mut r = simple_rule();
        r.actions.push(Action::Remove { ce: 2 });
        assert_eq!(
            r.validate(),
            Err(RuleError::BadCeIndex(Atom::from("r"), 2, 1))
        );
        r.actions.pop();
        r.actions.push(Action::Remove { ce: 0 });
        assert!(r.validate().is_err());
    }

    #[test]
    fn display_renders_dsl() {
        let r = simple_rule();
        let s = r.to_string();
        assert!(s.starts_with("(p r"));
        assert!(s.contains("(task ^n <x>)"));
        assert!(s.contains("-->"));
        assert!(s.contains("(modify 1 ^n (+ <x> 1))"));
    }

    #[test]
    fn display_groups_conjunctive_tests_in_braces() {
        let ce = ConditionElement {
            class: Atom::from("j"),
            tests: vec![
                test("cost", Predicate::Gt, TestAtom::Const(Value::Int(0))),
                test("cost", Predicate::Eq, var("c")),
            ],
        };
        assert_eq!(ce.to_string(), "(j ^cost { > 0 <c> })");
    }

    #[test]
    fn ce_classifies_tests() {
        let ce = ConditionElement {
            class: Atom::from("j"),
            tests: vec![
                test("a", Predicate::Eq, TestAtom::Const(Value::Int(1))),
                test("b", Predicate::Eq, var("x")),
                test("c", Predicate::Lt, var("x")),
            ],
        };
        assert_eq!(ce.constant_tests().count(), 1);
        assert_eq!(ce.variable_tests().count(), 2);
        assert_eq!(ce.bindable_vars().count(), 1);
        assert_eq!(ce.mentioned_vars().count(), 2);
    }
}
