//! Fluent builder API for constructing rules in Rust code.
//!
//! The builder mirrors the DSL one-to-one and validates on
//! [`RuleBuilder::build`]:
//!
//! ```
//! use dps_rules::builder::{rule, ce, var, val};
//!
//! let r = rule("bump")
//!     .when(ce("counter").bind("n", "n"))
//!     .then_modify(1, [("n", var("n") + val(1))])
//!     .build()
//!     .unwrap();
//! assert_eq!(r.to_string(), "(p bump\n   (counter ^n <n>)\n   -->\n   (modify 1 ^n (+ <n> 1)))");
//! ```

use dps_wm::{Atom, Value};

use crate::{
    Action, AttrTest, Condition, ConditionElement, Expr, Op, Predicate, Rule, RuleError, TestAtom,
};

/// Starts building a rule.
pub fn rule(name: impl Into<Atom>) -> RuleBuilder {
    RuleBuilder {
        rule: Rule {
            name: name.into(),
            salience: 0,
            conditions: Vec::new(),
            actions: Vec::new(),
        },
    }
}

/// Starts building a condition element for `class`.
pub fn ce(class: impl Into<Atom>) -> CeBuilder {
    CeBuilder {
        ce: ConditionElement::any(class),
    }
}

/// An expression referencing a bound variable.
pub fn var(name: impl Into<Atom>) -> ExprBuilder {
    ExprBuilder(Expr::Var(name.into()))
}

/// A constant expression.
pub fn val(v: impl Into<Value>) -> ExprBuilder {
    ExprBuilder(Expr::Const(v.into()))
}

/// Builder for a [`ConditionElement`].
#[derive(Clone, Debug)]
pub struct CeBuilder {
    ce: ConditionElement,
}

impl CeBuilder {
    fn push(mut self, attr: impl Into<Atom>, predicate: Predicate, operand: TestAtom) -> Self {
        self.ce.tests.push(AttrTest {
            attr: attr.into(),
            predicate,
            operand,
        });
        self
    }

    /// `^attr value` — equality against a constant.
    #[must_use]
    pub fn eq(self, attr: impl Into<Atom>, v: impl Into<Value>) -> Self {
        self.push(attr, Predicate::Eq, TestAtom::Const(v.into()))
    }

    /// `^attr <var>` — bind (or test) a variable.
    #[must_use]
    pub fn bind(self, attr: impl Into<Atom>, var: impl Into<Atom>) -> Self {
        self.push(attr, Predicate::Eq, TestAtom::Var(var.into()))
    }

    /// `^attr <> value`.
    #[must_use]
    pub fn ne(self, attr: impl Into<Atom>, v: impl Into<Value>) -> Self {
        self.push(attr, Predicate::Ne, TestAtom::Const(v.into()))
    }

    /// `^attr < value`.
    #[must_use]
    pub fn lt(self, attr: impl Into<Atom>, v: impl Into<Value>) -> Self {
        self.push(attr, Predicate::Lt, TestAtom::Const(v.into()))
    }

    /// `^attr <= value`.
    #[must_use]
    pub fn le(self, attr: impl Into<Atom>, v: impl Into<Value>) -> Self {
        self.push(attr, Predicate::Le, TestAtom::Const(v.into()))
    }

    /// `^attr > value`.
    #[must_use]
    pub fn gt(self, attr: impl Into<Atom>, v: impl Into<Value>) -> Self {
        self.push(attr, Predicate::Gt, TestAtom::Const(v.into()))
    }

    /// `^attr >= value`.
    #[must_use]
    pub fn ge(self, attr: impl Into<Atom>, v: impl Into<Value>) -> Self {
        self.push(attr, Predicate::Ge, TestAtom::Const(v.into()))
    }

    /// A predicate test against a bound variable, e.g. `^attr > <x>`.
    #[must_use]
    pub fn cmp_var(self, attr: impl Into<Atom>, p: Predicate, var: impl Into<Atom>) -> Self {
        self.push(attr, p, TestAtom::Var(var.into()))
    }

    /// `^attr << v1 v2 ... >>` — equal to any listed constant.
    #[must_use]
    pub fn one_of<V: Into<Value>>(
        self,
        attr: impl Into<Atom>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.push(
            attr,
            Predicate::Eq,
            TestAtom::OneOf(values.into_iter().map(Into::into).collect()),
        )
    }

    /// Finishes the condition element.
    pub fn into_ce(self) -> ConditionElement {
        self.ce
    }
}

/// Expression builder with operator overloading.
#[derive(Clone, Debug)]
pub struct ExprBuilder(pub Expr);

macro_rules! impl_expr_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for ExprBuilder {
            type Output = ExprBuilder;
            fn $method(self, rhs: ExprBuilder) -> ExprBuilder {
                ExprBuilder(Expr::bin($op, self.0, rhs.0))
            }
        }
    };
}

impl_expr_op!(Add, add, Op::Add);
impl_expr_op!(Sub, sub, Op::Sub);
impl_expr_op!(Mul, mul, Op::Mul);
impl_expr_op!(Div, div, Op::Div);
impl_expr_op!(Rem, rem, Op::Mod);

impl From<ExprBuilder> for Expr {
    fn from(b: ExprBuilder) -> Expr {
        b.0
    }
}

/// Builder for a [`Rule`].
#[derive(Clone, Debug)]
pub struct RuleBuilder {
    rule: Rule,
}

impl RuleBuilder {
    /// Sets the salience (priority) of the rule.
    #[must_use]
    pub fn salience(mut self, s: i32) -> Self {
        self.rule.salience = s;
        self
    }

    /// Adds a positive condition element.
    #[must_use]
    pub fn when(mut self, ce: CeBuilder) -> Self {
        self.rule.conditions.push(Condition::Pos(ce.into_ce()));
        self
    }

    /// Adds a negated condition element.
    #[must_use]
    pub fn when_not(mut self, ce: CeBuilder) -> Self {
        self.rule.conditions.push(Condition::Neg(ce.into_ce()));
        self
    }

    /// Adds a `make` action.
    #[must_use]
    pub fn then_make<A, E>(
        mut self,
        class: impl Into<Atom>,
        attrs: impl IntoIterator<Item = (A, E)>,
    ) -> Self
    where
        A: Into<Atom>,
        E: Into<Expr>,
    {
        self.rule.actions.push(Action::Make {
            class: class.into(),
            attrs: attrs
                .into_iter()
                .map(|(a, e)| (a.into(), e.into()))
                .collect(),
        });
        self
    }

    /// Adds a `modify` action on the `ce`-th positive CE (1-based).
    #[must_use]
    pub fn then_modify<A, E>(mut self, ce: usize, attrs: impl IntoIterator<Item = (A, E)>) -> Self
    where
        A: Into<Atom>,
        E: Into<Expr>,
    {
        self.rule.actions.push(Action::Modify {
            ce,
            attrs: attrs
                .into_iter()
                .map(|(a, e)| (a.into(), e.into()))
                .collect(),
        });
        self
    }

    /// Adds a `remove` action on the `ce`-th positive CE (1-based).
    #[must_use]
    pub fn then_remove(mut self, ce: usize) -> Self {
        self.rule.actions.push(Action::Remove { ce });
        self
    }

    /// Adds a `halt` action.
    #[must_use]
    pub fn then_halt(mut self) -> Self {
        self.rule.actions.push(Action::Halt);
        self
    }

    /// Validates and returns the rule.
    pub fn build(self) -> Result<Rule, RuleError> {
        self.rule.validate()?;
        Ok(self.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn builder_output_equals_parsed_dsl() {
        let built = rule("advance")
            .salience(5)
            .when(ce("job").bind("stage", "s").gt("cost", 0).bind("cost", "c"))
            .when_not(ce("hold").bind("job-stage", "s"))
            .then_modify(1, [("cost", var("c") - val(1))])
            .then_make("event", [("kind", val("advanced"))])
            .build()
            .unwrap();
        let parsed = parse_rule(
            "(p advance (salience 5)
               (job ^stage <s> ^cost { > 0 <c> })
               -(hold ^job-stage <s>)
               -->
               (modify 1 ^cost (- <c> 1))
               (make event ^kind advanced))",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_validation_fails_on_unbound_var() {
        let e = rule("bad")
            .when(ce("c"))
            .then_make("o", [("v", var("ghost"))])
            .build()
            .unwrap_err();
        assert!(matches!(e, RuleError::UnboundVariable(_, _)));
    }

    #[test]
    fn expression_operators_compose() {
        let e: Expr = ((var("a") + val(2)) * var("b") / val(4) % val(3)).into();
        assert_eq!(e.to_string(), "(% (/ (* (+ <a> 2) <b>) 4) 3)");
    }

    #[test]
    fn comparison_builders() {
        let c = ce("m")
            .ne("a", 1i64)
            .lt("b", 2i64)
            .le("c", 3i64)
            .ge("d", 4i64)
            .cmp_var("e", Predicate::Gt, "x")
            .into_ce();
        assert_eq!(c.tests.len(), 5);
        assert_eq!(c.tests[4].predicate, Predicate::Gt);
    }

    #[test]
    fn one_of_builds_disjunction() {
        let built = rule("classify")
            .when(ce("job").one_of("state", ["open", "pending"]))
            .then_remove(1)
            .build()
            .unwrap();
        let parsed = crate::parser::parse_rule(
            "(p classify (job ^state << open pending >>) --> (remove 1))",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn empty_disjunction_rejected_at_build() {
        let e = rule("bad")
            .when(ce("job").one_of("state", Vec::<Value>::new()))
            .build()
            .unwrap_err();
        assert!(matches!(e, RuleError::Invalid(_, _)));
    }

    #[test]
    fn halt_and_remove() {
        let r = rule("stop")
            .when(ce("go"))
            .then_remove(1)
            .then_halt()
            .build()
            .unwrap();
        assert_eq!(r.actions.len(), 2);
    }
}
