//! Static read/write-set analysis, the interference test, and the
//! commutativity judgment behind lock elision.
//!
//! The paper's static approach (§4.1) partitions productions into
//! *non-interfering* groups: "Two productions are non-interfering if there
//! is no read-write or write-write conflict between them." Run-time values
//! are unknown to a static analyser, so the conservative granularity here
//! is the (class, attribute) pair: a rule *reads* every class+attribute its
//! LHS tests and *writes* every class+attribute its RHS creates, modifies
//! or removes. A `remove`/`make` touches the whole tuple, so it writes the
//! wildcard attribute of its class.
//!
//! The paper also notes (§4.1) that class-granularity analysis detects
//! *false* interference when two rules touch disjoint subclasses; exposing
//! both granularities lets the benchmarks quantify exactly that effect.
//!
//! Interference is the right question for *partitioning* (who may ever
//! conflict), but coordination avoidance (Bailis et al.) asks a finer
//! one: do two firings **commute** — does either order leave the same
//! working memory? Interfering operations can still commute: two
//! counter increments write the same cell, yet any interleaving sums
//! the same. [`commutes`] answers that question over a write set
//! factored into *delta* writes (increment/decrement `modify`s),
//! *insert* writes (`make` of fresh tuples) and *absolute* writes
//! (`remove` and last-writer-wins `modify`s); the dynamic engine uses
//! it to skip the lock manager entirely for provably-commutative
//! firings.

use std::collections::BTreeSet;

use dps_wm::Atom;

use crate::{Action, ConditionElement, Expr, Op, Predicate, Rule, TestAtom, VarName};

/// Wildcard attribute marker: the whole tuple / any attribute of a class.
const STAR: &str = "*";

/// A set of (class, attribute) access descriptors. The attribute `*`
/// denotes "any attribute of the class" (whole-tuple access).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    entries: BTreeSet<(Atom, Atom)>,
}

impl AccessSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AccessSet::default()
    }

    /// Adds a class+attribute access.
    pub fn add(&mut self, class: Atom, attr: Atom) {
        self.entries.insert((class, attr));
    }

    /// Adds a whole-class (wildcard) access.
    pub fn add_class(&mut self, class: Atom) {
        self.entries.insert((class, Atom::from(STAR)));
    }

    /// Iterates entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &(Atom, Atom)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no accesses are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The classes mentioned.
    pub fn classes(&self) -> BTreeSet<&Atom> {
        self.entries.iter().map(|(c, _)| c).collect()
    }

    /// `true` when any entry mentions `class`.
    pub fn has_class(&self, class: &Atom) -> bool {
        self.entries.iter().any(|(c, _)| c == class)
    }

    /// `true` when the two sets overlap at class+attribute granularity
    /// (wildcards overlap everything in their class).
    ///
    /// A linear merge-intersection over the two sorted entry sets —
    /// O(n + m), not O(n·m). The commute matrix calls this O(rules²)
    /// times at plan time, so the walk is worth it (pinned by the
    /// `access_overlap` rows in `benches/semantics.rs`).
    pub fn overlaps(&self, other: &AccessSet) -> bool {
        let mut xs = self.entries.iter().peekable();
        let mut ys = other.entries.iter().peekable();
        while let (Some((xc, _)), Some((yc, _))) = (xs.peek().copied(), ys.peek().copied()) {
            match xc.cmp(yc) {
                std::cmp::Ordering::Less => {
                    // Skip self's run for a class the other never touches.
                    while xs.next_if(|(c, _)| c < yc).is_some() {}
                }
                std::cmp::Ordering::Greater => {
                    while ys.next_if(|(c, _)| c < xc).is_some() {}
                }
                std::cmp::Ordering::Equal => {
                    // Both sets touch this class: a wildcard on either
                    // side overlaps by definition; otherwise merge-
                    // intersect the two sorted attribute runs.
                    let class = xc;
                    let mut attrs: Vec<&Atom> = Vec::new();
                    while let Some((_, a)) = xs.next_if(|(c, _)| c == class) {
                        if a == STAR {
                            return true;
                        }
                        attrs.push(a);
                    }
                    let mut i = 0;
                    while let Some((_, a)) = ys.next_if(|(c, _)| c == class) {
                        if a == STAR {
                            return true;
                        }
                        while i < attrs.len() && attrs[i] < a {
                            i += 1;
                        }
                        if i < attrs.len() && attrs[i] == a {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// `true` when the two sets share any class (the coarser test).
    pub fn overlaps_class(&self, other: &AccessSet) -> bool {
        let mine = self.classes();
        other.classes().iter().any(|c| mine.contains(*c))
    }
}

/// The static read and write sets of one rule, with the writes factored
/// by how they compose: *delta* writes (arithmetic increment/decrement
/// `modify`s — read-modify-write against the matched tuple's own value,
/// so any interleaving sums the same), *insert* writes (`make` — a fresh
/// tuple no concurrent firing can be holding), and *absolute* writes
/// (`remove` and last-writer-wins `modify`s — order-sensitive). The
/// single fused write set the analysis exposed before the split is still
/// available as [`RuleAccess::writes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleAccess {
    /// Class+attribute pairs the LHS reads.
    pub reads: AccessSet,
    /// `modify`s of the form `^a (+ <v> k)` / `^a (- <v> k)` where `<v>`
    /// is equality-bound to the *same* attribute of the target CE —
    /// commutative counter bumps.
    pub delta_writes: AccessSet,
    /// `make` targets: `(class, *)` per created class.
    pub insert_writes: AccessSet,
    /// `remove`s and non-delta `modify`s — absolute, order-sensitive.
    pub absolute_writes: AccessSet,
    /// Classes appearing under a negated CE. Absence-of-tuple conditions
    /// are invisible to per-tuple validation, so anything touching these
    /// classes is barred from commuting (see [`commutes`]).
    pub negated_classes: BTreeSet<Atom>,
}

impl RuleAccess {
    /// Compat accessor: the union of every write category — exactly the
    /// single `writes` set this analysis exposed before the
    /// delta/insert/absolute split. [`interferes`] and the static
    /// engine's partitioner judge against this fused set.
    pub fn writes(&self) -> AccessSet {
        let mut out = AccessSet::new();
        for set in [&self.delta_writes, &self.insert_writes, &self.absolute_writes] {
            for (c, a) in set.iter() {
                out.add(c.clone(), a.clone());
            }
        }
        out
    }

    /// The reads that are *not* the RMW leg of this rule's own delta
    /// writes: a counter rule reads its cell only to bump it, and that
    /// read commutes with other bumps; every other read is a plain
    /// (order-sensitive) observation.
    fn plain_reads(&self) -> AccessSet {
        let mut out = AccessSet::new();
        for (c, a) in self.reads.iter() {
            if !self
                .delta_writes
                .iter()
                .any(|(dc, da)| dc == c && da == a)
            {
                out.add(c.clone(), a.clone());
            }
        }
        out
    }

    /// `true` when any access (read or any write category) touches
    /// `class`.
    fn touches_class(&self, class: &Atom) -> bool {
        self.reads.has_class(class)
            || self.delta_writes.has_class(class)
            || self.insert_writes.has_class(class)
            || self.absolute_writes.has_class(class)
    }
}

/// `true` when a `modify` expression is an arithmetic delta against the
/// matched tuple's own value of `attr`: `(+ <v> k)`, `(+ k <v>)` or
/// `(- <v> k)` with `k` constant and `<v>` equality-bound to `attr` on
/// the target CE. Only `+`/`-` qualify — they commute with each other;
/// `*`/`/`/`%` do not commute with addition, so they stay absolute.
fn is_delta_expr(target: &ConditionElement, attr: &Atom, expr: &Expr) -> bool {
    let bound_to_attr = |v: &VarName| {
        target.tests.iter().any(|t| {
            t.attr == *attr
                && t.predicate == Predicate::Eq
                && matches!(&t.operand, TestAtom::Var(tv) if tv == v)
        })
    };
    match expr {
        Expr::BinOp(Op::Add, l, r) => match (&**l, &**r) {
            (Expr::Var(v), Expr::Const(_)) | (Expr::Const(_), Expr::Var(v)) => bound_to_attr(v),
            _ => false,
        },
        Expr::BinOp(Op::Sub, l, r) => match (&**l, &**r) {
            (Expr::Var(v), Expr::Const(_)) => bound_to_attr(v),
            _ => false,
        },
        _ => false,
    }
}

/// Computes the read and write sets of a rule.
///
/// * Every attribute tested by a (positive or negated) CE is a read of
///   `(class, attr)`; a test-free CE reads `(class, *)`.
/// * `make` writes `(class, *)` into the insert set — a new tuple affects
///   any reader of the class (e.g. negated CEs).
/// * `modify` writes `(class, attr)` for each assigned attribute — into
///   the delta set when the expression is an increment/decrement of the
///   matched value ([`is_delta_expr`]), the absolute set otherwise — and
///   reads nothing extra (the tuple was already read by its CE).
/// * `remove` writes `(class, *)` of the removed CE's class (absolute).
pub fn rule_access(rule: &Rule) -> RuleAccess {
    let mut access = RuleAccess::default();
    let positive: Vec<&ConditionElement> = rule.positive_ces().collect();
    for cond in &rule.conditions {
        let ce = cond.ce();
        if ce.tests.is_empty() {
            access.reads.add_class(ce.class.clone());
        } else {
            for t in &ce.tests {
                access.reads.add(ce.class.clone(), t.attr.clone());
            }
        }
        // A negated CE is sensitive to *any* tuple of the class appearing,
        // so it also reads the wildcard (this is the paper's negative-
        // dependence case that motivates relation-level R_c escalation).
        if cond.is_negated() {
            access.reads.add_class(ce.class.clone());
            access.negated_classes.insert(ce.class.clone());
        }
    }
    for action in &rule.actions {
        match action {
            Action::Make { class, .. } => access.insert_writes.add_class(class.clone()),
            Action::Modify { ce, attrs } => {
                if let Some(target) = positive.get(*ce - 1) {
                    for (attr, expr) in attrs {
                        if is_delta_expr(target, attr, expr) {
                            access.delta_writes.add(target.class.clone(), attr.clone());
                        } else {
                            access.absolute_writes.add(target.class.clone(), attr.clone());
                        }
                    }
                }
            }
            Action::Remove { ce } => {
                if let Some(target) = positive.get(*ce - 1) {
                    access.absolute_writes.add_class(target.class.clone());
                }
            }
            Action::Halt => {}
        }
    }
    access
}

/// Granularity at which interference is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Class only — cheap and very conservative.
    Class,
    /// Class + attribute — finer, still static.
    ClassAttribute,
}

/// Static interference test between two rules: read-write or write-write
/// overlap of their access sets (the paper's §4.1 definition; also the
/// *conflicting operations* notion of \[PAPA86\] per footnote 4).
pub fn interferes(a: &RuleAccess, b: &RuleAccess, gran: Granularity) -> bool {
    let overlap = |x: &AccessSet, y: &AccessSet| match gran {
        Granularity::Class => x.overlaps_class(y),
        Granularity::ClassAttribute => x.overlaps(y),
    };
    let (aw, bw) = (a.writes(), b.writes());
    overlap(&aw, &bw) || overlap(&aw, &b.reads) || overlap(&a.reads, &bw)
}

/// Static commutativity judgment: `true` when firing `a` then `b` is
/// guaranteed to leave the same working memory as firing `b` then `a`,
/// for *any* pair of instantiations. This is the coordination-avoidance
/// question (Bailis et al.): commuting firings need no lock-manager
/// traffic at all. The judgment is deliberately conservative — `false`
/// means "could not prove it", not "does not commute".
///
/// The rules, in order:
/// 1. **Negated-CE poison.** If either rule has a negated CE on class C
///    and the other touches C in any way (read or any write), they do
///    not commute: an insert/remove on C flips the absence test, and
///    absence is invisible to the per-tuple timestamp validation the
///    elided-commit protocol relies on. (A rule with a negated CE never
///    commutes with itself either — it reads its own negated class.)
/// 2. **Absolute writes dominate.** An absolute (last-writer-wins)
///    write overlapping *any* access of the other rule — read, delta,
///    insert or absolute — kills commutativity in both directions.
/// 3. **Deltas vs plain reads.** A delta write is a counter bump; it
///    commutes with other bumps of the same cell but not with a rule
///    that *observes* the cell (reads it other than as its own RMW
///    leg): the observer would see different values in the two orders.
/// 4. Everything else commutes: delta-delta on the same cell, `make`
///    vs `make` (fresh tuples, distinct timestamps), `make` vs reads
///    of non-negated CEs (a positive CE match set only grows; already-
///    claimed instantiations are unaffected), and disjoint accesses.
pub fn commutes(a: &RuleAccess, b: &RuleAccess, gran: Granularity) -> bool {
    let overlap = |x: &AccessSet, y: &AccessSet| match gran {
        Granularity::Class => x.overlaps_class(y),
        Granularity::ClassAttribute => x.overlaps(y),
    };
    // Rule 1: negated-CE poison, both directions.
    for class in &a.negated_classes {
        if b.touches_class(class) {
            return false;
        }
    }
    for class in &b.negated_classes {
        if a.touches_class(class) {
            return false;
        }
    }
    // Rule 2: absolute writes vs any access of the other, both directions.
    for (abs, other) in [(&a.absolute_writes, b), (&b.absolute_writes, a)] {
        if overlap(abs, &other.reads)
            || overlap(abs, &other.delta_writes)
            || overlap(abs, &other.insert_writes)
            || overlap(abs, &other.absolute_writes)
        {
            return false;
        }
    }
    // Rule 3: delta writes vs the other's plain (non-RMW) reads.
    if overlap(&a.delta_writes, &b.plain_reads()) || overlap(&b.delta_writes, &a.plain_reads()) {
        return false;
    }
    true
}

/// Partitions rules into non-interfering groups greedily: each rule joins
/// the first group it does not interfere with; otherwise it founds a new
/// group. Returns per-rule group indices.
///
/// Greedy colouring is the practical choice the paper alludes to when it
/// notes optimal partitioning is infeasible ("very difficult, if not
/// impossible, to optimally partition the rules ... because of the state
/// explosion problem").
pub fn partition(rules: &[Rule], gran: Granularity) -> Vec<usize> {
    let accesses: Vec<RuleAccess> = rules.iter().map(rule_access).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; rules.len()];
    for (i, acc) in accesses.iter().enumerate() {
        let slot = groups.iter().position(|members| {
            members
                .iter()
                .all(|&j| !interferes(acc, &accesses[j], gran))
        });
        match slot {
            Some(g) => {
                groups[g].push(i);
                assignment[i] = g;
            }
            None => {
                groups.push(vec![i]);
                assignment[i] = groups.len() - 1;
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn acc(src: &str) -> RuleAccess {
        rule_access(&parse_rule(src).unwrap())
    }

    #[test]
    fn reads_cover_tested_attributes() {
        let a = acc("(p r (job ^stage <s> ^cost > 1) --> )");
        assert_eq!(a.reads.len(), 2);
        assert!(a.writes().is_empty());
    }

    #[test]
    fn test_free_ce_reads_wildcard() {
        let a = acc("(p r (job) --> )");
        assert_eq!(a.reads.iter().next().unwrap().1.as_str(), "*");
    }

    #[test]
    fn negated_ce_reads_class_wildcard() {
        let a = acc("(p r (go) -(hold ^k v) --> )");
        assert!(a
            .reads
            .iter()
            .any(|(c, at)| c == &Atom::from("hold") && at == &Atom::from("*")));
    }

    #[test]
    fn make_and_remove_write_wildcard_modify_writes_attr() {
        let a = acc("(p r (job ^cost <c>) --> (modify 1 ^cost (+ <c> 1)) (make log) (remove 1))");
        let w = a.writes();
        assert!(w
            .iter()
            .any(|(c, at)| c.as_str() == "job" && at.as_str() == "cost"));
        assert!(w
            .iter()
            .any(|(c, at)| c.as_str() == "log" && at.as_str() == "*"));
        assert!(w
            .iter()
            .any(|(c, at)| c.as_str() == "job" && at.as_str() == "*"));
        // And the split sees through the fused view: the increment is a
        // delta, make an insert, remove an absolute wildcard.
        assert!(a.delta_writes.iter().any(|(c, _)| c.as_str() == "job"));
        assert!(a.insert_writes.iter().any(|(c, _)| c.as_str() == "log"));
        assert!(a
            .absolute_writes
            .iter()
            .any(|(c, at)| c.as_str() == "job" && at.as_str() == "*"));
    }

    #[test]
    fn delta_detection_requires_self_binding() {
        // (+ <c> 1) where <c> is bound to ^cost of the target → delta.
        let bump = acc("(p r (job ^cost <c>) --> (modify 1 ^cost (+ <c> 1)))");
        assert!(!bump.delta_writes.is_empty());
        assert!(bump.absolute_writes.is_empty());
        // Constant store is absolute.
        let store = acc("(p r (job ^cost <c>) --> (modify 1 ^cost 0))");
        assert!(store.delta_writes.is_empty());
        assert!(!store.absolute_writes.is_empty());
        // Adding a value bound to a *different* attribute is absolute.
        let cross = acc("(p r (job ^cost <c> ^step <s>) --> (modify 1 ^cost (+ <s> 1)))");
        assert!(cross.delta_writes.is_empty());
        assert!(!cross.absolute_writes.is_empty());
        // Multiplication never qualifies.
        let mul = acc("(p r (job ^cost <c>) --> (modify 1 ^cost (* <c> 2)))");
        assert!(mul.delta_writes.is_empty());
        // Subtraction qualifies only with the variable on the left.
        let dec = acc("(p r (job ^cost <c>) --> (modify 1 ^cost (- <c> 1)))");
        assert!(!dec.delta_writes.is_empty());
        let rsub = acc("(p r (job ^cost <c>) --> (modify 1 ^cost (- 1 <c>)))");
        assert!(rsub.delta_writes.is_empty());
    }

    #[test]
    fn disjoint_rules_do_not_interfere() {
        let a = acc("(p a (x ^v <v>) --> (modify 1 ^v 0))");
        let b = acc("(p b (y ^v <v>) --> (modify 1 ^v 0))");
        assert!(!interferes(&a, &b, Granularity::ClassAttribute));
        assert!(!interferes(&a, &b, Granularity::Class));
    }

    #[test]
    fn read_write_overlap_interferes() {
        let reader = acc("(p a (x ^v <v>) --> )");
        let writer = acc("(p b (x ^v <v>) --> (modify 1 ^v 0))");
        assert!(interferes(&reader, &writer, Granularity::ClassAttribute));
        // Read-read does not interfere.
        assert!(!interferes(&reader, &reader, Granularity::ClassAttribute));
    }

    #[test]
    fn class_granularity_reports_false_interference() {
        // Same class, different attributes: attribute granularity clears
        // them; class granularity (conservatively) does not — the paper's
        // 'false interference' phenomenon.
        let a = acc("(p a (x ^left <v>) --> (modify 1 ^left 0))");
        let b = acc("(p b (x ^right <v>) --> (modify 1 ^right 0))");
        assert!(!interferes(&a, &b, Granularity::ClassAttribute));
        assert!(interferes(&a, &b, Granularity::Class));
    }

    #[test]
    fn make_interferes_with_negated_reader() {
        let maker = acc("(p a (go) --> (make hold ^k v))");
        let negreader = acc("(p b (go) -(hold ^k v) --> )");
        assert!(interferes(&maker, &negreader, Granularity::ClassAttribute));
    }

    #[test]
    fn partition_groups_noninterfering_rules() {
        let rules = vec![
            parse_rule("(p a (x ^v <v>) --> (modify 1 ^v 0))").unwrap(),
            parse_rule("(p b (y ^v <v>) --> (modify 1 ^v 0))").unwrap(),
            parse_rule("(p c (x ^v <v>) --> (remove 1))").unwrap(),
        ];
        let groups = partition(&rules, Granularity::ClassAttribute);
        assert_eq!(groups[0], groups[1], "a and b are disjoint → same group");
        assert_ne!(groups[0], groups[2], "a and c clash on x.v → split");
    }

    #[test]
    fn partition_of_empty_ruleset() {
        assert!(partition(&[], Granularity::Class).is_empty());
    }

    const G: Granularity = Granularity::ClassAttribute;

    #[test]
    fn counter_bump_commutes_with_itself_but_not_with_store() {
        let bump = acc("(p b (ctr ^n <n>) --> (modify 1 ^n (+ <n> 1)))");
        let store = acc("(p s (ctr ^n <n>) --> (modify 1 ^n 0))");
        // Two bumps of the same cell interfere (write-write) yet commute.
        assert!(interferes(&bump, &bump, G));
        assert!(commutes(&bump, &bump, G));
        // An absolute store commutes with nothing that touches the cell.
        assert!(!commutes(&bump, &store, G));
        assert!(!commutes(&store, &bump, G));
        assert!(!commutes(&store, &store, G));
    }

    #[test]
    fn delta_does_not_commute_with_plain_reader() {
        let bump = acc("(p b (ctr ^n <n>) --> (modify 1 ^n (+ <n> 1)))");
        let reader = acc("(p r (ctr ^n > 5) --> (make alarm))");
        assert!(!commutes(&bump, &reader, G));
    }

    #[test]
    fn makes_commute_with_makes_and_deltas() {
        let mk_a = acc("(p a (go) --> (make log ^src a))");
        let mk_b = acc("(p b (go) --> (make log ^src b))");
        let bump = acc("(p c (ctr ^n <n>) --> (modify 1 ^n (+ <n> 1)))");
        assert!(commutes(&mk_a, &mk_b, G));
        assert!(commutes(&mk_a, &mk_a, G));
        assert!(commutes(&mk_a, &bump, G));
    }

    #[test]
    fn negated_ce_poisons_commutativity() {
        let maker = acc("(p a (go) --> (make hold ^k v))");
        let negreader = acc("(p b (go) -(hold ^k v) --> (make log))");
        assert!(!commutes(&maker, &negreader, G));
        assert!(!commutes(&negreader, &maker, G));
        // A negated rule never commutes with itself: it reads the very
        // class whose absence it asserts.
        assert!(!commutes(&negreader, &negreader, G));
        // But a rule on untouched classes is unaffected by the negation.
        let other = acc("(p c (ctr ^n <n>) --> (modify 1 ^n (+ <n> 1)))");
        assert!(commutes(&negreader, &other, G));
    }

    #[test]
    fn remove_never_commutes_with_same_class_access() {
        let rm = acc("(p a (job ^done yes) --> (remove 1))");
        let bump = acc("(p b (job ^cost <c>) --> (modify 1 ^cost (+ <c> 1)))");
        assert!(!commutes(&rm, &bump, G));
        assert!(!commutes(&rm, &rm, G));
    }

    #[test]
    fn disjoint_rules_commute() {
        let a = acc("(p a (x ^v <v>) --> (modify 1 ^v 0))");
        let b = acc("(p b (y ^v <v>) --> (modify 1 ^v 0))");
        assert!(commutes(&a, &b, G));
        assert!(commutes(&a, &b, Granularity::Class));
    }

    #[test]
    fn overlaps_linear_walk_agrees_with_wildcards() {
        // Regression net for the merge walk: wildcard anywhere in a
        // shared class run must hit, regardless of sort position.
        let mut x = AccessSet::new();
        x.add(Atom::from("c"), Atom::from("a"));
        x.add(Atom::from("c"), Atom::from("z"));
        let mut y = AccessSet::new();
        y.add_class(Atom::from("c"));
        assert!(x.overlaps(&y));
        assert!(y.overlaps(&x));
        let mut z = AccessSet::new();
        z.add(Atom::from("c"), Atom::from("m"));
        assert!(!x.overlaps(&z));
        z.add(Atom::from("c"), Atom::from("z"));
        assert!(x.overlaps(&z));
        // Disjoint classes interleaved.
        let mut p = AccessSet::new();
        p.add(Atom::from("a"), Atom::from("v"));
        p.add(Atom::from("m"), Atom::from("v"));
        let mut q = AccessSet::new();
        q.add(Atom::from("b"), Atom::from("v"));
        q.add(Atom::from("n"), Atom::from("v"));
        assert!(!p.overlaps(&q));
        assert!(p.overlaps(&p));
    }
}
