//! Static read/write-set analysis and the interference test.
//!
//! The paper's static approach (§4.1) partitions productions into
//! *non-interfering* groups: "Two productions are non-interfering if there
//! is no read-write or write-write conflict between them." Run-time values
//! are unknown to a static analyser, so the conservative granularity here
//! is the (class, attribute) pair: a rule *reads* every class+attribute its
//! LHS tests and *writes* every class+attribute its RHS creates, modifies
//! or removes. A `remove`/`make` touches the whole tuple, so it writes the
//! wildcard attribute of its class.
//!
//! The paper also notes (§4.1) that class-granularity analysis detects
//! *false* interference when two rules touch disjoint subclasses; exposing
//! both granularities lets the benchmarks quantify exactly that effect.

use std::collections::BTreeSet;

use dps_wm::Atom;

use crate::{Action, Rule};

/// Wildcard attribute marker: the whole tuple / any attribute of a class.
const STAR: &str = "*";

/// A set of (class, attribute) access descriptors. The attribute `*`
/// denotes "any attribute of the class" (whole-tuple access).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    entries: BTreeSet<(Atom, Atom)>,
}

impl AccessSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AccessSet::default()
    }

    /// Adds a class+attribute access.
    pub fn add(&mut self, class: Atom, attr: Atom) {
        self.entries.insert((class, attr));
    }

    /// Adds a whole-class (wildcard) access.
    pub fn add_class(&mut self, class: Atom) {
        self.entries.insert((class, Atom::from(STAR)));
    }

    /// Iterates entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &(Atom, Atom)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no accesses are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The classes mentioned.
    pub fn classes(&self) -> BTreeSet<&Atom> {
        self.entries.iter().map(|(c, _)| c).collect()
    }

    /// `true` when the two sets overlap at class+attribute granularity
    /// (wildcards overlap everything in their class).
    pub fn overlaps(&self, other: &AccessSet) -> bool {
        for (c1, a1) in &self.entries {
            for (c2, a2) in &other.entries {
                if c1 == c2 && (a1 == a2 || a1 == STAR || a2 == STAR) {
                    return true;
                }
            }
        }
        false
    }

    /// `true` when the two sets share any class (the coarser test).
    pub fn overlaps_class(&self, other: &AccessSet) -> bool {
        let mine = self.classes();
        other.classes().iter().any(|c| mine.contains(*c))
    }
}

/// The static read and write sets of one rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleAccess {
    /// Class+attribute pairs the LHS reads.
    pub reads: AccessSet,
    /// Class+attribute pairs the RHS writes.
    pub writes: AccessSet,
}

/// Computes the read and write sets of a rule.
///
/// * Every attribute tested by a (positive or negated) CE is a read of
///   `(class, attr)`; a test-free CE reads `(class, *)`.
/// * `make` writes `(class, *)` — a new tuple affects any reader of the
///   class (e.g. negated CEs).
/// * `modify` writes `(class, attr)` for each assigned attribute and reads
///   nothing extra (the tuple was already read by its CE).
/// * `remove` writes `(class, *)` of the removed CE's class.
pub fn rule_access(rule: &Rule) -> RuleAccess {
    let mut access = RuleAccess::default();
    let positive: Vec<&crate::ConditionElement> = rule.positive_ces().collect();
    for cond in &rule.conditions {
        let ce = cond.ce();
        if ce.tests.is_empty() {
            access.reads.add_class(ce.class.clone());
        } else {
            for t in &ce.tests {
                access.reads.add(ce.class.clone(), t.attr.clone());
            }
        }
        // A negated CE is sensitive to *any* tuple of the class appearing,
        // so it also reads the wildcard (this is the paper's negative-
        // dependence case that motivates relation-level R_c escalation).
        if cond.is_negated() {
            access.reads.add_class(ce.class.clone());
        }
    }
    for action in &rule.actions {
        match action {
            Action::Make { class, .. } => access.writes.add_class(class.clone()),
            Action::Modify { ce, attrs } => {
                if let Some(target) = positive.get(*ce - 1) {
                    for (attr, _) in attrs {
                        access.writes.add(target.class.clone(), attr.clone());
                    }
                }
            }
            Action::Remove { ce } => {
                if let Some(target) = positive.get(*ce - 1) {
                    access.writes.add_class(target.class.clone());
                }
            }
            Action::Halt => {}
        }
    }
    access
}

/// Granularity at which interference is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Class only — cheap and very conservative.
    Class,
    /// Class + attribute — finer, still static.
    ClassAttribute,
}

/// Static interference test between two rules: read-write or write-write
/// overlap of their access sets (the paper's §4.1 definition; also the
/// *conflicting operations* notion of \[PAPA86\] per footnote 4).
pub fn interferes(a: &RuleAccess, b: &RuleAccess, gran: Granularity) -> bool {
    let overlap = |x: &AccessSet, y: &AccessSet| match gran {
        Granularity::Class => x.overlaps_class(y),
        Granularity::ClassAttribute => x.overlaps(y),
    };
    overlap(&a.writes, &b.writes) || overlap(&a.writes, &b.reads) || overlap(&a.reads, &b.writes)
}

/// Partitions rules into non-interfering groups greedily: each rule joins
/// the first group it does not interfere with; otherwise it founds a new
/// group. Returns per-rule group indices.
///
/// Greedy colouring is the practical choice the paper alludes to when it
/// notes optimal partitioning is infeasible ("very difficult, if not
/// impossible, to optimally partition the rules ... because of the state
/// explosion problem").
pub fn partition(rules: &[Rule], gran: Granularity) -> Vec<usize> {
    let accesses: Vec<RuleAccess> = rules.iter().map(rule_access).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; rules.len()];
    for (i, acc) in accesses.iter().enumerate() {
        let slot = groups.iter().position(|members| {
            members
                .iter()
                .all(|&j| !interferes(acc, &accesses[j], gran))
        });
        match slot {
            Some(g) => {
                groups[g].push(i);
                assignment[i] = g;
            }
            None => {
                groups.push(vec![i]);
                assignment[i] = groups.len() - 1;
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn acc(src: &str) -> RuleAccess {
        rule_access(&parse_rule(src).unwrap())
    }

    #[test]
    fn reads_cover_tested_attributes() {
        let a = acc("(p r (job ^stage <s> ^cost > 1) --> )");
        assert_eq!(a.reads.len(), 2);
        assert!(a.writes.is_empty());
    }

    #[test]
    fn test_free_ce_reads_wildcard() {
        let a = acc("(p r (job) --> )");
        assert_eq!(a.reads.iter().next().unwrap().1.as_str(), "*");
    }

    #[test]
    fn negated_ce_reads_class_wildcard() {
        let a = acc("(p r (go) -(hold ^k v) --> )");
        assert!(a
            .reads
            .iter()
            .any(|(c, at)| c == &Atom::from("hold") && at == &Atom::from("*")));
    }

    #[test]
    fn make_and_remove_write_wildcard_modify_writes_attr() {
        let a = acc("(p r (job ^cost <c>) --> (modify 1 ^cost (+ <c> 1)) (make log) (remove 1))");
        assert!(a
            .writes
            .iter()
            .any(|(c, at)| c.as_str() == "job" && at.as_str() == "cost"));
        assert!(a
            .writes
            .iter()
            .any(|(c, at)| c.as_str() == "log" && at.as_str() == "*"));
        assert!(a
            .writes
            .iter()
            .any(|(c, at)| c.as_str() == "job" && at.as_str() == "*"));
    }

    #[test]
    fn disjoint_rules_do_not_interfere() {
        let a = acc("(p a (x ^v <v>) --> (modify 1 ^v 0))");
        let b = acc("(p b (y ^v <v>) --> (modify 1 ^v 0))");
        assert!(!interferes(&a, &b, Granularity::ClassAttribute));
        assert!(!interferes(&a, &b, Granularity::Class));
    }

    #[test]
    fn read_write_overlap_interferes() {
        let reader = acc("(p a (x ^v <v>) --> )");
        let writer = acc("(p b (x ^v <v>) --> (modify 1 ^v 0))");
        assert!(interferes(&reader, &writer, Granularity::ClassAttribute));
        // Read-read does not interfere.
        assert!(!interferes(&reader, &reader, Granularity::ClassAttribute));
    }

    #[test]
    fn class_granularity_reports_false_interference() {
        // Same class, different attributes: attribute granularity clears
        // them; class granularity (conservatively) does not — the paper's
        // 'false interference' phenomenon.
        let a = acc("(p a (x ^left <v>) --> (modify 1 ^left 0))");
        let b = acc("(p b (x ^right <v>) --> (modify 1 ^right 0))");
        assert!(!interferes(&a, &b, Granularity::ClassAttribute));
        assert!(interferes(&a, &b, Granularity::Class));
    }

    #[test]
    fn make_interferes_with_negated_reader() {
        let maker = acc("(p a (go) --> (make hold ^k v))");
        let negreader = acc("(p b (go) -(hold ^k v) --> )");
        assert!(interferes(&maker, &negreader, Granularity::ClassAttribute));
    }

    #[test]
    fn partition_groups_noninterfering_rules() {
        let rules = vec![
            parse_rule("(p a (x ^v <v>) --> (modify 1 ^v 0))").unwrap(),
            parse_rule("(p b (y ^v <v>) --> (modify 1 ^v 0))").unwrap(),
            parse_rule("(p c (x ^v <v>) --> (remove 1))").unwrap(),
        ];
        let groups = partition(&rules, Granularity::ClassAttribute);
        assert_eq!(groups[0], groups[1], "a and b are disjoint → same group");
        assert_ne!(groups[0], groups[2], "a and c clash on x.v → split");
    }

    #[test]
    fn partition_of_empty_ruleset() {
        assert!(partition(&[], Granularity::Class).is_empty());
    }
}
