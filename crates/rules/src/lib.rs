//! # `dps-rules` — the rule language
//!
//! An OPS5-flavoured production-rule language over the [`dps_wm`] working
//! memory, as assumed by *Parallelism in Database Production Systems*
//! (ICDE 1990, §2): a production is `if <condition> then <action>`, the
//! LHS a conjunction of *condition elements* and the RHS a sequence of
//! `make` / `modify` / `remove` operations.
//!
//! The crate provides:
//!
//! * a typed AST ([`Rule`], [`Condition`], [`Action`], [`Expr`]);
//! * a fluent [`builder`] API and a text [`parser`] for the DSL below;
//! * evaluation: matching one condition element against a WME under a set
//!   of [`Bindings`], and instantiating the RHS into a
//!   [`dps_wm::DeltaSet`];
//! * static [`analysis`]: per-rule read/write sets at class and
//!   class+attribute granularity, and the pairwise *interference* test the
//!   paper's static approach (§4.1) and dynamic lock protocols rely on.
//!
//! ## The DSL
//!
//! ```text
//! (p advance-stage
//!    (job ^stage <s> ^cost { > 0 <c> })
//!    (stage ^name <s> ^next <n>)
//!    -(hold ^job-stage <s>)
//!    -->
//!    (modify 1 ^stage <n> ^cost (- <c> 1))
//!    (make event ^kind advanced ^to <n>))
//! ```
//!
//! `<x>` is a variable (first occurrence binds, later occurrences test),
//! `{ ... }` is a conjunction of tests on one attribute, a leading `-`
//! negates a condition element, and `-->` separates LHS from RHS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod ast;
mod bindings;
pub mod builder;
mod error;
mod eval;
pub mod parser;
mod ruleset;

pub use ast::{
    Action, AttrTest, Condition, ConditionElement, Expr, Op, Predicate, Rule, TestAtom, VarName,
};
pub use bindings::Bindings;
pub use error::RuleError;
pub use eval::{eval_expr, instantiate_actions, match_ce, matches_constants};
pub use ruleset::{RuleId, RuleSet};
