//! Evaluation: matching condition elements and instantiating RHS actions.

use dps_wm::{DeltaSet, Value, Wme};

use crate::{Action, Bindings, ConditionElement, Expr, Op, Predicate, Rule, RuleError, TestAtom};

/// Matches one condition element against one WME under existing bindings.
///
/// On success returns the *extended* bindings (new equality occurrences
/// bound); on failure returns `None` and leaves the input untouched.
///
/// ```
/// use dps_rules::{match_ce, Bindings, parser};
/// use dps_wm::{Wme, WmeData, WmeId};
///
/// let ce = parser::parse_condition_element("(job ^stage <s> ^cost { > 2 })").unwrap();
/// let wme = Wme {
///     id: WmeId(1),
///     data: WmeData::new("job").with("stage", "cut").with("cost", 5i64),
///     timestamp: 1,
/// };
/// let b = match_ce(&ce, &wme, &Bindings::new()).unwrap();
/// assert_eq!(b.get("s").unwrap().as_text(), Some("cut"));
/// ```
pub fn match_ce(ce: &ConditionElement, wme: &Wme, bindings: &Bindings) -> Option<Bindings> {
    if wme.class() != &ce.class {
        return None;
    }
    let mut out = bindings.clone();
    for test in &ce.tests {
        let actual = wme.get_or_nil(test.attr.as_str());
        match &test.operand {
            TestAtom::Const(expected) => {
                if !test.predicate.apply(&actual, expected) {
                    return None;
                }
            }
            TestAtom::OneOf(options) => {
                if !options.iter().any(|v| actual.loose_eq(v)) {
                    return None;
                }
            }
            TestAtom::Var(var) => match test.predicate {
                Predicate::Eq => {
                    if !out.unify(var, &actual) {
                        return None;
                    }
                }
                p => {
                    let bound = out.get(var.as_str())?;
                    if !p.apply(&actual, bound) {
                        return None;
                    }
                }
            },
        }
    }
    Some(out)
}

/// Evaluates only the *constant* tests of a condition element — the alpha
/// network predicate (class + constant tests, no bindings involved).
pub fn matches_constants(ce: &ConditionElement, wme: &Wme) -> bool {
    if wme.class() != &ce.class {
        return false;
    }
    ce.constant_tests().all(|t| {
        let actual = wme.get_or_nil(t.attr.as_str());
        match &t.operand {
            TestAtom::Const(expected) => t.predicate.apply(&actual, expected),
            TestAtom::OneOf(options) => options.iter().any(|v| actual.loose_eq(v)),
            TestAtom::Var(_) => unreachable!("constant_tests yields only constants"),
        }
    })
}

/// Evaluates an RHS expression under bindings.
pub fn eval_expr(expr: &Expr, bindings: &Bindings) -> Result<Value, RuleError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(v) => bindings
            .get(v.as_str())
            .cloned()
            .ok_or_else(|| RuleError::Eval(format!("variable <{v}> is unbound"))),
        Expr::BinOp(op, l, r) => {
            let (l, r) = (eval_expr(l, bindings)?, eval_expr(r, bindings)?);
            apply_op(*op, &l, &r)
        }
    }
}

fn apply_op(op: Op, l: &Value, r: &Value) -> Result<Value, RuleError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let out = match op {
                Op::Add => a.checked_add(*b),
                Op::Sub => a.checked_sub(*b),
                Op::Mul => a.checked_mul(*b),
                Op::Div => {
                    if *b == 0 {
                        return Err(RuleError::Eval("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                Op::Mod => {
                    if *b == 0 {
                        return Err(RuleError::Eval("remainder by zero".into()));
                    }
                    a.checked_rem(*b)
                }
            };
            out.map(Value::Int)
                .ok_or_else(|| RuleError::Eval(format!("integer overflow in {}", op.symbol())))
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(RuleError::Eval(format!(
                        "cannot apply {} to {l} and {r}",
                        op.symbol()
                    )))
                }
            };
            let out = match op {
                Op::Add => a + b,
                Op::Sub => a - b,
                Op::Mul => a * b,
                Op::Div => {
                    if b == 0.0 {
                        return Err(RuleError::Eval("division by zero".into()));
                    }
                    a / b
                }
                Op::Mod => {
                    if b == 0.0 {
                        return Err(RuleError::Eval("remainder by zero".into()));
                    }
                    a % b
                }
            };
            Ok(Value::Float(out))
        }
    }
}

/// Instantiates a rule's RHS into a buffered [`DeltaSet`], given the final
/// bindings and the WMEs matched by the positive condition elements (in
/// CE order).
///
/// Returns the delta set plus a `halt` flag (set by [`Action::Halt`]).
pub fn instantiate_actions(
    rule: &Rule,
    bindings: &Bindings,
    matched: &[Wme],
) -> Result<(DeltaSet, bool), RuleError> {
    let arity = rule.positive_arity();
    if matched.len() != arity {
        return Err(RuleError::Eval(format!(
            "rule {} expects {arity} matched element(s), got {}",
            rule.name,
            matched.len()
        )));
    }
    let mut delta = DeltaSet::new();
    let mut halt = false;
    for action in &rule.actions {
        match action {
            Action::Make { class, attrs } => {
                let mut data = dps_wm::WmeData::new(class.clone());
                for (attr, expr) in attrs {
                    data.set(attr.clone(), eval_expr(expr, bindings)?);
                }
                delta.create(data);
            }
            Action::Modify { ce, attrs } => {
                let target = &matched[*ce - 1];
                let mut changes = Vec::with_capacity(attrs.len());
                for (attr, expr) in attrs {
                    changes.push((attr.clone(), eval_expr(expr, bindings)?));
                }
                delta.modify(target.id, changes);
            }
            Action::Remove { ce } => {
                delta.remove(matched[*ce - 1].id);
            }
            Action::Halt => halt = true,
        }
    }
    Ok((delta, halt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrTest, Condition};
    use dps_wm::{Atom, WmeData, WmeId};

    fn wme(class: &str, pairs: &[(&str, Value)]) -> Wme {
        let mut data = WmeData::new(class);
        for (a, v) in pairs {
            data.set(*a, v.clone());
        }
        Wme {
            id: WmeId(1),
            data,
            timestamp: 1,
        }
    }

    fn ce(class: &str, tests: Vec<AttrTest>) -> ConditionElement {
        ConditionElement {
            class: Atom::from(class),
            tests,
        }
    }

    fn t(attr: &str, p: Predicate, op: TestAtom) -> AttrTest {
        AttrTest {
            attr: Atom::from(attr),
            predicate: p,
            operand: op,
        }
    }

    #[test]
    fn class_mismatch_fails() {
        let c = ce("a", vec![]);
        assert!(match_ce(&c, &wme("b", &[]), &Bindings::new()).is_none());
    }

    #[test]
    fn constant_tests_filter() {
        let c = ce(
            "a",
            vec![t("n", Predicate::Gt, TestAtom::Const(Value::Int(2)))],
        );
        assert!(match_ce(&c, &wme("a", &[("n", Value::Int(3))]), &Bindings::new()).is_some());
        assert!(match_ce(&c, &wme("a", &[("n", Value::Int(2))]), &Bindings::new()).is_none());
        // Missing attribute reads as Nil, which fails numeric tests.
        assert!(match_ce(&c, &wme("a", &[]), &Bindings::new()).is_none());
    }

    #[test]
    fn variable_binding_and_consistency() {
        let c = ce(
            "a",
            vec![
                t("x", Predicate::Eq, TestAtom::Var(Atom::from("v"))),
                t("y", Predicate::Eq, TestAtom::Var(Atom::from("v"))),
            ],
        );
        // x == y → binds then tests.
        assert!(match_ce(
            &c,
            &wme("a", &[("x", Value::Int(1)), ("y", Value::Int(1))]),
            &Bindings::new()
        )
        .is_some());
        assert!(match_ce(
            &c,
            &wme("a", &[("x", Value::Int(1)), ("y", Value::Int(2))]),
            &Bindings::new()
        )
        .is_none());
    }

    #[test]
    fn prebound_variable_is_tested_not_rebound() {
        let c = ce(
            "a",
            vec![t("x", Predicate::Eq, TestAtom::Var(Atom::from("v")))],
        );
        let mut b = Bindings::new();
        b.bind(Atom::from("v"), Value::Int(9));
        assert!(match_ce(&c, &wme("a", &[("x", Value::Int(9))]), &b).is_some());
        assert!(match_ce(&c, &wme("a", &[("x", Value::Int(8))]), &b).is_none());
    }

    #[test]
    fn ordering_test_against_bound_variable() {
        let c = ce(
            "a",
            vec![t("x", Predicate::Lt, TestAtom::Var(Atom::from("v")))],
        );
        let mut b = Bindings::new();
        b.bind(Atom::from("v"), Value::Int(10));
        assert!(match_ce(&c, &wme("a", &[("x", Value::Int(5))]), &b).is_some());
        assert!(match_ce(&c, &wme("a", &[("x", Value::Int(15))]), &b).is_none());
        // Unbound comparison variable → no match rather than panic.
        assert!(match_ce(&c, &wme("a", &[("x", Value::Int(5))]), &Bindings::new()).is_none());
    }

    #[test]
    fn matches_constants_ignores_variable_tests() {
        let c = ce(
            "a",
            vec![
                t("k", Predicate::Eq, TestAtom::Const(Value::from("on"))),
                t("x", Predicate::Eq, TestAtom::Var(Atom::from("v"))),
            ],
        );
        assert!(matches_constants(
            &c,
            &wme("a", &[("k", Value::from("on"))])
        ));
        assert!(!matches_constants(
            &c,
            &wme("a", &[("k", Value::from("off"))])
        ));
        assert!(!matches_constants(
            &c,
            &wme("b", &[("k", Value::from("on"))])
        ));
    }

    #[test]
    fn disjunction_matches_any_listed_value() {
        let c = ce(
            "a",
            vec![t(
                "state",
                Predicate::Eq,
                TestAtom::OneOf(vec![Value::from("open"), Value::Int(3)]),
            )],
        );
        assert!(match_ce(
            &c,
            &wme("a", &[("state", Value::from("open"))]),
            &Bindings::new()
        )
        .is_some());
        assert!(match_ce(
            &c,
            &wme("a", &[("state", Value::Float(3.0))]),
            &Bindings::new()
        )
        .is_some());
        assert!(match_ce(
            &c,
            &wme("a", &[("state", Value::from("closed"))]),
            &Bindings::new()
        )
        .is_none());
        assert!(matches_constants(
            &c,
            &wme("a", &[("state", Value::Int(3))])
        ));
        assert!(!matches_constants(&c, &wme("a", &[])));
    }

    #[test]
    fn expr_arithmetic() {
        let mut b = Bindings::new();
        b.bind(Atom::from("x"), Value::Int(7));
        let e = Expr::bin(
            Op::Mul,
            Expr::Var(Atom::from("x")),
            Expr::Const(Value::Int(3)),
        );
        assert_eq!(eval_expr(&e, &b), Ok(Value::Int(21)));
        let f = Expr::bin(
            Op::Add,
            Expr::Const(Value::Float(0.5)),
            Expr::Const(Value::Int(1)),
        );
        assert_eq!(eval_expr(&f, &b), Ok(Value::Float(1.5)));
        let m = Expr::bin(
            Op::Mod,
            Expr::Const(Value::Int(7)),
            Expr::Const(Value::Int(4)),
        );
        assert_eq!(eval_expr(&m, &b), Ok(Value::Int(3)));
    }

    #[test]
    fn expr_errors() {
        let b = Bindings::new();
        let div0 = Expr::bin(
            Op::Div,
            Expr::Const(Value::Int(1)),
            Expr::Const(Value::Int(0)),
        );
        assert!(eval_expr(&div0, &b).is_err());
        let fdiv0 = Expr::bin(
            Op::Div,
            Expr::Const(Value::Float(1.0)),
            Expr::Const(Value::Float(0.0)),
        );
        assert!(eval_expr(&fdiv0, &b).is_err());
        let unbound = Expr::Var(Atom::from("nope"));
        assert!(eval_expr(&unbound, &b).is_err());
        let sym = Expr::bin(
            Op::Add,
            Expr::Const(Value::from("a")),
            Expr::Const(Value::Int(1)),
        );
        assert!(eval_expr(&sym, &b).is_err());
        let ovf = Expr::bin(
            Op::Add,
            Expr::Const(Value::Int(i64::MAX)),
            Expr::Const(Value::Int(1)),
        );
        assert!(matches!(eval_expr(&ovf, &b), Err(RuleError::Eval(m)) if m.contains("overflow")));
    }

    #[test]
    fn instantiate_produces_delta_and_halt() {
        let rule = Rule {
            name: Atom::from("r"),
            salience: 0,
            conditions: vec![Condition::Pos(ce(
                "task",
                vec![t("n", Predicate::Eq, TestAtom::Var(Atom::from("x")))],
            ))],
            actions: vec![
                Action::Modify {
                    ce: 1,
                    attrs: vec![(
                        Atom::from("n"),
                        Expr::bin(
                            Op::Add,
                            Expr::Var(Atom::from("x")),
                            Expr::Const(Value::Int(1)),
                        ),
                    )],
                },
                Action::Make {
                    class: Atom::from("log"),
                    attrs: vec![],
                },
                Action::Halt,
            ],
        };
        let w = wme("task", &[("n", Value::Int(4))]);
        let b = match_ce(rule.conditions[0].ce(), &w, &Bindings::new()).unwrap();
        let (delta, halt) = instantiate_actions(&rule, &b, &[w]).unwrap();
        assert!(halt);
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn instantiate_arity_mismatch_errors() {
        let rule = Rule {
            name: Atom::from("r"),
            salience: 0,
            conditions: vec![Condition::Pos(ce("task", vec![]))],
            actions: vec![],
        };
        assert!(instantiate_actions(&rule, &Bindings::new(), &[]).is_err());
    }
}
