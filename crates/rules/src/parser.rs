//! Parser for the OPS5-flavoured rule DSL.
//!
//! Grammar (s-expression based; `;` starts a line comment):
//!
//! ```text
//! ruleset  := rule*
//! rule     := '(' 'p' name salience? condition+ '-->' action* ')'
//! salience := '(' 'salience' int ')'
//! condition:= '-'? '(' class item* ')'
//! item     := '^' attr valspec
//! valspec  := operand | pred operand | '{' test* '}'
//! test     := operand | pred operand
//! operand  := constant | '<' var '>'
//! action   := '(' 'make' class (attr-expr)* ')'
//!           | '(' 'modify' int (attr-expr)* ')'
//!           | '(' 'remove' int ')'
//!           | '(' 'halt' ')'
//! attr-expr:= '^' attr expr
//! expr     := constant | '<' var '>' | '(' op expr expr ')'
//! ```

use dps_wm::{Atom, Value};

use crate::{
    Action, AttrTest, Condition, ConditionElement, Expr, Op, Predicate, Rule, RuleError, TestAtom,
};

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    LParen,
    RParen,
    LBrace,
    RBrace,
    /// `<<` opening a value disjunction.
    LDisj,
    /// `>>` closing a value disjunction.
    RDisj,
    Arrow,
    Minus,
    Caret(String),
    Var(String),
    Sym(String),
    Str(String),
    Int(i64),
    Float(f64),
    Pred(Predicate),
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

fn is_sym_char(c: u8) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            b'-' | b'_' | b'.' | b'?' | b'*' | b'+' | b'/' | b'%' | b'!'
        )
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> RuleError {
        RuleError::Parse {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b';' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn read_sym(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if is_sym_char(c) {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number_from(&mut self, text: String) -> Result<Tok, RuleError> {
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| self.err(format!("bad number {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| self.err(format!("bad number {text:?}")))
        }
    }

    fn next_tok(&mut self) -> Result<Option<Spanned>, RuleError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'^' => {
                self.bump();
                let name = self.read_sym();
                if name.is_empty() {
                    return Err(self.err("expected attribute name after '^'"));
                }
                Tok::Caret(name)
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(c2 @ (b'"' | b'\\')) => s.push(c2 as char),
                            _ => return Err(self.err("bad escape in string")),
                        },
                        Some(c2) => s.push(c2 as char),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Tok::Str(s)
            }
            b'<' => {
                // '<<' disjunction, '<x>' variable, or '<', '<=', '<>'.
                match self.peek_at(1) {
                    Some(b'<') => {
                        self.bump();
                        self.bump();
                        Tok::LDisj
                    }
                    Some(b'=') => {
                        self.bump();
                        self.bump();
                        Tok::Pred(Predicate::Le)
                    }
                    Some(b'>') => {
                        self.bump();
                        self.bump();
                        Tok::Pred(Predicate::Ne)
                    }
                    Some(c2) if is_sym_char(c2) => {
                        // Look ahead for the closing '>'.
                        let mut off = 1;
                        while self.peek_at(off).is_some_and(is_sym_char) {
                            off += 1;
                        }
                        if self.peek_at(off) == Some(b'>') {
                            self.bump(); // '<'
                            let name = self.read_sym();
                            self.bump(); // '>'
                            Tok::Var(name)
                        } else {
                            self.bump();
                            Tok::Pred(Predicate::Lt)
                        }
                    }
                    _ => {
                        self.bump();
                        Tok::Pred(Predicate::Lt)
                    }
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Pred(Predicate::Ge)
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::RDisj
                } else {
                    Tok::Pred(Predicate::Gt)
                }
            }
            b'=' => {
                self.bump();
                Tok::Pred(Predicate::Eq)
            }
            b'-' => {
                // '-->' arrow | negative number | bare minus.
                if self.peek_at(1) == Some(b'-') && self.peek_at(2) == Some(b'>') {
                    self.bump();
                    self.bump();
                    self.bump();
                    Tok::Arrow
                } else if self.peek_at(1).is_some_and(|c2| c2.is_ascii_digit()) {
                    self.bump();
                    let text = format!("-{}", self.read_sym());
                    self.number_from(text)?
                } else {
                    self.bump();
                    Tok::Minus
                }
            }
            c if c.is_ascii_digit() => {
                let text = self.read_sym();
                self.number_from(text)?
            }
            c if is_sym_char(c) => {
                let s = self.read_sym();
                Tok::Sym(s)
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some(Spanned { tok, line, col }))
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, RuleError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tok()? {
            out.push(t);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, RuleError> {
        Ok(Parser {
            toks: Lexer::new(src).tokenize()?,
            pos: 0,
        })
    }

    fn err_at(&self, message: impl Into<String>) -> RuleError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |s| (s.line, s.col));
        RuleError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), RuleError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.bump();
                Ok(())
            }
            other => Err(self.err_at(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_sym(&mut self, what: &str) -> Result<String, RuleError> {
        match self.bump() {
            Some(Tok::Sym(s)) => Ok(s),
            other => Err(self.err_at(format!("expected {what}, found {other:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Parses a constant or variable operand.
    fn operand(&mut self) -> Result<TestAtom, RuleError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(TestAtom::Const(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(TestAtom::Const(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(TestAtom::Const(Value::Str(Atom::from(s)))),
            Some(Tok::Sym(s)) if s == "nil" => Ok(TestAtom::Const(Value::Nil)),
            Some(Tok::Sym(s)) if s == "true" => Ok(TestAtom::Const(Value::Bool(true))),
            Some(Tok::Sym(s)) if s == "false" => Ok(TestAtom::Const(Value::Bool(false))),
            Some(Tok::Sym(s)) => Ok(TestAtom::Const(Value::Sym(Atom::from(s)))),
            Some(Tok::Var(v)) => Ok(TestAtom::Var(Atom::from(v))),
            other => Err(self.err_at(format!("expected constant or variable, found {other:?}"))),
        }
    }

    /// Parses `<< v1 v2 ... >>` (the `<<` already peeked, not consumed).
    fn disjunction(&mut self) -> Result<TestAtom, RuleError> {
        self.bump(); // '<<'
        let mut values = Vec::new();
        while self.peek() != Some(&Tok::RDisj) {
            if self.at_end() {
                return Err(self.err_at("unterminated '<<' disjunction"));
            }
            match self.operand()? {
                TestAtom::Const(v) => values.push(v),
                other => {
                    return Err(
                        self.err_at(format!("disjunction allows only constants, found {other}"))
                    )
                }
            }
        }
        self.bump(); // '>>'
        if values.is_empty() {
            return Err(self.err_at("empty '<<' disjunction"));
        }
        Ok(TestAtom::OneOf(values))
    }

    /// Parses the value spec after `^attr`.
    fn valspec(&mut self, attr: &Atom, tests: &mut Vec<AttrTest>) -> Result<(), RuleError> {
        match self.peek() {
            Some(Tok::LBrace) => {
                self.bump();
                while self.peek() != Some(&Tok::RBrace) {
                    if self.at_end() {
                        return Err(self.err_at("unterminated '{' test group"));
                    }
                    if self.peek() == Some(&Tok::LDisj) {
                        let operand = self.disjunction()?;
                        tests.push(AttrTest {
                            attr: attr.clone(),
                            predicate: Predicate::Eq,
                            operand,
                        });
                        continue;
                    }
                    let predicate = match self.peek() {
                        Some(Tok::Pred(p)) => {
                            let p = *p;
                            self.bump();
                            p
                        }
                        _ => Predicate::Eq,
                    };
                    let operand = self.operand()?;
                    tests.push(AttrTest {
                        attr: attr.clone(),
                        predicate,
                        operand,
                    });
                }
                self.bump(); // '}'
                Ok(())
            }
            Some(Tok::LDisj) => {
                let operand = self.disjunction()?;
                tests.push(AttrTest {
                    attr: attr.clone(),
                    predicate: Predicate::Eq,
                    operand,
                });
                Ok(())
            }
            Some(Tok::Pred(p)) => {
                let predicate = *p;
                self.bump();
                let operand = self.operand()?;
                tests.push(AttrTest {
                    attr: attr.clone(),
                    predicate,
                    operand,
                });
                Ok(())
            }
            _ => {
                let operand = self.operand()?;
                tests.push(AttrTest {
                    attr: attr.clone(),
                    predicate: Predicate::Eq,
                    operand,
                });
                Ok(())
            }
        }
    }

    /// Parses `'(' class item* ')'` (the parenthesis already *not* consumed).
    fn condition_element(&mut self) -> Result<ConditionElement, RuleError> {
        self.expect(&Tok::LParen, "'('")?;
        let class = Atom::from(self.expect_sym("class name")?);
        let mut tests = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RParen) => {
                    self.bump();
                    break;
                }
                Some(Tok::Caret(_)) => {
                    let Some(Tok::Caret(attr)) = self.bump() else {
                        unreachable!()
                    };
                    let attr = Atom::from(attr);
                    self.valspec(&attr, &mut tests)?;
                }
                other => {
                    return Err(self.err_at(format!("expected '^attr' or ')', found {other:?}")))
                }
            }
        }
        Ok(ConditionElement { class, tests })
    }

    fn condition(&mut self) -> Result<Condition, RuleError> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            Ok(Condition::Neg(self.condition_element()?))
        } else {
            Ok(Condition::Pos(self.condition_element()?))
        }
    }

    fn expr(&mut self) -> Result<Expr, RuleError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let op = match self.bump() {
                    Some(Tok::Sym(s)) => match s.as_str() {
                        "+" => Op::Add,
                        "*" => Op::Mul,
                        "/" => Op::Div,
                        "%" => Op::Mod,
                        other => return Err(self.err_at(format!("unknown operator {other:?}"))),
                    },
                    Some(Tok::Minus) => Op::Sub,
                    other => return Err(self.err_at(format!("expected operator, found {other:?}"))),
                };
                let l = self.expr()?;
                let r = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Expr::bin(op, l, r))
            }
            _ => match self.operand()? {
                TestAtom::Const(v) => Ok(Expr::Const(v)),
                TestAtom::Var(v) => Ok(Expr::Var(v)),
                TestAtom::OneOf(_) => {
                    Err(self.err_at("disjunctions are not allowed in expressions"))
                }
            },
        }
    }

    fn attr_exprs(&mut self) -> Result<Vec<(Atom, Expr)>, RuleError> {
        let mut out = Vec::new();
        while let Some(Tok::Caret(_)) = self.peek() {
            let Some(Tok::Caret(attr)) = self.bump() else {
                unreachable!()
            };
            out.push((Atom::from(attr), self.expr()?));
        }
        Ok(out)
    }

    fn action(&mut self) -> Result<Action, RuleError> {
        self.expect(&Tok::LParen, "'('")?;
        let head = self.expect_sym("action name")?;
        let action = match head.as_str() {
            "make" => {
                let class = Atom::from(self.expect_sym("class name")?);
                Action::Make {
                    class,
                    attrs: self.attr_exprs()?,
                }
            }
            "modify" => {
                let ce = match self.bump() {
                    Some(Tok::Int(i)) if i > 0 => i as usize,
                    other => return Err(self.err_at(format!("expected CE index, found {other:?}"))),
                };
                Action::Modify {
                    ce,
                    attrs: self.attr_exprs()?,
                }
            }
            "remove" => {
                let ce = match self.bump() {
                    Some(Tok::Int(i)) if i > 0 => i as usize,
                    other => return Err(self.err_at(format!("expected CE index, found {other:?}"))),
                };
                Action::Remove { ce }
            }
            "halt" => Action::Halt,
            other => return Err(self.err_at(format!("unknown action {other:?}"))),
        };
        self.expect(&Tok::RParen, "')'")?;
        Ok(action)
    }

    fn rule(&mut self) -> Result<Rule, RuleError> {
        self.expect(&Tok::LParen, "'('")?;
        let p = self.expect_sym("'p'")?;
        if p != "p" {
            return Err(self.err_at(format!("expected 'p', found {p:?}")));
        }
        let name = Atom::from(self.expect_sym("rule name")?);
        // Optional (salience N).
        let mut salience = 0;
        if self.peek() == Some(&Tok::LParen) {
            if let Some(Spanned {
                tok: Tok::Sym(s), ..
            }) = self.toks.get(self.pos + 1)
            {
                if s == "salience" {
                    self.bump();
                    self.bump();
                    salience = match self.bump() {
                        Some(Tok::Int(i)) => {
                            i32::try_from(i).map_err(|_| self.err_at("salience out of range"))?
                        }
                        other => {
                            return Err(self.err_at(format!("expected integer, found {other:?}")))
                        }
                    };
                    self.expect(&Tok::RParen, "')'")?;
                }
            }
        }
        let mut conditions = Vec::new();
        while self.peek() != Some(&Tok::Arrow) {
            if self.at_end() {
                return Err(self.err_at("missing '-->'"));
            }
            conditions.push(self.condition()?);
        }
        self.bump(); // '-->'
        let mut actions = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            if self.at_end() {
                return Err(self.err_at("missing ')' at end of rule"));
            }
            actions.push(self.action()?);
        }
        self.bump(); // ')'
        let rule = Rule {
            name,
            salience,
            conditions,
            actions,
        };
        rule.validate()?;
        Ok(rule)
    }
}

/// Parses a sequence of rules.
///
/// ```
/// let rules = dps_rules::parser::parse_rules(
///     "(p bump (counter ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
/// ).unwrap();
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].name.as_str(), "bump");
/// ```
pub fn parse_rules(src: &str) -> Result<Vec<Rule>, RuleError> {
    let mut p = Parser::new(src)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    Ok(rules)
}

/// Parses exactly one rule.
pub fn parse_rule(src: &str) -> Result<Rule, RuleError> {
    let mut p = Parser::new(src)?;
    let rule = p.rule()?;
    if !p.at_end() {
        return Err(p.err_at("trailing input after rule"));
    }
    Ok(rule)
}

/// Parses a single condition element, e.g. `(job ^stage <s>)`.
pub fn parse_condition_element(src: &str) -> Result<ConditionElement, RuleError> {
    let mut p = Parser::new(src)?;
    let ce = p.condition_element()?;
    if !p.at_end() {
        return Err(p.err_at("trailing input after condition element"));
    }
    Ok(ce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_rule() {
        let r = parse_rule("(p r (c) --> )").unwrap();
        assert_eq!(r.name.as_str(), "r");
        assert_eq!(r.conditions.len(), 1);
        assert!(r.actions.is_empty());
    }

    #[test]
    fn parses_full_rule() {
        let src = r#"
            ; advance a job to its next stage
            (p advance-stage (salience 10)
               (job ^stage <s> ^cost { > 0 <c> })
               (stage ^name <s> ^next <n>)
               -(hold ^job-stage <s>)
               -->
               (modify 1 ^stage <n> ^cost (- <c> 1))
               (make event ^kind advanced ^to <n>)
               (remove 2)
               (halt))
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.salience, 10);
        assert_eq!(r.conditions.len(), 3);
        assert!(r.conditions[2].is_negated());
        assert_eq!(r.actions.len(), 4);
        let ce0 = r.conditions[0].ce();
        assert_eq!(ce0.tests.len(), 3); // <s>, > 0, <c>
        assert_eq!(ce0.tests[1].predicate, Predicate::Gt);
    }

    #[test]
    fn parses_predicate_without_braces() {
        let ce = parse_condition_element("(m ^v > 4 ^w <> stop)").unwrap();
        assert_eq!(ce.tests.len(), 2);
        assert_eq!(ce.tests[0].predicate, Predicate::Gt);
        assert_eq!(ce.tests[1].predicate, Predicate::Ne);
        assert_eq!(ce.tests[1].operand, TestAtom::Const(Value::from("stop")));
    }

    #[test]
    fn parses_literals() {
        let ce =
            parse_condition_element(r#"(m ^i -3 ^f 2.5 ^s "hi there" ^b true ^n nil ^sym go-now)"#)
                .unwrap();
        let vals: Vec<&TestAtom> = ce.tests.iter().map(|t| &t.operand).collect();
        assert_eq!(vals[0], &TestAtom::Const(Value::Int(-3)));
        assert_eq!(vals[1], &TestAtom::Const(Value::Float(2.5)));
        assert_eq!(
            vals[2],
            &TestAtom::Const(Value::Str(Atom::from("hi there")))
        );
        assert_eq!(vals[3], &TestAtom::Const(Value::Bool(true)));
        assert_eq!(vals[4], &TestAtom::Const(Value::Nil));
        assert_eq!(vals[5], &TestAtom::Const(Value::Sym(Atom::from("go-now"))));
    }

    #[test]
    fn variable_vs_comparator_disambiguation() {
        // `<x>` is a variable; `< 5` is a comparator; `<> x` is not-equal.
        let ce = parse_condition_element("(m ^a <x> ^b < 5 ^c <> <x>)").unwrap();
        assert_eq!(ce.tests[0].operand, TestAtom::Var(Atom::from("x")));
        assert_eq!(ce.tests[1].predicate, Predicate::Lt);
        assert_eq!(ce.tests[2].predicate, Predicate::Ne);
        assert_eq!(ce.tests[2].operand, TestAtom::Var(Atom::from("x")));
    }

    #[test]
    fn nested_expressions() {
        let r = parse_rule("(p r (c ^n <n>) --> (make o ^v (* (+ <n> 1) 2)))").unwrap();
        let Action::Make { attrs, .. } = &r.actions[0] else {
            panic!()
        };
        assert_eq!(attrs[0].1.to_string(), "(* (+ <n> 1) 2)");
    }

    #[test]
    fn subtraction_vs_negation_vs_negative_literal() {
        let r = parse_rule("(p r (c ^n <n>) -(d ^n -2) --> (make o ^v (- <n> -1)))").unwrap();
        assert!(r.conditions[1].is_negated());
        assert_eq!(
            r.conditions[1].ce().tests[0].operand,
            TestAtom::Const(Value::Int(-2))
        );
        let Action::Make { attrs, .. } = &r.actions[0] else {
            panic!()
        };
        assert_eq!(attrs[0].1.to_string(), "(- <n> -1)");
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = parse_rule("(p r (c) --> (boom))").unwrap_err();
        assert!(matches!(e, RuleError::Parse { .. }));
        let e = parse_rule("(q r (c) --> )").unwrap_err();
        assert!(e.to_string().contains("expected 'p'"));
        let e = parse_rule("(p r (c)").unwrap_err();
        assert!(e.to_string().contains("-->"));
        let e = parse_rule("(p r (c) --> (remove 0))").unwrap_err();
        assert!(e.to_string().contains("CE index"));
    }

    #[test]
    fn validation_runs_at_parse_time() {
        // <x> never bound → parse_rule should surface the validation error.
        let e = parse_rule("(p r (c) --> (make o ^v <x>))").unwrap_err();
        assert!(matches!(e, RuleError::UnboundVariable(_, _)));
        let e = parse_rule("(p r (c) --> (remove 2))").unwrap_err();
        assert!(matches!(e, RuleError::BadCeIndex(_, 2, 1)));
    }

    #[test]
    fn multiple_rules_parse() {
        let rules = parse_rules(
            "(p a (c) --> (halt)) ; first
             (p b (d ^k v) --> (remove 1))",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].name.as_str(), "b");
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = r#"
            (p round-trip (salience -2)
               (job ^stage <s> ^cost { > 0 <c> } ^prio >= 3)
               -(hold ^job-stage <s>)
               -->
               (modify 1 ^cost (- <c> 1))
               (make event ^kind advanced)
               (halt))
        "#;
        let r1 = parse_rule(src).unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let r = parse_rule("(p r ; comment ( with parens\n (c) --> )").unwrap();
        assert_eq!(r.name.as_str(), "r");
    }

    #[test]
    fn parses_disjunctions() {
        let ce = parse_condition_element("(job ^state << open pending 3 >>)").unwrap();
        assert_eq!(ce.tests.len(), 1);
        let TestAtom::OneOf(vs) = &ce.tests[0].operand else {
            panic!()
        };
        assert_eq!(vs.len(), 3);
        assert_eq!(ce.tests[0].predicate, Predicate::Eq);
        // Inside a brace group, alongside other tests.
        let ce = parse_condition_element("(job ^n { > 0 << 2 4 >> })").unwrap();
        assert_eq!(ce.tests.len(), 2);
        assert!(matches!(ce.tests[1].operand, TestAtom::OneOf(_)));
    }

    #[test]
    fn disjunction_roundtrips_through_display() {
        let r1 = parse_rule("(p r (job ^state << open closed >>) --> (remove 1))").unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn disjunction_errors() {
        assert!(parse_condition_element("(job ^s << >>)").is_err(), "empty");
        assert!(
            parse_condition_element("(job ^s << open").is_err(),
            "unterminated"
        );
        assert!(
            parse_condition_element("(job ^s << <x> >>)").is_err(),
            "variables not allowed inside"
        );
        assert!(parse_rule("(p r (c ^n <n>) --> (make o ^v << 1 2 >>))").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(parse_condition_element(r#"(c ^s "oops)"#).is_err());
    }
}
