//! Rule-language errors.

use std::fmt;

use dps_wm::Atom;

/// Errors raised by rule validation, parsing and RHS instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// Structural problem with a rule.
    Invalid(Atom, String),
    /// A variable was used before any equality occurrence bound it.
    UnboundVariable(Atom, Atom),
    /// A `modify`/`remove` referenced a positive-CE index out of range
    /// (fields: rule, index, arity).
    BadCeIndex(Atom, usize, usize),
    /// Parse error with a line/column position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable message.
        message: String,
    },
    /// Runtime evaluation error (division by zero, type mismatch in
    /// arithmetic, variable missing from bindings).
    Eval(String),
    /// Two rules with the same name were added to a rule set.
    DuplicateRule(Atom),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Invalid(rule, msg) => write!(f, "invalid rule {rule}: {msg}"),
            RuleError::UnboundVariable(rule, var) => {
                write!(f, "rule {rule}: variable <{var}> used before binding")
            }
            RuleError::BadCeIndex(rule, idx, arity) => write!(
                f,
                "rule {rule}: action references condition element {idx}, \
                 but the rule has {arity} positive condition element(s)"
            ),
            RuleError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            RuleError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            RuleError::DuplicateRule(name) => write!(f, "duplicate rule name {name}"),
        }
    }
}

impl std::error::Error for RuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RuleError::BadCeIndex(Atom::from("r1"), 3, 2);
        assert!(e.to_string().contains("r1"));
        assert!(e.to_string().contains('3'));
        let p = RuleError::Parse {
            line: 2,
            col: 5,
            message: "unexpected ')'".into(),
        };
        assert_eq!(p.to_string(), "parse error at 2:5: unexpected ')'");
        assert!(RuleError::Eval("division by zero".into())
            .to_string()
            .contains("zero"));
    }
}
