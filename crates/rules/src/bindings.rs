//! Variable bindings accumulated while matching a rule's LHS.

use std::collections::BTreeMap;
use std::fmt;

use dps_wm::Value;

use crate::VarName;

/// A set of variable → value bindings.
///
/// Bindings grow monotonically along a join chain; the matcher clones them
/// when branching. A `BTreeMap` keeps iteration and `Display` output
/// deterministic, which matters for reproducible conflict-set ordering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    map: BTreeMap<VarName, Value>,
}

impl Bindings {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Looks up a variable.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// `true` if the variable is bound.
    pub fn is_bound(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Binds a variable. Returns the previous value when rebinding (the
    /// matcher treats a rebind attempt with a different value as a failed
    /// consistency test and never calls this in that case).
    pub fn bind(&mut self, var: VarName, value: Value) -> Option<Value> {
        self.map.insert(var, value)
    }

    /// Attempts to unify `var` with `value`: binds when unbound, succeeds
    /// when already bound to a loosely equal value, fails otherwise.
    pub fn unify(&mut self, var: &VarName, value: &Value) -> bool {
        match self.map.get(var) {
            None => {
                self.map.insert(var.clone(), value.clone());
                true
            }
            Some(existing) => existing.loose_eq(value),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates bindings in variable-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&VarName, &Value)> {
        self.map.iter()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "<{k}>={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(VarName, Value)> for Bindings {
    fn from_iter<T: IntoIterator<Item = (VarName, Value)>>(iter: T) -> Self {
        Bindings {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::Atom;

    #[test]
    fn unify_binds_then_tests() {
        let mut b = Bindings::new();
        let x = Atom::from("x");
        assert!(b.unify(&x, &Value::Int(3)));
        assert!(b.unify(&x, &Value::Int(3)));
        assert!(b.unify(&x, &Value::Float(3.0)), "loose equality applies");
        assert!(!b.unify(&x, &Value::Int(4)));
        assert_eq!(b.get("x"), Some(&Value::Int(3)));
    }

    #[test]
    fn clone_branches_independently() {
        let mut a = Bindings::new();
        a.unify(&Atom::from("x"), &Value::Int(1));
        let mut b = a.clone();
        b.unify(&Atom::from("y"), &Value::Int(2));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn display_is_sorted() {
        let b: Bindings = [
            (Atom::from("z"), Value::Int(1)),
            (Atom::from("a"), Value::Int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.to_string(), "{<a>=2, <z>=1}");
    }

    #[test]
    fn emptiness() {
        let b = Bindings::new();
        assert!(b.is_empty());
        assert!(!b.is_bound("x"));
    }
}
