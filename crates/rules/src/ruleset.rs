//! Named collections of rules.

use std::collections::HashMap;

use dps_wm::Atom;

use crate::{Rule, RuleError};

/// Dense index of a rule within a [`RuleSet`] — the stable identifier the
/// matcher, engines and execution-semantics machinery use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An ordered, name-indexed collection of validated rules.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    by_name: HashMap<Atom, RuleId>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Parses DSL source and adds every rule in it.
    pub fn parse(src: &str) -> Result<Self, RuleError> {
        let mut set = RuleSet::new();
        for rule in crate::parser::parse_rules(src)? {
            set.add(rule)?;
        }
        Ok(set)
    }

    /// Adds a validated rule; rejects duplicates by name.
    pub fn add(&mut self, rule: Rule) -> Result<RuleId, RuleError> {
        rule.validate()?;
        if self.by_name.contains_key(&rule.name) {
            return Err(RuleError::DuplicateRule(rule.name.clone()));
        }
        let id = RuleId(self.rules.len() as u32);
        self.by_name.insert(rule.name.clone(), id);
        self.rules.push(rule);
        Ok(id)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Looks up a rule by id.
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id.0 as usize)
    }

    /// Looks up a rule id by name.
    pub fn id_of(&self, name: &str) -> Option<RuleId> {
        self.by_name.get(name).copied()
    }

    /// Iterates `(id, rule)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// The rules as a slice (id order).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ce, rule};

    #[test]
    fn add_and_lookup() {
        let mut set = RuleSet::new();
        let a = set.add(rule("a").when(ce("x")).build().unwrap()).unwrap();
        let b = set.add(rule("b").when(ce("y")).build().unwrap()).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.id_of("a"), Some(a));
        assert_eq!(set.id_of("b"), Some(b));
        assert_eq!(set.get(a).unwrap().name.as_str(), "a");
        assert_eq!(set.id_of("zzz"), None);
        assert!(set.get(RuleId(9)).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut set = RuleSet::new();
        set.add(rule("a").when(ce("x")).build().unwrap()).unwrap();
        let e = set
            .add(rule("a").when(ce("y")).build().unwrap())
            .unwrap_err();
        assert!(matches!(e, RuleError::DuplicateRule(_)));
    }

    #[test]
    fn parse_builds_set() {
        let set = RuleSet::parse("(p a (x) --> ) (p b (y) --> (halt))").unwrap();
        assert_eq!(set.len(), 2);
        let ids: Vec<RuleId> = set.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, [RuleId(0), RuleId(1)]);
    }

    #[test]
    fn invalid_rule_rejected_on_add() {
        let mut set = RuleSet::new();
        let bad = crate::Rule {
            name: dps_wm::Atom::from("bad"),
            salience: 0,
            conditions: vec![],
            actions: vec![],
        };
        assert!(set.add(bad).is_err());
        assert!(set.is_empty());
    }
}
