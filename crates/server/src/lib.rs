//! # `dps-server` — the multi-session front door
//!
//! The paper's engine (§4.2–4.3) runs *one* rule program over *one*
//! working memory. A production deployment has N clients, each
//! submitting WM deltas, condition queries and rule-program
//! invocations concurrently — and a front door that must stay up when
//! the offered load exceeds what the engine can absorb. This crate is
//! that front door:
//!
//! * [`wire`] — a length-prefixed binary protocol
//!   (`[u32 len][tag][payload]`): [`wire::Request`] /
//!   [`wire::Response`] with a self-describing codec and no external
//!   dependencies.
//! * [`transport`] — the [`transport::Conn`] byte-stream abstraction
//!   and [`transport::loopback_pair`], an in-process full-duplex pipe
//!   with read timeouts and abrupt-disconnect semantics, so the whole
//!   stack is testable in the hermetic (network-less) build.
//! * [`admission`] — token-bucket admission, inflight-transaction
//!   backpressure and doom-storm load shedding built on the retry
//!   [`dps_core::Governor`]: overload is answered with a typed
//!   [`wire::Response::Overloaded`] (plus a retry hint) instead of
//!   queueing without bound — §5's wasted-work argument applied at the
//!   session boundary.
//! * [`session`] — the per-connection state machine
//!   (`Idle → InTxn → Draining → Closed`) with per-session
//!   transaction timeouts.
//! * [`server`] — [`server::Server`]: one shared
//!   [`dps_core::ParallelEngine`] in service mode, one handler thread
//!   per connection, disconnect safety (a session dying mid-transaction
//!   releases its locks, drops its snapshot pin and rolls back its
//!   buffered delta) and graceful drain on shutdown.
//! * [`shutdown`] — process signal (SIGINT/SIGTERM) → cooperative
//!   stop flag, shared by every gate binary.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod server;
pub mod session;
pub mod shutdown;
pub mod transport;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, AdmissionController, AdmissionStats};
pub use server::{Server, ServerConfig, ServerStats, SessionCounters};
pub use session::{SessionState, SessionTimeouts};
pub use transport::{loopback_pair, Conn, LoopbackConn};
pub use wire::{read_frame, write_frame, ErrCode, Request, Response};
