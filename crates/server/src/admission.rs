//! Admission control and overload shedding.
//!
//! §5's analysis says wasted work — transactions that execute and then
//! abort — is what kills a parallel production system under
//! contention. The same argument applies one layer up: admitting a
//! transaction the engine cannot absorb *guarantees* wasted work
//! (queueing, timeouts, doomed claims). The front door therefore sheds
//! early, with a typed [`crate::wire::Response::Overloaded`] and a
//! retry hint, rather than queueing without bound. Three independent
//! gates, checked in order of cost:
//!
//! 1. **Inflight cap** — at most [`AdmissionConfig::max_inflight`]
//!    open external transactions engine-wide. The bound keeps the
//!    lock-manager and snapshot-pin footprint proportional to what the
//!    workers can drain.
//! 2. **Token bucket** — a sustained-rate limit
//!    ([`AdmissionConfig::tokens_per_sec`], burst
//!    [`AdmissionConfig::bucket_cap`]) decoupling the admitted rate
//!    from the offered rate; the retry hint is the time until the next
//!    token, so well-behaved clients reconverge on the sustainable
//!    rate instead of thundering back.
//! 3. **Doom storm** — the retry [`Governor`] (PR 4) watches the
//!    *outcome* stream of admitted transactions. When its storm window
//!    trips into serial fallback, the front door stops admitting for
//!    [`AdmissionConfig::storm_hold_ms`]: shedding at the door is
//!    strictly cheaper than aborting inside.
//!
//! All three gates are disabled together by
//! [`AdmissionConfig::enabled`]` = false` — the shed-off baseline the
//! XS.8 experiment measures against.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

use dps_core::{Governor, GovernorConfig};

/// Admission policy knobs (see module docs).
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Master switch: `false` admits everything (the shed-off
    /// baseline).
    pub enabled: bool,
    /// Sustained admitted-transaction rate (token refill rate).
    pub tokens_per_sec: f64,
    /// Burst capacity of the token bucket.
    pub bucket_cap: f64,
    /// Maximum concurrently open external transactions.
    pub max_inflight: usize,
    /// How long a doom storm holds the door shut, milliseconds.
    pub storm_hold_ms: u64,
    /// The governor watching the admitted-transaction outcome stream.
    pub governor: GovernorConfig,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            tokens_per_sec: 2_000.0,
            bucket_cap: 200.0,
            max_inflight: 256,
            storm_hold_ms: 50,
            governor: GovernorConfig::default(),
        }
    }
}

/// One admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; the caller must pair with
    /// [`AdmissionController::txn_end`].
    Granted,
    /// Shed. `retry_after_ms` is the client hint.
    Shed {
        /// Client retry hint, milliseconds.
        retry_after_ms: u64,
    },
}

/// Cumulative admission counters (all monotone; suitable as telemetry
/// probes and for the report's cause-sum reconciliation).
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmissionStats {
    /// Transactions admitted.
    pub admitted: u64,
    /// Shed by the token bucket.
    pub shed_rate: u64,
    /// Shed by the inflight cap.
    pub shed_inflight: u64,
    /// Shed by doom-storm hold.
    pub shed_storm: u64,
}

impl AdmissionStats {
    /// Total shed, all causes.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate + self.shed_inflight + self.shed_storm
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The front door's admission gate (see module docs). Shared across
/// session handler threads behind an `Arc`.
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: Mutex<Bucket>,
    inflight: AtomicUsize,
    governor: Governor,
    storm_until: Mutex<Option<Instant>>,
    admitted: AtomicU64,
    shed_rate: AtomicU64,
    shed_inflight: AtomicU64,
    shed_storm: AtomicU64,
}

impl AdmissionController {
    /// A controller with a full bucket.
    pub fn new(config: AdmissionConfig) -> Self {
        let governor = Governor::new(config.governor.clone());
        AdmissionController {
            bucket: Mutex::new(Bucket { tokens: config.bucket_cap, last: Instant::now() }),
            inflight: AtomicUsize::new(0),
            governor,
            storm_until: Mutex::new(None),
            admitted: AtomicU64::new(0),
            shed_rate: AtomicU64::new(0),
            shed_inflight: AtomicU64::new(0),
            shed_storm: AtomicU64::new(0),
            config,
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides admission for one transaction. On [`Admission::Granted`]
    /// the inflight slot is held until [`AdmissionController::txn_end`].
    pub fn admit(&self) -> Admission {
        if !self.config.enabled {
            self.admitted.fetch_add(1, Relaxed);
            self.inflight.fetch_add(1, Relaxed);
            return Admission::Granted;
        }
        // Gate 3 first — it is the cheapest read and the strongest
        // signal (the engine is already wasting work).
        if let Some(until) = *self.storm_until.lock().unwrap() {
            if Instant::now() < until {
                self.shed_storm.fetch_add(1, Relaxed);
                return Admission::Shed { retry_after_ms: self.config.storm_hold_ms.max(1) };
            }
        }
        // Gate 1: inflight cap (reserve optimistically, roll back on
        // overshoot so concurrent admits cannot leak past the cap).
        let prev = self.inflight.fetch_add(1, Relaxed);
        if prev >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Relaxed);
            self.shed_inflight.fetch_add(1, Relaxed);
            // Hint: one full transaction's worth of drain time at the
            // sustained rate.
            let ms = (1_000.0 / self.config.tokens_per_sec.max(1.0)).ceil() as u64;
            return Admission::Shed { retry_after_ms: ms.max(1) };
        }
        // Gate 2: token bucket.
        let mut b = self.bucket.lock().unwrap();
        let now = Instant::now();
        let dt = now.duration_since(b.last).as_secs_f64();
        b.last = now;
        b.tokens = (b.tokens + dt * self.config.tokens_per_sec).min(self.config.bucket_cap);
        if b.tokens < 1.0 {
            let need = 1.0 - b.tokens;
            let ms = (need / self.config.tokens_per_sec.max(f64::MIN_POSITIVE) * 1_000.0).ceil();
            drop(b);
            self.inflight.fetch_sub(1, Relaxed);
            self.shed_rate.fetch_add(1, Relaxed);
            return Admission::Shed { retry_after_ms: (ms as u64).max(1) };
        }
        b.tokens -= 1.0;
        drop(b);
        self.admitted.fetch_add(1, Relaxed);
        Admission::Granted
    }

    /// Releases the inflight slot of an admitted transaction and feeds
    /// its outcome to the storm detector. `aborted_on_contention` means
    /// doomed / deadlock / timeout / injected — *not* a client abort or
    /// a stale id.
    pub fn txn_end(&self, aborted_on_contention: bool, touched: &[u64]) {
        self.inflight.fetch_sub(1, Relaxed);
        if !self.config.enabled {
            return;
        }
        if aborted_on_contention {
            self.governor.on_contention_abort("@session", touched, 0, None);
            if self.governor.serialized_now() > 0 || self.governor.escalated_now() > 0 {
                let hold = std::time::Duration::from_millis(self.config.storm_hold_ms);
                *self.storm_until.lock().unwrap() = Some(Instant::now() + hold);
            }
        } else {
            self.governor.on_commit("@session", 0, None);
        }
    }

    /// Currently open external transactions (telemetry gauge).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Relaxed) as u64
    }

    /// Cumulative counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Relaxed),
            shed_rate: self.shed_rate.load(Relaxed),
            shed_inflight: self.shed_inflight.load(Relaxed),
            shed_storm: self.shed_storm.load(Relaxed),
        }
    }

    /// The governor watching the admitted stream (for reports).
    pub fn governor(&self) -> &Governor {
        &self.governor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController::new(cfg)
    }

    #[test]
    fn disabled_admits_everything() {
        let c = quick(AdmissionConfig { enabled: false, ..AdmissionConfig::default() });
        for _ in 0..10_000 {
            assert_eq!(c.admit(), Admission::Granted);
            c.txn_end(false, &[]);
        }
        assert_eq!(c.stats().shed_total(), 0);
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn token_bucket_sheds_past_burst() {
        let c = quick(AdmissionConfig {
            tokens_per_sec: 1.0, // ~no refill within the test
            bucket_cap: 10.0,
            max_inflight: 1_000,
            ..AdmissionConfig::default()
        });
        let mut granted = 0;
        let mut shed = 0;
        for _ in 0..50 {
            match c.admit() {
                Admission::Granted => {
                    granted += 1;
                    c.txn_end(false, &[]);
                }
                Admission::Shed { retry_after_ms } => {
                    assert!(retry_after_ms >= 1);
                    shed += 1;
                }
            }
        }
        assert_eq!(granted, 10, "exactly the burst capacity is admitted");
        assert_eq!(shed, 40);
        assert_eq!(c.stats().shed_rate, 40);
    }

    #[test]
    fn inflight_cap_sheds_and_releases() {
        let c = quick(AdmissionConfig {
            tokens_per_sec: 1e9,
            bucket_cap: 1e9,
            max_inflight: 3,
            ..AdmissionConfig::default()
        });
        assert_eq!(c.admit(), Admission::Granted);
        assert_eq!(c.admit(), Admission::Granted);
        assert_eq!(c.admit(), Admission::Granted);
        assert!(matches!(c.admit(), Admission::Shed { .. }), "cap reached");
        c.txn_end(false, &[]);
        assert_eq!(c.admit(), Admission::Granted, "slot freed");
        assert_eq!(c.stats().shed_inflight, 1);
    }

    #[test]
    fn doom_storm_holds_the_door() {
        let gov = GovernorConfig {
            storm_window: 8,
            storm_threshold_pm: 500,
            starvation_bound: 3,
            backoff_base_us: 0,
            ..GovernorConfig::default()
        };
        let c = quick(AdmissionConfig {
            tokens_per_sec: 1e9,
            bucket_cap: 1e9,
            max_inflight: 1_000,
            storm_hold_ms: 10_000,
            governor: gov,
            ..AdmissionConfig::default()
        });
        // Feed a pure-abort stream; once the starvation bound trips,
        // the door shuts for the full hold.
        let mut storm_shed = None;
        for _ in 0..16 {
            match c.admit() {
                Admission::Granted => c.txn_end(true, &[7]),
                Admission::Shed { retry_after_ms } => {
                    storm_shed = Some(retry_after_ms);
                    break;
                }
            }
        }
        assert_eq!(storm_shed, Some(10_000), "storm never shut the door");
        assert!(c.stats().shed_storm >= 1);
    }
}
