//! Length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: `[u32 len (LE)][u8 tag][payload]`,
//! where `len` counts the tag plus payload bytes. Strings are
//! `[u16 len][UTF-8]`; integers are little-endian fixed width; WM
//! values carry a one-byte type tag (see [`Request`] / [`Response`]).
//! The format is self-contained (no external serialisation crate) and
//! versioned by construction: unknown tags decode to a typed error,
//! never a panic, and a frame is bounded by [`MAX_FRAME`] so a
//! corrupt or hostile peer cannot make the server allocate without
//! limit.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use dps_wm::{Value, WmeData};

/// Upper bound on a frame's `len` field (1 MiB). A peer announcing
/// more is a protocol error, not an allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Typed error codes carried by [`Response::Err`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// Request not legal in the session's current state.
    BadState = 1,
    /// The transaction aborted (contention, stale id, validation).
    Aborted = 2,
    /// Malformed frame or unknown tag.
    Protocol = 3,
    /// The per-session transaction timeout fired.
    Timeout = 4,
    /// The server is draining; no new transactions.
    Draining = 5,
}

impl ErrCode {
    fn from_u8(b: u8) -> Option<ErrCode> {
        match b {
            1 => Some(ErrCode::BadState),
            2 => Some(ErrCode::Aborted),
            3 => Some(ErrCode::Protocol),
            4 => Some(ErrCode::Timeout),
            5 => Some(ErrCode::Draining),
            _ => None,
        }
    }
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session. Must be the first frame on a connection; the
    /// server answers [`Response::Granted`] or
    /// [`Response::Overloaded`].
    Hello,
    /// Open an external transaction ([`Response::Ok`] with `seq = 0`).
    Begin,
    /// Buffer an insert of a tuple into the open transaction.
    Insert {
        /// Relation (class) name.
        class: String,
        /// Attribute/value pairs.
        attrs: Vec<(String, Value)>,
    },
    /// Buffer a removal of the tuple with this WME id.
    Remove {
        /// The tuple's WME id.
        id: u64,
    },
    /// Condition query: every live tuple of `class`, answered with
    /// [`Response::Rows`]. Legal inside a transaction only (the read
    /// is part of the transaction's footprint).
    Query {
        /// Relation (class) name.
        class: String,
    },
    /// Invoke the rule program: wait until the engine has quiesced on
    /// everything committed so far, answered with [`Response::Done`].
    Invoke,
    /// Commit the open transaction ([`Response::Ok`] carries the
    /// commit sequence number).
    Commit,
    /// Abort the open transaction.
    Abort,
    /// Close the session gracefully (answered with [`Response::Bye`]).
    Bye,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session admitted.
    Granted {
        /// Server-assigned session id.
        session: u64,
    },
    /// Acknowledgement; for `Commit` the commit sequence number,
    /// otherwise 0.
    Ok {
        /// Commit sequence (0 when not a commit ack).
        seq: u64,
    },
    /// Query result rows.
    Rows {
        /// `(wme id, tuple)` pairs.
        rows: Vec<(u64, WmeData)>,
    },
    /// Rule program quiesced.
    Done {
        /// Total rule commits so far (cumulative, engine-wide).
        commits: u64,
    },
    /// Load shed: the request was not admitted. Retry after the hint.
    Overloaded {
        /// Client retry hint, milliseconds.
        retry_after_ms: u64,
    },
    /// Typed failure.
    Err {
        /// What failed.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Session closed.
    Bye,
}

// Frame tags. Requests are 0x01..=0x09, responses 0x81..=0x87.
const T_HELLO: u8 = 0x01;
const T_BEGIN: u8 = 0x02;
const T_INSERT: u8 = 0x03;
const T_REMOVE: u8 = 0x04;
const T_QUERY: u8 = 0x05;
const T_INVOKE: u8 = 0x06;
const T_COMMIT: u8 = 0x07;
const T_ABORT: u8 = 0x08;
const T_BYE: u8 = 0x09;
const T_GRANTED: u8 = 0x81;
const T_OK: u8 = 0x82;
const T_ROWS: u8 = 0x83;
const T_DONE: u8 = 0x84;
const T_OVERLOADED: u8 = 0x85;
const T_ERR: u8 = 0x86;
const T_RBYE: u8 = 0x87;

// Value type tags.
const V_NIL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_SYM: u8 = 4;
const V_STR: u8 = 5;

fn perr(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("wire: {msg}"))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    debug_assert!(b.len() <= u16::MAX as usize, "wire string too long");
    buf.extend_from_slice(&(b.len() as u16).to_le_bytes());
    buf.extend_from_slice(b);
}

fn get_str(buf: &[u8], at: &mut usize) -> io::Result<String> {
    let n = u16::from_le_bytes(
        buf.get(*at..*at + 2)
            .ok_or_else(|| perr("truncated string length"))?
            .try_into()
            .unwrap(),
    ) as usize;
    *at += 2;
    let bytes = buf
        .get(*at..*at + n)
        .ok_or_else(|| perr("truncated string body"))?;
    *at += n;
    String::from_utf8(bytes.to_vec()).map_err(|_| perr("invalid UTF-8"))
}

fn get_u64(buf: &[u8], at: &mut usize) -> io::Result<u64> {
    let v = u64::from_le_bytes(
        buf.get(*at..*at + 8)
            .ok_or_else(|| perr("truncated u64"))?
            .try_into()
            .unwrap(),
    );
    *at += 8;
    Ok(v)
}

fn get_u8(buf: &[u8], at: &mut usize) -> io::Result<u8> {
    let v = *buf.get(*at).ok_or_else(|| perr("truncated byte"))?;
    *at += 1;
    Ok(v)
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Nil => buf.push(V_NIL),
        Value::Bool(b) => {
            buf.push(V_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(V_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(V_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Sym(a) => {
            buf.push(V_SYM);
            put_str(buf, a.as_ref());
        }
        Value::Str(a) => {
            buf.push(V_STR);
            put_str(buf, a.as_ref());
        }
    }
}

fn get_value(buf: &[u8], at: &mut usize) -> io::Result<Value> {
    Ok(match get_u8(buf, at)? {
        V_NIL => Value::Nil,
        V_BOOL => Value::Bool(get_u8(buf, at)? != 0),
        V_INT => Value::Int(get_u64(buf, at)? as i64),
        V_FLOAT => Value::Float(f64::from_bits(get_u64(buf, at)?)),
        V_SYM => Value::Sym(get_str(buf, at)?.into()),
        V_STR => Value::Str(get_str(buf, at)?.into()),
        t => return Err(perr(&format!("unknown value tag {t:#04x}"))),
    })
}

fn put_wme(buf: &mut Vec<u8>, data: &WmeData) {
    put_str(buf, data.class.as_ref());
    buf.extend_from_slice(&(data.attrs.len() as u16).to_le_bytes());
    for (k, v) in &data.attrs {
        put_str(buf, k.as_ref());
        put_value(buf, v);
    }
}

fn get_wme(buf: &[u8], at: &mut usize) -> io::Result<WmeData> {
    let class = get_str(buf, at)?;
    let n = u16::from_le_bytes(
        buf.get(*at..*at + 2)
            .ok_or_else(|| perr("truncated attr count"))?
            .try_into()
            .unwrap(),
    ) as usize;
    *at += 2;
    let mut attrs = BTreeMap::new();
    for _ in 0..n {
        let k = get_str(buf, at)?;
        let v = get_value(buf, at)?;
        attrs.insert(k.into(), v);
    }
    Ok(WmeData { class: class.into(), attrs })
}

impl Request {
    /// Encodes into a tag-plus-payload body (without the length
    /// prefix; [`write_frame`] adds it).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello => buf.push(T_HELLO),
            Request::Begin => buf.push(T_BEGIN),
            Request::Insert { class, attrs } => {
                buf.push(T_INSERT);
                put_str(&mut buf, class);
                buf.extend_from_slice(&(attrs.len() as u16).to_le_bytes());
                for (k, v) in attrs {
                    put_str(&mut buf, k);
                    put_value(&mut buf, v);
                }
            }
            Request::Remove { id } => {
                buf.push(T_REMOVE);
                buf.extend_from_slice(&id.to_le_bytes());
            }
            Request::Query { class } => {
                buf.push(T_QUERY);
                put_str(&mut buf, class);
            }
            Request::Invoke => buf.push(T_INVOKE),
            Request::Commit => buf.push(T_COMMIT),
            Request::Abort => buf.push(T_ABORT),
            Request::Bye => buf.push(T_BYE),
        }
        buf
    }

    /// Decodes a tag-plus-payload body produced by [`Request::encode`].
    pub fn decode(buf: &[u8]) -> io::Result<Request> {
        let mut at = 0usize;
        let req = match get_u8(buf, &mut at)? {
            T_HELLO => Request::Hello,
            T_BEGIN => Request::Begin,
            T_INSERT => {
                let class = get_str(buf, &mut at)?;
                let n = u16::from_le_bytes(
                    buf.get(at..at + 2)
                        .ok_or_else(|| perr("truncated attr count"))?
                        .try_into()
                        .unwrap(),
                ) as usize;
                at += 2;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = get_str(buf, &mut at)?;
                    let v = get_value(buf, &mut at)?;
                    attrs.push((k, v));
                }
                Request::Insert { class, attrs }
            }
            T_REMOVE => Request::Remove { id: get_u64(buf, &mut at)? },
            T_QUERY => Request::Query { class: get_str(buf, &mut at)? },
            T_INVOKE => Request::Invoke,
            T_COMMIT => Request::Commit,
            T_ABORT => Request::Abort,
            T_BYE => Request::Bye,
            t => return Err(perr(&format!("unknown request tag {t:#04x}"))),
        };
        if at != buf.len() {
            return Err(perr("trailing bytes after request"));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes into a tag-plus-payload body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Granted { session } => {
                buf.push(T_GRANTED);
                buf.extend_from_slice(&session.to_le_bytes());
            }
            Response::Ok { seq } => {
                buf.push(T_OK);
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            Response::Rows { rows } => {
                buf.push(T_ROWS);
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for (id, data) in rows {
                    buf.extend_from_slice(&id.to_le_bytes());
                    put_wme(&mut buf, data);
                }
            }
            Response::Done { commits } => {
                buf.push(T_DONE);
                buf.extend_from_slice(&commits.to_le_bytes());
            }
            Response::Overloaded { retry_after_ms } => {
                buf.push(T_OVERLOADED);
                buf.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::Err { code, msg } => {
                buf.push(T_ERR);
                buf.push(*code as u8);
                put_str(&mut buf, msg);
            }
            Response::Bye => buf.push(T_RBYE),
        }
        buf
    }

    /// Decodes a tag-plus-payload body produced by
    /// [`Response::encode`].
    pub fn decode(buf: &[u8]) -> io::Result<Response> {
        let mut at = 0usize;
        let resp = match get_u8(buf, &mut at)? {
            T_GRANTED => Response::Granted { session: get_u64(buf, &mut at)? },
            T_OK => Response::Ok { seq: get_u64(buf, &mut at)? },
            T_ROWS => {
                let n = u32::from_le_bytes(
                    buf.get(at..at + 4)
                        .ok_or_else(|| perr("truncated row count"))?
                        .try_into()
                        .unwrap(),
                ) as usize;
                at += 4;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let id = get_u64(buf, &mut at)?;
                    let data = get_wme(buf, &mut at)?;
                    rows.push((id, data));
                }
                Response::Rows { rows }
            }
            T_DONE => Response::Done { commits: get_u64(buf, &mut at)? },
            T_OVERLOADED => Response::Overloaded { retry_after_ms: get_u64(buf, &mut at)? },
            T_ERR => {
                let code = ErrCode::from_u8(get_u8(buf, &mut at)?)
                    .ok_or_else(|| perr("unknown error code"))?;
                Response::Err { code, msg: get_str(buf, &mut at)? }
            }
            T_RBYE => Response::Bye,
            t => return Err(perr(&format!("unknown response tag {t:#04x}"))),
        };
        if at != buf.len() {
            return Err(perr("trailing bytes after response"));
        }
        Ok(resp)
    }
}

/// Writes one frame: length prefix plus body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() as u32 <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body. `Ok(None)` means clean EOF at a frame
/// boundary; EOF mid-frame, an oversized length or a read timeout
/// surface as errors (timeouts keep their
/// [`io::ErrorKind::TimedOut`] / [`io::ErrorKind::WouldBlock`] kind so
/// callers can distinguish a slow peer from a dead one).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(perr("EOF inside frame header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(perr(&format!("frame length {n} exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; n as usize];
    let mut got = 0usize;
    while got < body.len() {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(perr("EOF inside frame body")),
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello);
        roundtrip_req(Request::Begin);
        roundtrip_req(Request::Insert {
            class: "delta".into(),
            attrs: vec![
                ("key".into(), Value::Int(42)),
                ("tag".into(), Value::Sym("pending".into())),
                ("note".into(), Value::Str("héllo".into())),
                ("frac".into(), Value::Float(0.25)),
                ("on".into(), Value::Bool(true)),
                ("nil".into(), Value::Nil),
            ],
        });
        roundtrip_req(Request::Remove { id: u64::MAX });
        roundtrip_req(Request::Query { class: "acc".into() });
        roundtrip_req(Request::Invoke);
        roundtrip_req(Request::Commit);
        roundtrip_req(Request::Abort);
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Granted { session: 7 });
        roundtrip_resp(Response::Ok { seq: 99 });
        roundtrip_resp(Response::Rows {
            rows: vec![
                (1, WmeData::new("acc").with("key", 3i64).with("total", 10i64)),
                (2, WmeData::new("acc").with("key", 4i64)),
            ],
        });
        roundtrip_resp(Response::Done { commits: 123 });
        roundtrip_resp(Response::Overloaded { retry_after_ms: 250 });
        roundtrip_resp(Response::Err { code: ErrCode::Aborted, msg: "doomed".into() });
        roundtrip_resp(Response::Bye);
    }

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let mut buf: Vec<u8> = Vec::new();
        let reqs = [
            Request::Hello,
            Request::Begin,
            Request::Insert { class: "t".into(), attrs: vec![("k".into(), Value::Int(1))] },
            Request::Commit,
            Request::Bye,
        ];
        for r in &reqs {
            write_frame(&mut buf, &r.encode()).unwrap();
        }
        let mut cur = io::Cursor::new(buf);
        for r in &reqs {
            let body = read_frame(&mut cur).unwrap().expect("frame");
            assert_eq!(&Request::decode(&body).unwrap(), r);
        }
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        // Unknown tag.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x7f]).is_err());
        // Truncated payload.
        assert!(Request::decode(&[T_REMOVE, 1, 2]).is_err());
        // Trailing garbage.
        let mut body = Request::Begin.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // Oversized frame length.
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(stream)).is_err());
        // EOF mid-frame.
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&8u32.to_le_bytes());
        stream.push(1);
        assert!(read_frame(&mut io::Cursor::new(stream)).is_err());
    }
}
