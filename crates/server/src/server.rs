//! The server proper: N sessions multiplexed onto one shared engine.
//!
//! [`Server::run`] owns two kinds of threads under one
//! `std::thread::scope`:
//!
//! * **the engine thread** — [`dps_core::ParallelEngine::run_shared`]
//!   in service mode: workers park at quiescence and wake when a
//!   session commit publishes new WM changes, so rules fire
//!   *data-driven* against the union of every session's writes;
//! * **one handler thread per connection** — the wire loop: decode a
//!   frame, check it against the [`SessionState`] machine, execute it
//!   through the engine's external-transaction API, reply.
//!
//! Disconnect safety is the handler's invariant: *every* exit path —
//! clean `Bye`, EOF mid-transaction, a read timeout, a transaction
//! overrunning its budget, an injected client death — routes the open
//! transaction through [`dps_core::ParallelEngine::external_abort`]
//! before the thread returns, so a dying session releases its locks,
//! drops its snapshot pin and discards its buffered delta. The
//! engine's drain then `debug_assert`s both leak probes
//! ([`dps_core::ParallelEngine::held_locks`],
//! [`dps_core::ParallelEngine::snapshot_pins`]) are zero.
//!
//! Graceful drain: [`Server::request_drain`] (or the shared
//! [`ServerConfig::stop`] flag, typically flipped by
//! [`crate::shutdown`]) moves sessions to `Draining` — open
//! transactions finish, new ones are refused with a typed
//! `Err(Draining)` — and once every handler has returned, the engine
//! is quiesced, stopped and joined through its final WAL flush.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dps_core::{ExternalTxn, ParallelConfig, ParallelEngine, ParallelReport};
use dps_obs::AbortCause;
use dps_rules::RuleSet;
use dps_wm::{Value, WmeData, WorkingMemory};

use crate::admission::{Admission, AdmissionConfig, AdmissionController, AdmissionStats};
use crate::session::{SessionState, SessionTimeouts};
use crate::transport::Conn;
use crate::wire::{read_frame, write_frame, ErrCode, Request, Response};

/// Front-door configuration.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Admission / shedding policy.
    pub admission: AdmissionConfig,
    /// Per-session timeouts.
    pub timeouts: SessionTimeouts,
    /// Stamp every inserted tuple with a `^session <id>` attribute
    /// (unless the client set one) — the per-session namespace: rules
    /// and queries can discriminate by originating session, and the
    /// reconciliation checks can attribute every tuple.
    pub stamp_session: bool,
    /// Shared stop flag (signal handler → drain). The server polls it;
    /// once set, every session drains as if
    /// [`Server::request_drain`] had been called.
    pub stop: Option<Arc<AtomicBool>>,
}

/// Per-session counters, returned by each handler and embedded in
/// [`ServerStats`] — the reconciliation substrate: summed over
/// sessions they must equal the global counters, and
/// `admitted == commits + aborts` (every admitted transaction resolves
/// exactly once).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionCounters {
    /// Server-assigned session id.
    pub session: u64,
    /// Frames decoded (excluding the `Hello`).
    pub requests: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back, any cause (voluntary, contention,
    /// timeout, disconnect).
    pub aborts: u64,
    /// `Begin`s refused with `Overloaded`.
    pub shed: u64,
    /// Transactions rolled back by the per-session timeout.
    pub timeouts: u64,
    /// `1` if the session ended by disconnect (EOF / injected death)
    /// with a transaction open.
    pub disconnects: u64,
}

/// End-of-run server statistics.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Sessions served (granted a `Hello`).
    pub sessions: u64,
    /// Committed external transactions.
    pub commits: u64,
    /// Rolled-back external transactions (all causes).
    pub aborts: u64,
    /// Transactions rolled back by per-session timeouts.
    pub timeouts: u64,
    /// Sessions that died with a transaction open.
    pub disconnects: u64,
    /// Admission-gate counters.
    pub admission: AdmissionStats,
    /// Per-session breakdown.
    pub per_session: Vec<SessionCounters>,
}

#[derive(Default)]
struct Counters {
    sessions: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    timeouts: AtomicU64,
    disconnects: AtomicU64,
}

/// The multi-session front door (see module docs).
pub struct Server {
    engine: ParallelEngine,
    admission: Arc<AdmissionController>,
    config: ServerConfig,
    counters: Arc<Counters>,
    draining: AtomicBool,
}

impl Server {
    /// Builds the server: one shared engine (forced into service
    /// mode), the admission gate, and — when the engine carries a
    /// telemetry registry — the `server.*` probe series.
    pub fn new(
        rules: &RuleSet,
        wm: WorkingMemory,
        mut engine_config: ParallelConfig,
        config: ServerConfig,
    ) -> Server {
        engine_config.service = true;
        let engine = ParallelEngine::new(rules, wm, engine_config);
        let admission = Arc::new(AdmissionController::new(config.admission.clone()));
        let counters = Arc::new(Counters::default());
        if let Some(tel) = engine.telemetry() {
            let a = Arc::clone(&admission);
            tel.counter("server.admitted", move || a.stats().admitted);
            let a = Arc::clone(&admission);
            tel.counter("server.shed", move || a.stats().shed_total());
            let a = Arc::clone(&admission);
            tel.gauge("server.inflight", move || a.inflight());
            let c = Arc::clone(&counters);
            tel.counter("server.commits", move || c.commits.load(Relaxed));
            let c = Arc::clone(&counters);
            tel.counter("server.aborts", move || c.aborts.load(Relaxed));
            let c = Arc::clone(&counters);
            tel.counter("server.disconnects", move || c.disconnects.load(Relaxed));
        }
        Server { engine, admission, config, counters, draining: AtomicBool::new(false) }
    }

    /// The shared engine (final WM, trace, leak probes, telemetry).
    pub fn engine(&self) -> &ParallelEngine {
        &self.engine
    }

    /// The admission gate.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Starts a graceful drain: sessions refuse new transactions,
    /// finish open ones, and the run ends once every connection has
    /// closed.
    pub fn request_drain(&self) {
        self.draining.store(true, Relaxed);
    }

    /// `true` once a drain was requested (locally or via the shared
    /// [`ServerConfig::stop`] flag).
    pub fn draining(&self) -> bool {
        self.draining.load(Relaxed)
            || self.config.stop.as_ref().is_some_and(|s| s.load(Relaxed))
    }

    /// Serves every connection to completion, then drains the engine.
    /// Returns the engine's run report and the server statistics.
    pub fn run<C: Conn>(&self, conns: Vec<C>) -> (ParallelReport, ServerStats) {
        let (report, per_session) = std::thread::scope(|s| {
            let engine_thread = s.spawn(|| self.engine.run_shared());
            let handlers: Vec<_> = conns
                .into_iter()
                .enumerate()
                .map(|(i, conn)| {
                    let sid = i as u64 + 1;
                    s.spawn(move || self.serve_conn(sid, conn))
                })
                .collect();
            let per_session: Vec<SessionCounters> =
                handlers.into_iter().map(|h| h.join().expect("handler panicked")).collect();
            // Every session is resolved; let the rules quiesce on the
            // union of their commits, then stop the engine through its
            // normal drain (final WAL flush, telemetry stop, leak
            // asserts).
            self.engine.await_quiescence();
            self.engine.request_stop();
            let report = engine_thread.join().expect("engine panicked");
            (report, per_session)
        });
        let stats = ServerStats {
            sessions: self.counters.sessions.load(Relaxed),
            commits: self.counters.commits.load(Relaxed),
            aborts: self.counters.aborts.load(Relaxed),
            timeouts: self.counters.timeouts.load(Relaxed),
            disconnects: self.counters.disconnects.load(Relaxed),
            admission: self.admission.stats(),
            per_session,
        };
        (report, stats)
    }

    fn reply(conn: &mut impl Conn, resp: &Response) -> io::Result<()> {
        write_frame(conn, &resp.encode())
    }

    /// `true` when this abort cause is engine contention (feeds the
    /// admission governor's storm detector) as opposed to a voluntary
    /// or client-side rollback.
    fn is_contention(cause: AbortCause) -> bool {
        matches!(
            cause,
            AbortCause::Doomed
                | AbortCause::Deadlock
                | AbortCause::Timeout
                | AbortCause::Revalidation
                | AbortCause::SnapshotStale
        )
    }

    /// Rolls back `xt` (if open) on a session death path and updates
    /// the books. `cause` distinguishes timeout from disconnect.
    fn rollback_dead(&self, xt: &mut Option<ExternalTxn>, cause: AbortCause, c: &mut SessionCounters) {
        if let Some(mut x) = xt.take() {
            self.engine.external_abort(&mut x, cause);
            self.admission.txn_end(false, &[]);
            c.aborts += 1;
            self.counters.aborts.fetch_add(1, Relaxed);
            match cause {
                AbortCause::Timeout => {
                    c.timeouts += 1;
                    self.counters.timeouts.fetch_add(1, Relaxed);
                }
                _ => {
                    c.disconnects += 1;
                    self.counters.disconnects.fetch_add(1, Relaxed);
                }
            }
        }
    }

    /// One connection, served to completion (see module docs for the
    /// exit-path invariant).
    fn serve_conn<C: Conn>(&self, sid: u64, mut conn: C) -> SessionCounters {
        let mut c = SessionCounters { session: sid, ..SessionCounters::default() };
        conn.set_read_timeout(self.config.timeouts.idle_read);
        // Handshake: the first frame must be a Hello.
        match read_frame(&mut conn) {
            Ok(Some(body)) if matches!(Request::decode(&body), Ok(Request::Hello)) => {}
            _ => return c,
        }
        if Self::reply(&mut conn, &Response::Granted { session: sid }).is_err() {
            return c;
        }
        self.counters.sessions.fetch_add(1, Relaxed);

        let obs = self.engine.observer().map(|r| r.as_ref());
        let mut state = SessionState::Idle;
        let mut xt: Option<ExternalTxn> = None;
        let mut deadline: Option<Instant> = None;
        loop {
            // While a transaction is open, the read timeout is bounded
            // by its remaining budget so an overrun is noticed even if
            // the client goes fully silent (slowloris).
            let timeout = match deadline {
                Some(d) => Some(
                    d.saturating_duration_since(Instant::now()).max(Duration::from_millis(1)),
                ),
                None => self.config.timeouts.idle_read,
            };
            conn.set_read_timeout(timeout);
            let body = match read_frame(&mut conn) {
                Ok(Some(body)) => body,
                Ok(None) => {
                    // EOF: disconnect. Roll back anything open.
                    self.rollback_dead(&mut xt, AbortCause::Stale, &mut c);
                    break;
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) =>
                {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Transaction overran its budget: roll back and
                        // disconnect (holding locks for a silent client
                        // is the one thing the front door must never do).
                        self.rollback_dead(&mut xt, AbortCause::Timeout, &mut c);
                        break;
                    }
                    if self.draining() && xt.is_none() {
                        break;
                    }
                    continue;
                }
                Err(_) => {
                    self.rollback_dead(&mut xt, AbortCause::Stale, &mut c);
                    break;
                }
            };
            let req = match Request::decode(&body) {
                Ok(req) => req,
                Err(e) => {
                    let resp = Response::Err { code: ErrCode::Protocol, msg: e.to_string() };
                    if Self::reply(&mut conn, &resp).is_err() {
                        self.rollback_dead(&mut xt, AbortCause::Stale, &mut c);
                        break;
                    }
                    continue;
                }
            };
            c.requests += 1;
            let draining = self.draining();
            let next = match state.next(&req, draining) {
                Ok(next) => next,
                Err(code) => {
                    let resp = Response::Err { code, msg: format!("{req:?} in {state:?}") };
                    if Self::reply(&mut conn, &resp).is_err() {
                        self.rollback_dead(&mut xt, AbortCause::Stale, &mut c);
                        break;
                    }
                    continue;
                }
            };
            // Chaos: the injected-client-death sites. `slowloris`
            // stalls the session while it holds its transaction;
            // `drop_mid_claim` kills it right after `Begin` claimed
            // engine resources; `drop_mid_rhs` kills it between its
            // writes and the commit.
            if let (Some(inj), Some(x)) = (self.engine.injector(), xt.as_ref()) {
                if let Some(d) = inj.slowloris(x.txn(), sid, obs) {
                    std::thread::sleep(d);
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        self.rollback_dead(&mut xt, AbortCause::Timeout, &mut c);
                        break;
                    }
                }
                if matches!(req, Request::Commit) && inj.drop_mid_rhs(x.txn(), sid, obs) {
                    self.rollback_dead(&mut xt, AbortCause::Injected, &mut c);
                    break;
                }
            }
            let resp = match req {
                Request::Hello | Request::Bye => {
                    // Hello is illegal here (the state machine rejected
                    // it above); Bye closes, aborting anything open as
                    // a voluntary rollback.
                    if let Some(mut x) = xt.take() {
                        self.engine.external_abort(&mut x, AbortCause::Stale);
                        self.admission.txn_end(false, &[]);
                        c.aborts += 1;
                        self.counters.aborts.fetch_add(1, Relaxed);
                    }
                    let _ = Self::reply(&mut conn, &Response::Bye);
                    break;
                }
                Request::Begin => match self.admission.admit() {
                    Admission::Shed { retry_after_ms } => {
                        c.shed += 1;
                        // State unchanged: the transaction never opened.
                        if Self::reply(&mut conn, &Response::Overloaded { retry_after_ms })
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                    Admission::Granted => {
                        let x = self.engine.external_begin();
                        if let Some(inj) = self.engine.injector() {
                            if inj.drop_mid_claim(x.txn(), sid, obs) {
                                xt = Some(x);
                                self.rollback_dead(&mut xt, AbortCause::Injected, &mut c);
                                break;
                            }
                        }
                        xt = Some(x);
                        deadline = Some(Instant::now() + self.config.timeouts.txn);
                        Response::Ok { seq: 0 }
                    }
                },
                Request::Insert { class, attrs } => {
                    let mut data = WmeData::new(class);
                    for (k, v) in attrs {
                        data.attrs.insert(k.into(), v);
                    }
                    if self.config.stamp_session {
                        data.attrs
                            .entry("session".into())
                            .or_insert(Value::Int(sid as i64));
                    }
                    let x = xt.as_mut().expect("InTxn implies open txn");
                    match self.engine.external_insert(x, data) {
                        Ok(()) => Response::Ok { seq: 0 },
                        Err(cause) => {
                            self.resolve_failed(&mut xt, &mut deadline, cause, &mut c);
                            state = if draining { SessionState::Draining } else { SessionState::Idle };
                            let resp = Response::Err {
                                code: ErrCode::Aborted,
                                msg: format!("{cause:?}"),
                            };
                            if Self::reply(&mut conn, &resp).is_err() {
                                break;
                            }
                            continue;
                        }
                    }
                }
                Request::Remove { id } => {
                    let x = xt.as_mut().expect("InTxn implies open txn");
                    match self.engine.external_remove(x, dps_wm::WmeId(id)) {
                        Ok(()) => Response::Ok { seq: 0 },
                        Err(cause) => {
                            self.resolve_failed(&mut xt, &mut deadline, cause, &mut c);
                            state = if draining { SessionState::Draining } else { SessionState::Idle };
                            let resp = Response::Err {
                                code: ErrCode::Aborted,
                                msg: format!("{cause:?}"),
                            };
                            if Self::reply(&mut conn, &resp).is_err() {
                                break;
                            }
                            continue;
                        }
                    }
                }
                Request::Query { class } => {
                    let x = xt.as_mut().expect("InTxn implies open txn");
                    match self.engine.external_query(x, &class) {
                        Ok(rows) => Response::Rows { rows },
                        Err(cause) => {
                            self.resolve_failed(&mut xt, &mut deadline, cause, &mut c);
                            state = if draining { SessionState::Draining } else { SessionState::Idle };
                            let resp = Response::Err {
                                code: ErrCode::Aborted,
                                msg: format!("{cause:?}"),
                            };
                            if Self::reply(&mut conn, &resp).is_err() {
                                break;
                            }
                            continue;
                        }
                    }
                }
                Request::Invoke => {
                    self.engine.await_quiescence();
                    Response::Done { commits: self.engine.rule_commit_count() }
                }
                Request::Commit => {
                    let mut x = xt.take().expect("InTxn implies open txn");
                    deadline = None;
                    match self.engine.external_commit(&mut x) {
                        Ok(seq) => {
                            self.admission.txn_end(false, &[]);
                            c.commits += 1;
                            self.counters.commits.fetch_add(1, Relaxed);
                            Response::Ok { seq }
                        }
                        Err(cause) => {
                            self.admission.txn_end(Self::is_contention(cause), &[]);
                            c.aborts += 1;
                            self.counters.aborts.fetch_add(1, Relaxed);
                            Response::Err { code: ErrCode::Aborted, msg: format!("{cause:?}") }
                        }
                    }
                }
                Request::Abort => {
                    let mut x = xt.take().expect("InTxn implies open txn");
                    deadline = None;
                    self.engine.external_abort(&mut x, AbortCause::Stale);
                    self.admission.txn_end(false, &[]);
                    c.aborts += 1;
                    self.counters.aborts.fetch_add(1, Relaxed);
                    Response::Ok { seq: 0 }
                }
            };
            state = next;
            if Self::reply(&mut conn, &resp).is_err() {
                self.rollback_dead(&mut xt, AbortCause::Stale, &mut c);
                break;
            }
            if state == SessionState::Closed {
                break;
            }
        }
        // Belt and braces: no exit path may leak an open transaction.
        self.rollback_dead(&mut xt, AbortCause::Stale, &mut c);
        c
    }

    /// Books a transaction the engine already aborted (lock error /
    /// failed commit validation inside an op).
    fn resolve_failed(
        &self,
        xt: &mut Option<ExternalTxn>,
        deadline: &mut Option<Instant>,
        cause: AbortCause,
        c: &mut SessionCounters,
    ) {
        *xt = None;
        *deadline = None;
        self.admission.txn_end(Self::is_contention(cause), &[]);
        c.aborts += 1;
        self.counters.aborts.fetch_add(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{loopback_pair, LoopbackConn};
    use dps_core::ParallelConfig;

    fn accumulator_rules() -> RuleSet {
        RuleSet::parse(
            "(p apply (delta ^key <k> ^v <v>) (acc ^key <k> ^total <t>)
               --> (remove 1) (modify 2 ^total (+ <t> <v>)))",
        )
        .unwrap()
    }

    fn acc_wm(keys: i64) -> WorkingMemory {
        let mut wm = WorkingMemory::new();
        for k in 0..keys {
            wm.insert(WmeData::new("acc").with("key", k).with("total", 0i64));
        }
        wm
    }

    fn rpc(conn: &mut LoopbackConn, req: &Request) -> Response {
        write_frame(conn, &req.encode()).unwrap();
        let body = read_frame(conn).unwrap().expect("response");
        Response::decode(&body).unwrap()
    }

    fn hello(conn: &mut LoopbackConn) -> u64 {
        match rpc(conn, &Request::Hello) {
            Response::Granted { session } => session,
            r => panic!("expected Granted, got {r:?}"),
        }
    }

    fn fast_timeouts() -> SessionTimeouts {
        SessionTimeouts {
            idle_read: Some(Duration::from_millis(20)),
            txn: Duration::from_millis(250),
        }
    }

    #[test]
    fn sessions_commit_and_rules_fire() {
        let rules = accumulator_rules();
        let server = Server::new(
            &rules,
            acc_wm(4),
            ParallelConfig { workers: 2, ..ParallelConfig::default() },
            ServerConfig {
                timeouts: fast_timeouts(),
                stamp_session: true,
                ..ServerConfig::default()
            },
        );
        let (s1, mut c1) = loopback_pair();
        let (s2, mut c2) = loopback_pair();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.run(vec![s1, s2]));
            for (conn, key) in [(&mut c1, 0i64), (&mut c2, 1i64)] {
                let sid = hello(conn);
                assert!(sid > 0);
                assert_eq!(rpc(conn, &Request::Begin), Response::Ok { seq: 0 });
                let resp = rpc(
                    conn,
                    &Request::Insert {
                        class: "delta".into(),
                        attrs: vec![("key".into(), Value::Int(key)), ("v".into(), Value::Int(5))],
                    },
                );
                assert_eq!(resp, Response::Ok { seq: 0 });
                match rpc(conn, &Request::Commit) {
                    Response::Ok { seq } => assert!(seq > 0),
                    r => panic!("commit failed: {r:?}"),
                }
                match rpc(conn, &Request::Invoke) {
                    Response::Done { .. } => {}
                    r => panic!("invoke failed: {r:?}"),
                }
                assert_eq!(rpc(conn, &Request::Bye), Response::Bye);
            }
            let (report, stats) = srv.join().unwrap();
            assert_eq!(stats.sessions, 2);
            assert_eq!(stats.commits, 2);
            assert_eq!(stats.aborts, 0);
            assert_eq!(stats.admission.admitted, stats.commits + stats.aborts);
            assert_eq!(report.commits, 2, "one rule firing per delta");
        });
        // Both deltas consumed; totals updated; leak probes clean.
        let wm = server.engine().final_wm();
        assert_eq!(wm.class_iter("delta").count(), 0);
        let totals: i64 = wm
            .class_iter("acc")
            .filter_map(|w| match w.data.get("total") {
                Some(Value::Int(v)) => Some(*v),
                _ => None,
            })
            .sum();
        assert_eq!(totals, 10);
        assert_eq!(server.engine().held_locks(), 0);
        assert_eq!(server.engine().snapshot_pins(), 0);
    }

    #[test]
    fn disconnect_mid_txn_releases_everything() {
        let rules = accumulator_rules();
        let server = Server::new(
            &rules,
            acc_wm(2),
            ParallelConfig { workers: 1, ..ParallelConfig::default() },
            ServerConfig { timeouts: fast_timeouts(), ..ServerConfig::default() },
        );
        let (s1, mut c1) = loopback_pair();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.run(vec![s1]));
            hello(&mut c1);
            assert_eq!(rpc(&mut c1, &Request::Begin), Response::Ok { seq: 0 });
            let resp = rpc(
                &mut c1,
                &Request::Insert {
                    class: "delta".into(),
                    attrs: vec![("key".into(), Value::Int(0)), ("v".into(), Value::Int(1))],
                },
            );
            assert_eq!(resp, Response::Ok { seq: 0 });
            c1.kill(); // client dies mid-transaction
            let (_, stats) = srv.join().unwrap();
            assert_eq!(stats.disconnects, 1);
            assert_eq!(stats.aborts, 1);
            assert_eq!(stats.commits, 0);
            assert_eq!(stats.admission.admitted, stats.commits + stats.aborts);
        });
        assert_eq!(server.engine().held_locks(), 0, "disconnect leaked locks");
        assert_eq!(server.engine().snapshot_pins(), 0, "disconnect leaked pins");
        // The uncommitted delta never reached working memory.
        assert_eq!(server.engine().final_wm().class_iter("delta").count(), 0);
    }

    #[test]
    fn silent_txn_holder_is_timed_out() {
        let rules = accumulator_rules();
        let server = Server::new(
            &rules,
            acc_wm(1),
            ParallelConfig { workers: 1, ..ParallelConfig::default() },
            ServerConfig {
                timeouts: SessionTimeouts {
                    idle_read: Some(Duration::from_millis(20)),
                    txn: Duration::from_millis(40),
                },
                ..ServerConfig::default()
            },
        );
        let (s1, mut c1) = loopback_pair();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.run(vec![s1]));
            hello(&mut c1);
            assert_eq!(rpc(&mut c1, &Request::Begin), Response::Ok { seq: 0 });
            // Go silent holding the transaction; the server must roll
            // it back and hang up.
            let mut buf = [0u8; 1];
            use std::io::Read;
            c1.set_read_timeout(None);
            assert_eq!(c1.read(&mut buf).unwrap(), 0, "server hung up");
            let (_, stats) = srv.join().unwrap();
            assert_eq!(stats.timeouts, 1);
            assert_eq!(stats.aborts, 1);
        });
        assert_eq!(server.engine().held_locks(), 0);
        assert_eq!(server.engine().snapshot_pins(), 0);
    }

    #[test]
    fn overload_is_shed_with_typed_response() {
        let rules = accumulator_rules();
        let server = Server::new(
            &rules,
            acc_wm(1),
            ParallelConfig { workers: 1, ..ParallelConfig::default() },
            ServerConfig {
                admission: AdmissionConfig {
                    tokens_per_sec: 0.001, // ~no refill during the test
                    bucket_cap: 1.0,
                    ..AdmissionConfig::default()
                },
                timeouts: fast_timeouts(),
                ..ServerConfig::default()
            },
        );
        let (s1, mut c1) = loopback_pair();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.run(vec![s1]));
            hello(&mut c1);
            assert_eq!(rpc(&mut c1, &Request::Begin), Response::Ok { seq: 0 });
            assert_eq!(rpc(&mut c1, &Request::Abort), Response::Ok { seq: 0 });
            match rpc(&mut c1, &Request::Begin) {
                Response::Overloaded { retry_after_ms } => assert!(retry_after_ms >= 1),
                r => panic!("expected Overloaded, got {r:?}"),
            }
            // The shed left the session Idle, not broken: Bye still works.
            assert_eq!(rpc(&mut c1, &Request::Bye), Response::Bye);
            let (_, stats) = srv.join().unwrap();
            assert_eq!(stats.admission.shed_rate, 1);
            assert_eq!(stats.per_session[0].shed, 1);
        });
    }

    #[test]
    fn drain_refuses_new_transactions() {
        let rules = accumulator_rules();
        let server = Server::new(
            &rules,
            acc_wm(1),
            ParallelConfig { workers: 1, ..ParallelConfig::default() },
            ServerConfig { timeouts: fast_timeouts(), ..ServerConfig::default() },
        );
        let (s1, mut c1) = loopback_pair();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.run(vec![s1]));
            hello(&mut c1);
            server.request_drain();
            match rpc(&mut c1, &Request::Begin) {
                Response::Err { code, .. } => assert_eq!(code, ErrCode::Draining),
                r => panic!("expected Err(Draining), got {r:?}"),
            }
            assert_eq!(rpc(&mut c1, &Request::Bye), Response::Bye);
            let (_, stats) = srv.join().unwrap();
            assert_eq!(stats.commits, 0);
        });
    }

    #[test]
    fn state_machine_violations_are_rejected_not_fatal() {
        let rules = accumulator_rules();
        let server = Server::new(
            &rules,
            acc_wm(1),
            ParallelConfig { workers: 1, ..ParallelConfig::default() },
            ServerConfig { timeouts: fast_timeouts(), ..ServerConfig::default() },
        );
        let (s1, mut c1) = loopback_pair();
        std::thread::scope(|s| {
            let srv = s.spawn(|| server.run(vec![s1]));
            hello(&mut c1);
            // Commit without Begin.
            match rpc(&mut c1, &Request::Commit) {
                Response::Err { code, .. } => assert_eq!(code, ErrCode::BadState),
                r => panic!("expected Err(BadState), got {r:?}"),
            }
            // Session still usable afterwards.
            assert_eq!(rpc(&mut c1, &Request::Begin), Response::Ok { seq: 0 });
            assert_eq!(rpc(&mut c1, &Request::Abort), Response::Ok { seq: 0 });
            assert_eq!(rpc(&mut c1, &Request::Bye), Response::Bye);
            let (_, stats) = srv.join().unwrap();
            assert_eq!(stats.sessions, 1);
        });
    }
}
