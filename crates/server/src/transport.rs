//! Byte-stream transport abstraction and the in-process loopback pipe.
//!
//! The hermetic build has no network, so the server is written against
//! [`Conn`] — the minimal surface the session loop needs (blocking
//! reads with an optional timeout, writes, and an explicit kill
//! switch) — and tested over [`loopback_pair`]: a full-duplex
//! in-process pipe built from two bounded byte queues with condvar
//! wakeups. The pair reproduces the failure modes the disconnect-safety
//! machinery must survive:
//!
//! * **clean close** — [`LoopbackConn::close`] (or drop) marks both
//!   directions closed; the peer's next read returns EOF at a frame
//!   boundary.
//! * **abrupt kill** — [`LoopbackConn::kill`] simulates a client dying
//!   mid-transaction: same EOF, but the test harness flips it at a
//!   chosen protocol step.
//! * **slow peer** — the write side blocks when the peer stops
//!   draining (bounded queue), and reads honour
//!   [`Conn::set_read_timeout`], surfacing
//!   [`std::io::ErrorKind::TimedOut`] so the per-session timeout can
//!   fire (the slowloris defence).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A connection the server can serve: blocking reads/writes plus a
/// read timeout. Implemented by [`LoopbackConn`]; a TCP stream would
/// satisfy the same contract.
pub trait Conn: Read + Write + Send {
    /// Sets the read timeout. `None` blocks indefinitely. Timed-out
    /// reads fail with [`io::ErrorKind::TimedOut`].
    fn set_read_timeout(&mut self, timeout: Option<Duration>);
}

/// Per-direction capacity of the loopback pipe. Small enough that a
/// peer which stops reading exerts real backpressure on the writer.
const PIPE_CAP: usize = 256 * 1024;

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe { state: Mutex::new(PipeState::default()), cv: Condvar::new() })
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    fn read(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().unwrap();
                }
                self.cv.notify_all();
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = match deadline {
                None => self.cv.wait(st).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read timeout"));
                    }
                    self.cv.wait_timeout(st, d - now).unwrap().0
                }
            };
        }
    }

    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
            }
            let room = PIPE_CAP - st.buf.len();
            if room > 0 {
                let n = data.len().min(room);
                st.buf.extend(&data[..n]);
                self.cv.notify_all();
                return Ok(n);
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// One endpoint of an in-process full-duplex byte pipe (see module
/// docs). Dropping an endpoint closes both directions.
pub struct LoopbackConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
}

impl LoopbackConn {
    /// Closes both directions cleanly. The peer's pending and future
    /// reads drain buffered bytes, then see EOF.
    pub fn close(&self) {
        self.rx.close();
        self.tx.close();
    }

    /// Simulates an abrupt disconnect: discards anything buffered
    /// toward the peer, then closes both directions — the peer sees
    /// EOF possibly mid-frame, exactly like a killed TCP client.
    pub fn kill(&self) {
        self.tx.state.lock().unwrap().buf.clear();
        self.close();
    }
}

impl Read for LoopbackConn {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        self.rx.read(out, self.read_timeout)
    }
}

impl Write for LoopbackConn {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.tx.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for LoopbackConn {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        self.close();
    }
}

/// Creates a connected full-duplex pair: bytes written to one endpoint
/// are read from the other.
pub fn loopback_pair() -> (LoopbackConn, LoopbackConn) {
    let ab = Pipe::new();
    let ba = Pipe::new();
    (
        LoopbackConn { rx: Arc::clone(&ba), tx: Arc::clone(&ab), read_timeout: None },
        LoopbackConn { rx: ab, tx: ba, read_timeout: None },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame, Request};

    #[test]
    fn bytes_flow_both_ways() {
        let (mut a, mut b) = loopback_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn frames_cross_the_pipe() {
        let (mut a, mut b) = loopback_pair();
        let req = Request::Query { class: "acc".into() };
        write_frame(&mut a, &req.encode()).unwrap();
        let body = read_frame(&mut b).unwrap().expect("frame");
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn close_is_eof_kill_discards() {
        let (mut a, mut b) = loopback_pair();
        a.write_all(b"tail").unwrap();
        a.close();
        let mut buf = [0u8; 8];
        // Clean close: buffered bytes drain first, then EOF.
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(b.read(&mut buf).unwrap(), 0);

        let (mut a, mut b) = loopback_pair();
        a.write_all(b"lost").unwrap();
        a.kill();
        // Abrupt kill: buffered bytes are gone, immediate EOF.
        assert_eq!(b.read(&mut buf).unwrap(), 0);
        assert!(a.write_all(b"x").is_err(), "write after kill fails");
    }

    #[test]
    fn read_timeout_fires() {
        let (_a, mut b) = loopback_pair();
        b.set_read_timeout(Some(Duration::from_millis(20)));
        let mut buf = [0u8; 1];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn drop_closes_the_peer() {
        let (a, mut b) = loopback_pair();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after peer drop");
    }
}
