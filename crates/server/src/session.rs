//! The per-connection session state machine.
//!
//! A session moves through four states:
//!
//! ```text
//!          Hello/Granted         Begin
//!   (wire) ────────────▶ Idle ─────────▶ InTxn
//!                         ▲  ◀───────────  │
//!                         │  Commit/Abort  │
//!              drain &&   │                │ drain && Commit/Abort
//!              (any req)  ▼                ▼
//!                      Draining ◀──────────┘
//!                         │  Bye (any state)
//!                         ▼
//!                       Closed
//! ```
//!
//! plus the *disconnect transitions* the wire never shows: EOF, a read
//! timeout with a transaction open, or an injected drop all take the
//! session straight to `Closed` — after the server rolls back the open
//! transaction (locks released, snapshot pin dropped, buffered delta
//! discarded). The transition function is pure and total: every
//! `(state, request, draining)` triple either yields the next state or
//! a typed [`ErrCode`] — an illegal request never panics and never
//! changes state.

use std::time::Duration;

use crate::wire::{ErrCode, Request};

/// Session lifecycle states (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Greeted, no open transaction.
    Idle,
    /// An external transaction is open.
    InTxn,
    /// The server is draining; only `Bye` is accepted.
    Draining,
    /// Session over (graceful `Bye` or disconnect).
    Closed,
}

impl SessionState {
    /// Pure transition: the state after `req`, or the error the server
    /// must answer (leaving the state unchanged). `draining` is the
    /// server-wide shutdown flag: it refuses *new* work (`Begin`,
    /// `Invoke`) with [`ErrCode::Draining`] but lets an open
    /// transaction finish — aborting mid-flight work on shutdown would
    /// manufacture exactly the wasted work §5 warns about.
    pub fn next(self, req: &Request, draining: bool) -> Result<SessionState, ErrCode> {
        use SessionState::*;
        match (self, req) {
            (Closed, _) => Err(ErrCode::BadState),
            (_, Request::Bye) => Ok(Closed),
            (Draining, _) => Err(ErrCode::Draining),
            (Idle, Request::Begin) if draining => Err(ErrCode::Draining),
            (Idle, Request::Begin) => Ok(InTxn),
            (Idle, Request::Invoke) if draining => Err(ErrCode::Draining),
            (Idle, Request::Invoke) => Ok(Idle),
            (Idle, _) => Err(ErrCode::BadState),
            (InTxn, Request::Insert { .. } | Request::Remove { .. } | Request::Query { .. }) => {
                Ok(InTxn)
            }
            (InTxn, Request::Commit | Request::Abort) => {
                Ok(if draining { Draining } else { Idle })
            }
            (InTxn, _) => Err(ErrCode::BadState),
        }
    }
}

/// Per-session timeout policy.
#[derive(Clone, Copy, Debug)]
pub struct SessionTimeouts {
    /// Read timeout while **idle** (no open transaction). `None`
    /// blocks forever — acceptable only when something else bounds the
    /// session (tests); servers should always set it so drains are not
    /// held hostage by silent clients.
    pub idle_read: Option<Duration>,
    /// Wall-clock budget of one open transaction, measured from
    /// `Begin`. A session that overruns it (the slowloris pattern:
    /// open a transaction, hold locks, trickle or stop sending) is
    /// rolled back and disconnected.
    pub txn: Duration,
}

impl Default for SessionTimeouts {
    fn default() -> Self {
        SessionTimeouts {
            idle_read: Some(Duration::from_secs(5)),
            txn: Duration::from_millis(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SessionState::*;
    use super::*;

    #[test]
    fn happy_path_transitions() {
        let s = Idle;
        let s = s.next(&Request::Begin, false).unwrap();
        assert_eq!(s, InTxn);
        let s = s
            .next(&Request::Insert { class: "t".into(), attrs: vec![] }, false)
            .unwrap();
        let s = s.next(&Request::Query { class: "t".into() }, false).unwrap();
        let s = s.next(&Request::Commit, false).unwrap();
        assert_eq!(s, Idle);
        let s = s.next(&Request::Invoke, false).unwrap();
        assert_eq!(s, Idle);
        assert_eq!(s.next(&Request::Bye, false).unwrap(), Closed);
    }

    #[test]
    fn illegal_requests_are_typed_errors() {
        assert_eq!(Idle.next(&Request::Commit, false), Err(ErrCode::BadState));
        assert_eq!(Idle.next(&Request::Remove { id: 1 }, false), Err(ErrCode::BadState));
        assert_eq!(InTxn.next(&Request::Begin, false), Err(ErrCode::BadState));
        assert_eq!(InTxn.next(&Request::Invoke, false), Err(ErrCode::BadState));
        assert_eq!(Closed.next(&Request::Begin, false), Err(ErrCode::BadState));
        assert_eq!(Closed.next(&Request::Bye, false), Err(ErrCode::BadState));
    }

    #[test]
    fn draining_refuses_new_work_but_finishes_open_txns() {
        assert_eq!(Idle.next(&Request::Begin, true), Err(ErrCode::Draining));
        assert_eq!(Idle.next(&Request::Invoke, true), Err(ErrCode::Draining));
        // An open transaction may finish, then lands in Draining.
        let s = InTxn
            .next(&Request::Insert { class: "t".into(), attrs: vec![] }, true)
            .unwrap();
        assert_eq!(s, InTxn);
        assert_eq!(s.next(&Request::Commit, true).unwrap(), Draining);
        assert_eq!(InTxn.next(&Request::Abort, true).unwrap(), Draining);
        // Draining accepts only Bye.
        assert_eq!(Draining.next(&Request::Begin, true), Err(ErrCode::Draining));
        assert_eq!(Draining.next(&Request::Query { class: "t".into() }, true), Err(ErrCode::Draining));
        assert_eq!(Draining.next(&Request::Bye, true).unwrap(), Closed);
    }
}
