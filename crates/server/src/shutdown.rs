//! Process signals → cooperative stop flag.
//!
//! Every gate binary drives a long engine run; Ctrl-C (SIGINT) or a
//! supervisor's SIGTERM must exit through the *graceful drain* —
//! workers stop claiming, in-flight commits finish, the WAL gets its
//! final sync, telemetry stops — never through `abort()`-style
//! teardown that leaves a torn WAL tail or a half-written report.
//!
//! The mechanism is the smallest one that works without any
//! dependency: a process-global `AtomicBool` flipped by a
//! signal-handler trampoline installed with `libc`'s `signal(2)` via a
//! minimal FFI declaration (the workspace links `libc` anyway —
//! everything `std` does goes through it). Flipping a relaxed atomic
//! is async-signal-safe; everything else (kicking condvars, draining)
//! happens on normal threads that *poll* the flag:
//!
//! ```no_run
//! let stop = dps_server::shutdown::install();
//! // engine_config.stop = Some(stop.clone());  // engine drains on Ctrl-C
//! ```
//!
//! A second signal while draining falls back to the default
//! disposition (the handler restores it after the first hit), so a
//! wedged drain can still be killed interactively.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

/// `SIGINT` — Ctrl-C.
const SIGINT: i32 = 2;
/// `SIGTERM` — the polite supervisor kill.
const SIGTERM: i32 = 15;
/// `signal(2)`'s `SIG_DFL` disposition.
const SIG_DFL: usize = 0;

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// `signal(2)`. `handler` is either `SIG_DFL` (0) or a
        /// function pointer cast to `usize`.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// The signal trampoline: flip the flag, restore the default
/// disposition so a second signal kills outright. Only
/// async-signal-safe operations (two relaxed stores via `signal` and
/// the atomic).
extern "C" fn on_signal(signum: i32) {
    if let Some(stop) = STOP.get() {
        stop.store(true, Relaxed);
    }
    #[allow(unsafe_code)]
    unsafe {
        ffi::signal(signum, SIG_DFL);
    }
}

/// Installs SIGINT/SIGTERM handlers (idempotent) and returns the
/// shared stop flag. Thread the clone into
/// [`dps_core::ParallelConfig::stop`] and/or
/// [`crate::ServerConfig::stop`]; poll it from load loops.
pub fn install() -> Arc<AtomicBool> {
    let stop = STOP.get_or_init(|| Arc::new(AtomicBool::new(false)));
    #[allow(unsafe_code)]
    unsafe {
        ffi::signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        ffi::signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
    Arc::clone(stop)
}

/// `true` once a shutdown signal has arrived (handlers installed or
/// not — without [`install`] this is always `false`).
pub fn requested() -> bool {
    STOP.get().is_some_and(|s| s.load(Relaxed))
}

/// The ambient stop flag, when [`install`] has run; `None` otherwise.
/// Lets library code thread the flag into
/// [`dps_core::ParallelConfig::stop`] without owning installation —
/// binaries install, engine-building helpers pick it up.
pub fn installed() -> Option<Arc<AtomicBool>> {
    STOP.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_is_shared() {
        let a = install();
        let b = install();
        assert!(!requested());
        a.store(true, Relaxed);
        assert!(b.load(Relaxed));
        assert!(requested());
        a.store(false, Relaxed); // leave the global clean for other tests
    }
}
