//! The *world* — the database half of every engine: working memory plus
//! the incremental matcher that mirrors it.
//!
//! All three engines (single-thread, static-parallel, dynamic-parallel)
//! previously duplicated the same commit skeleton — apply the delta to
//! WM, drive the matcher with the resulting changes, refract the fired
//! instantiation, append to the trace. That skeleton lives here once, as
//! [`World::commit`].
//!
//! The WM and the matcher are deliberately **one** unit: the matcher's
//! internal state is a function of the change stream, so the two must
//! only ever be observed in lock-step. In the dynamic engine the pair
//! sits behind a single mutex (`Mutex<World>`) — one of the three
//! independently-locked pieces the former monolithic `Shared` struct was
//! split into.

use std::collections::HashSet;

use dps_match::{InstKey, Matcher, Rete};
use dps_wm::WorkingMemory;

use crate::{Firing, Trace};

/// Working memory plus the matcher that mirrors it.
#[derive(Clone, Debug)]
pub(crate) struct World<M: Matcher = Rete> {
    pub wm: WorkingMemory,
    pub matcher: M,
}

impl<M: Matcher> World<M> {
    /// The commit-time skeleton shared by every engine: atomically (from
    /// the caller's locking point of view) apply the firing's delta to
    /// WM, feed the changes to the matcher, refract the instantiation,
    /// and record the firing in `trace`.
    ///
    /// `refracted` and `trace` are passed in rather than owned so the
    /// dynamic engine can borrow them from *different* mutex guards
    /// (ledger and trace) while holding the world lock.
    pub fn commit(&mut self, refracted: &mut HashSet<InstKey>, trace: &mut Trace, firing: Firing) {
        let changes = self
            .wm
            .apply(&firing.delta)
            .expect("committed firing only touches live WMEs");
        self.matcher.apply(&changes);
        refracted.insert(firing.key.clone());
        trace.firings.push(firing);
    }

    /// Bounds the refraction set: once it exceeds `threshold`, drop keys
    /// no longer present in the conflict set (they can never match again
    /// — timestamps are fresh on re-assertion).
    pub fn gc_refracted(&self, refracted: &mut HashSet<InstKey>, threshold: usize) {
        if refracted.len() > threshold {
            let cs = self.matcher.conflict_set();
            refracted.retain(|k| cs.contains(k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_rules::{instantiate_actions, RuleSet};
    use dps_wm::{Value, WmeData};

    #[test]
    fn commit_applies_delta_and_refracts() {
        let rules = RuleSet::parse("(p bump (c ^n <n>) --> (modify 1 ^n (+ <n> 1)))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("c").with("n", 0i64));
        let matcher = Rete::new(&rules, &wm);
        let mut world = World { wm, matcher };
        let inst = world.matcher.conflict_set().iter().next().unwrap().clone();
        let rule = rules.get(inst.rule).unwrap();
        let (delta, halt) = instantiate_actions(rule, &inst.bindings, &inst.wmes).unwrap();
        let key = inst.key();
        let mut refracted = HashSet::new();
        let mut trace = Trace::default();
        world.commit(
            &mut refracted,
            &mut trace,
            Firing {
                rule: inst.rule,
                rule_name: rule.name.clone(),
                key: key.clone(),
                delta,
                halt,
                external: false,
            },
        );
        assert!(refracted.contains(&key));
        assert_eq!(trace.len(), 1);
        let c = world.wm.class_iter("c").next().unwrap();
        assert_eq!(c.get("n"), Some(&Value::Int(1)));
        // The matcher tracked the modify: a fresh instantiation exists
        // and the old key is gone from the conflict set.
        assert!(!world.matcher.conflict_set().contains(&key));
        assert_eq!(world.matcher.conflict_set().len(), 1);
    }

    #[test]
    fn gc_drops_only_dead_keys() {
        let rules = RuleSet::parse("(p keep (c) --> (make log))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("c"));
        let matcher = Rete::new(&rules, &wm);
        let world = World { wm, matcher };
        let live = world.matcher.conflict_set().iter().next().unwrap().key();
        let dead = InstKey {
            rule: live.rule,
            wmes: vec![],
        };
        let mut refracted: HashSet<InstKey> = [live.clone(), dead.clone()].into();
        world.gc_refracted(&mut refracted, 1);
        assert!(refracted.contains(&live), "live key survives GC");
        assert!(!refracted.contains(&dead), "dead key collected");
        // Below threshold: untouched.
        let mut small: HashSet<InstKey> = [dead].into();
        world.gc_refracted(&mut small, 10);
        assert_eq!(small.len(), 1);
    }
}
