//! The abstract add/delete-set production model of §3.3.
//!
//! "The execution of a production `P_x` causes some productions to be
//! added to / deleted from the conflict set. These are the *add set*
//! (`A_x^a`) and *delete set* (`A_x^d`) of `P_x`. In general these will
//! depend on `P_x` and the current database state. However, for
//! illustration we assume the dependence is only on `P_x`."
//!
//! This model drives the execution-graph machinery of [`crate::semantics`]
//! exactly (conflict sets are the whole state), and is the workload model
//! of the §5 simulator in `dps-sim`.

use std::collections::BTreeSet;
use std::fmt;

/// Index of an abstract production.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PId(pub usize);

impl fmt::Display for PId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1) // paper numbers productions from 1
    }
}

/// An abstract production: add/delete sets plus an execution time used by
/// the §5 schedule analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractProduction {
    /// Productions its commit adds to the conflict set (`A^a`).
    pub adds: BTreeSet<PId>,
    /// Productions its commit deletes from the conflict set (`A^d`).
    pub dels: BTreeSet<PId>,
    /// Execution time `T(P)` in abstract time units (§5).
    pub exec_time: u64,
}

impl AbstractProduction {
    /// Convenience constructor.
    pub fn new(
        adds: impl IntoIterator<Item = usize>,
        dels: impl IntoIterator<Item = usize>,
        exec_time: u64,
    ) -> Self {
        AbstractProduction {
            adds: adds.into_iter().map(PId).collect(),
            dels: dels.into_iter().map(PId).collect(),
            exec_time,
        }
    }
}

/// The conflict set of the abstract model — its entire system state.
pub type ConflictState = BTreeSet<PId>;

/// An abstract production system: productions plus the initial conflict
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractSystem {
    /// The productions, indexed by [`PId`].
    pub productions: Vec<AbstractProduction>,
    /// The initial conflict set.
    pub initial: ConflictState,
}

impl AbstractSystem {
    /// Builds a system; panics if any referenced id is out of range.
    pub fn new(
        productions: Vec<AbstractProduction>,
        initial: impl IntoIterator<Item = usize>,
    ) -> Self {
        let sys = AbstractSystem {
            initial: initial.into_iter().map(PId).collect(),
            productions,
        };
        let n = sys.productions.len();
        let ok = sys.initial.iter().all(|p| p.0 < n)
            && sys
                .productions
                .iter()
                .all(|pr| pr.adds.iter().all(|p| p.0 < n) && pr.dels.iter().all(|p| p.0 < n));
        assert!(ok, "production id out of range");
        sys
    }

    /// Number of productions.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// `true` when the system has no productions.
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// The state transition: firing `p` from `state`.
    ///
    /// The fired production leaves the conflict set (its instantiation is
    /// consumed), its delete set is removed and its add set inserted —
    /// the paper's "the commit of `P_i` ... adds (subtracts) the set
    /// `A_i^a` (`A_i^d`) to (from) the conflict set `P^A`".
    pub fn fire(&self, state: &ConflictState, p: PId) -> Option<ConflictState> {
        if !state.contains(&p) {
            return None;
        }
        let prod = &self.productions[p.0];
        let mut next = state.clone();
        next.remove(&p);
        for d in &prod.dels {
            next.remove(d);
        }
        for a in &prod.adds {
            next.insert(*a);
        }
        Some(next)
    }

    /// Execution time `T(p)`.
    pub fn exec_time(&self, p: PId) -> u64 {
        self.productions[p.0].exec_time
    }

    /// Whether committing `a` invalidates an in-flight `b` (i.e. `b` is
    /// in `a`'s delete set) — the §5 abort condition.
    pub fn kills(&self, a: PId, b: PId) -> bool {
        self.productions[a.0].dels.contains(&b)
    }
}

/// The §3.3 example, reconstructed.
///
/// The scanned proceedings garble the example's add/delete sets beyond
/// recovery, but preserve the structure: six productions, initial
/// conflict set `{P1, P2, P3, P5}`, and an execution semantics of exactly
/// **nine** maximal sequences, the first being `p1 p4 p5`. This
/// reconstruction reproduces those invariants (see `DESIGN.md`):
///
/// | P | add set | delete set |
/// |---|---------|------------|
/// | P1 | {P4} | {P2, P3} |
/// | P2 | ∅ | {P1} |
/// | P3 | ∅ | {P2} |
/// | P4 | ∅ | ∅ |
/// | P5 | ∅ | {P3, P4} |
/// | P6 | ∅ | ∅ (never active) |
pub fn paper33_example() -> AbstractSystem {
    AbstractSystem::new(
        vec![
            AbstractProduction::new([3], [1, 2], 1), // P1: adds P4, dels {P2,P3}
            AbstractProduction::new([], [0], 1),     // P2: dels {P1}
            AbstractProduction::new([], [1], 1),     // P3: dels {P2}
            AbstractProduction::new([], [], 1),      // P4
            AbstractProduction::new([], [2, 3], 1),  // P5: dels {P3,P4}
            AbstractProduction::new([], [], 1),      // P6: inert
        ],
        [0, 1, 2, 4], // {P1, P2, P3, P5}
    )
}

/// The §5 base scenario (Figure 5.1 / Table 5.1), reconstructed from the
/// reported numbers: `P^A = {P1..P4}`, `T = (5, 3, 2, 4)`, and committing
/// `P3` deletes `P1` (so the single-thread sequence `σ1 = p3 p2 p4` costs
/// `2+3+4 = 9` while four processors finish at `T(P4) = 4` — speed-up
/// 2.25, with `P1` aborted by `P3`'s commit).
pub fn paper51_base() -> AbstractSystem {
    AbstractSystem::new(
        vec![
            AbstractProduction::new([], [], 5), // P1
            AbstractProduction::new([], [], 3), // P2
            AbstractProduction::new([], [], 2), // P3: dels set below
            AbstractProduction::new([], [], 4), // P4
        ],
        [0, 1, 2, 3],
    )
    .with_dels(2, [0])
}

/// The §5 higher-conflict scenario (Figure 5.2 / Table 5.2): committing
/// `P3` deletes `P1` *and* `P4` (σ2 = `p3 p2`, `T_single = 5`,
/// `T_multi = 3`, speed-up 1.67).
pub fn paper52_conflict() -> AbstractSystem {
    paper51_base().with_dels(2, [0, 3])
}

impl AbstractSystem {
    /// Builder helper: replaces the delete set of production `p`.
    #[must_use]
    pub fn with_dels(mut self, p: usize, dels: impl IntoIterator<Item = usize>) -> Self {
        self.productions[p].dels = dels.into_iter().map(PId).collect();
        self
    }

    /// Builder helper: replaces the execution time of production `p`.
    #[must_use]
    pub fn with_time(mut self, p: usize, t: u64) -> Self {
        self.productions[p].exec_time = t;
        self
    }
}

/// Formats a conflict state as `{p1, p3}`.
pub fn fmt_state(state: &ConflictState) -> String {
    let inner: Vec<String> = state.iter().map(PId::to_string).collect();
    format!("{{{}}}", inner.join(", "))
}

/// Formats a sequence of firings as `p1 p4 p5`.
pub fn fmt_seq(seq: &[PId]) -> String {
    seq.iter().map(PId::to_string).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_consumes_and_applies_sets() {
        let sys = paper33_example();
        let s1 = sys.fire(&sys.initial, PId(0)).unwrap();
        assert_eq!(fmt_state(&s1), "{p4, p5}");
    }

    #[test]
    fn fire_of_inactive_production_is_none() {
        let sys = paper33_example();
        assert!(
            sys.fire(&sys.initial, PId(3)).is_none(),
            "P4 not initially active"
        );
        assert!(sys.fire(&sys.initial, PId(5)).is_none(), "P6 never active");
    }

    #[test]
    fn adds_can_reintroduce() {
        let sys = AbstractSystem::new(
            vec![
                AbstractProduction::new([1], [], 1),
                AbstractProduction::new([0], [], 1),
            ],
            [0],
        );
        let s1 = sys.fire(&sys.initial, PId(0)).unwrap();
        assert!(s1.contains(&PId(1)));
        let s2 = sys.fire(&s1, PId(1)).unwrap();
        assert!(
            s2.contains(&PId(0)),
            "P2 re-adds P1: a livelock-capable system"
        );
    }

    #[test]
    fn kills_reads_delete_sets() {
        let sys = paper51_base();
        assert!(sys.kills(PId(2), PId(0)), "P3 kills P1");
        assert!(!sys.kills(PId(0), PId(2)));
    }

    #[test]
    fn paper51_shape() {
        let sys = paper51_base();
        assert_eq!(sys.len(), 4);
        let times: Vec<u64> = (0..4).map(|i| sys.exec_time(PId(i))).collect();
        assert_eq!(times, [5, 3, 2, 4]);
        assert_eq!(sys.initial.len(), 4);
    }

    #[test]
    fn paper52_increases_conflict() {
        let sys = paper52_conflict();
        assert!(sys.kills(PId(2), PId(0)));
        assert!(sys.kills(PId(2), PId(3)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        AbstractSystem::new(vec![AbstractProduction::new([5], [], 1)], [0]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_seq(&[PId(0), PId(3), PId(4)]), "p1 p4 p5");
        let s: ConflictState = [PId(1)].into_iter().collect();
        assert_eq!(fmt_state(&s), "{p2}");
    }
}
