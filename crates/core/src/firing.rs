//! Firing records, traces and dynamic conflict footprints.

use std::collections::BTreeSet;

use dps_match::{InstKey, Instantiation};
use dps_rules::{Rule, RuleId};
use dps_wm::{Atom, DeltaSet, WmeId};

/// One committed production execution: what fired and what it did.
/// Engines append these to a [`Trace`], which
/// [`crate::semantics::validate_trace`] replays to check semantic
/// consistency.
#[derive(Clone, Debug, PartialEq)]
pub struct Firing {
    /// The rule.
    pub rule: RuleId,
    /// Its name (for readable traces).
    pub rule_name: Atom,
    /// Identity of the fired instantiation.
    pub key: InstKey,
    /// The buffered RHS effects applied at commit.
    pub delta: DeltaSet,
    /// Whether the RHS contained `halt`.
    pub halt: bool,
    /// `true` for commits that did not originate from a rule firing —
    /// external working-memory transactions submitted through a server
    /// session. The oracle replay applies their delta verbatim instead
    /// of requiring conflict-set membership (there is no instantiation
    /// to be a member).
    pub external: bool,
}

/// The commit sequence of one engine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Commits in order.
    pub firings: Vec<Firing>,
}

impl Trace {
    /// Number of commits.
    pub fn len(&self) -> usize {
        self.firings.len()
    }

    /// `true` when nothing committed.
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }

    /// The rule-name sequence, e.g. `["bump", "bump", "done"]`.
    pub fn names(&self) -> Vec<&str> {
        self.firings.iter().map(|f| f.rule_name.as_str()).collect()
    }
}

/// The dynamic (run-time) read/write footprint of one instantiation —
/// the information the paper says static analysis lacks ("interference
/// usually depends on run-time values of variables").
///
/// * `read_tuples` — the WMEs matched by positive CEs.
/// * `write_tuples` — WMEs the RHS modifies or removes.
/// * `read_classes` — classes watched by negated CEs (whole-class reads:
///   any insertion there can invalidate the match).
/// * `write_classes` — classes the RHS inserts into.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Tuple-level reads.
    pub read_tuples: BTreeSet<WmeId>,
    /// Tuple-level writes.
    pub write_tuples: BTreeSet<WmeId>,
    /// Whole-class reads (negated CEs).
    pub read_classes: BTreeSet<Atom>,
    /// Class-level writes (inserts).
    pub write_classes: BTreeSet<Atom>,
}

impl Footprint {
    /// Computes the footprint of an instantiation with its computed
    /// delta.
    pub fn of(rule: &Rule, inst: &Instantiation, delta: &DeltaSet) -> Footprint {
        let mut fp = Footprint {
            read_tuples: inst.wmes.iter().map(|w| w.id).collect(),
            write_tuples: delta.written_ids().collect(),
            read_classes: rule
                .conditions
                .iter()
                .filter(|c| c.is_negated())
                .map(|c| c.ce().class.clone())
                .collect(),
            write_classes: delta.created_classes().cloned().collect(),
        };
        // A modify/remove of a tuple is also a class-level write as far
        // as negated readers of that class are concerned (a removal can
        // *enable* their negation; a modify re-inserts).
        for w in &inst.wmes {
            if fp.write_tuples.contains(&w.id) {
                fp.write_classes.insert(w.data.class.clone());
            }
        }
        fp
    }

    /// The paper's §4.1 interference test at run-time granularity:
    /// read-write or write-write overlap.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        fn hit<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> bool {
            // Iterate the smaller set.
            let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            small.iter().any(|x| large.contains(x))
        }
        hit(&self.write_tuples, &other.write_tuples)
            || hit(&self.write_tuples, &other.read_tuples)
            || hit(&other.write_tuples, &self.read_tuples)
            || hit(&self.write_classes, &other.read_classes)
            || hit(&other.write_classes, &self.read_classes)
    }

    /// Enumerates the condition-level class reads of a rule without an
    /// instantiation (helper for lock escalation in the dynamic engine).
    pub fn negated_classes(rule: &Rule) -> impl Iterator<Item = &Atom> {
        rule.conditions
            .iter()
            .filter(|c| c.is_negated())
            .map(|c| &c.ce().class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_rules::{parser::parse_rule, Bindings};
    use dps_wm::{Wme, WmeData};

    fn wme(id: u64, class: &str) -> Wme {
        Wme {
            id: WmeId(id),
            data: WmeData::new(class),
            timestamp: id,
        }
    }

    fn inst_of(rule: &Rule, wmes: Vec<Wme>) -> Instantiation {
        Instantiation {
            rule: RuleId(0),
            wmes,
            bindings: Bindings::new(),
            salience: rule.salience,
        }
    }

    #[test]
    fn footprint_of_modify_rule() {
        let rule = parse_rule("(p r (job ^n <n>) --> (modify 1 ^n (+ <n> 1)))").unwrap();
        let w = wme(3, "job");
        let inst = inst_of(&rule, vec![w.clone()]);
        let mut delta = DeltaSet::new();
        delta.modify(w.id, []);
        let fp = Footprint::of(&rule, &inst, &delta);
        assert!(fp.read_tuples.contains(&WmeId(3)));
        assert!(fp.write_tuples.contains(&WmeId(3)));
        assert!(fp.write_classes.contains("job"));
        assert!(fp.read_classes.is_empty());
    }

    #[test]
    fn footprint_of_negated_reader() {
        let rule = parse_rule("(p r (go) -(hold) --> (make log))").unwrap();
        let inst = inst_of(&rule, vec![wme(1, "go")]);
        let mut delta = DeltaSet::new();
        delta.create(WmeData::new("log"));
        let fp = Footprint::of(&rule, &inst, &delta);
        assert!(fp.read_classes.contains("hold"));
        assert!(fp.write_classes.contains("log"));
        assert!(fp.write_tuples.is_empty());
    }

    #[test]
    fn disjoint_footprints_do_not_conflict() {
        let a = Footprint {
            read_tuples: [WmeId(1)].into(),
            write_tuples: [WmeId(1)].into(),
            ..Default::default()
        };
        let b = Footprint {
            read_tuples: [WmeId(2)].into(),
            write_tuples: [WmeId(2)].into(),
            ..Default::default()
        };
        assert!(!a.conflicts(&b));
        assert!(!b.conflicts(&a));
    }

    #[test]
    fn read_write_overlap_conflicts() {
        let reader = Footprint {
            read_tuples: [WmeId(1)].into(),
            ..Default::default()
        };
        let writer = Footprint {
            write_tuples: [WmeId(1)].into(),
            ..Default::default()
        };
        assert!(reader.conflicts(&writer));
        assert!(writer.conflicts(&reader));
        // Read-read is fine.
        assert!(!reader.conflicts(&reader.clone()));
    }

    #[test]
    fn insert_conflicts_with_negated_reader() {
        let maker = Footprint {
            write_classes: [Atom::from("hold")].into(),
            ..Default::default()
        };
        let negreader = Footprint {
            read_classes: [Atom::from("hold")].into(),
            ..Default::default()
        };
        assert!(maker.conflicts(&negreader));
        assert!(negreader.conflicts(&maker));
    }

    #[test]
    fn inserts_into_same_class_commute() {
        let a = Footprint {
            write_classes: [Atom::from("log")].into(),
            ..Default::default()
        };
        let b = a.clone();
        assert!(!a.conflicts(&b), "insert-insert commutes");
    }

    #[test]
    fn trace_names() {
        let mut t = Trace::default();
        t.firings.push(Firing {
            rule: RuleId(0),
            rule_name: Atom::from("a"),
            key: InstKey {
                rule: RuleId(0),
                wmes: vec![],
            },
            delta: DeltaSet::new(),
            halt: false,
            external: false,
        });
        assert_eq!(t.names(), ["a"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
