//! The single-execution-thread engine: the reference interpreter of §2
//! whose behaviour defines the execution semantics (§3.2).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use dps_match::{InstKey, Matcher, Rete, Strategy};
use dps_obs::{EventKind, Phase, Recorder};
use dps_rules::{instantiate_actions, RuleSet};
use dps_wm::WorkingMemory;

use crate::world::World;
use crate::{Firing, Trace};

/// Configuration of a single-thread run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Conflict-resolution strategy (the **select** phase).
    pub strategy: Strategy,
    /// Cycle cap — guards against non-terminating rule systems.
    pub max_cycles: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: Strategy::Lex,
            max_cycles: 100_000,
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A production fired.
    Fired,
    /// Conflict set empty (or fully refracted) — the paper's termination
    /// condition.
    Quiescent,
    /// A `halt` action executed.
    Halted,
}

/// Result of [`SingleThreadEngine::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Number of productions committed.
    pub commits: usize,
    /// Terminal outcome (`Quiescent`, `Halted`, or `Fired` when the cycle
    /// cap stopped the run mid-stream).
    pub outcome: StepOutcome,
    /// The commit sequence.
    pub trace: Trace,
}

/// The match–select–execute interpreter (OPS5-style), running one
/// production at a time on one thread.
///
/// Refraction: a fired instantiation never fires again while it persists
/// unchanged in the conflict set (standard OPS5 behaviour; without it any
/// rule whose RHS leaves its own match intact would loop forever).
#[derive(Clone, Debug)]
pub struct SingleThreadEngine<M: Matcher = Rete> {
    rules: RuleSet,
    world: World<M>,
    config: EngineConfig,
    refracted: HashSet<InstKey>,
    trace: Trace,
    halted: bool,
    /// Optional observability sink (phase latencies + per-rule table).
    obs: Option<Arc<Recorder>>,
}

impl SingleThreadEngine<Rete> {
    /// Creates an engine with the reference Rete matcher.
    pub fn new(rules: &RuleSet, wm: WorkingMemory, config: EngineConfig) -> Self {
        let matcher = Rete::new(rules, &wm);
        SingleThreadEngine::with_matcher(rules, wm, matcher, config)
    }
}

impl<M: Matcher> SingleThreadEngine<M> {
    /// Creates an engine with a caller-supplied matcher already loaded
    /// with `wm`.
    pub fn with_matcher(
        rules: &RuleSet,
        wm: WorkingMemory,
        matcher: M,
        config: EngineConfig,
    ) -> Self {
        SingleThreadEngine {
            rules: rules.clone(),
            world: World { wm, matcher },
            config,
            refracted: HashSet::new(),
            trace: Trace::default(),
            halted: false,
            obs: None,
        }
    }

    /// Attaches (or detaches) an observability recorder; each cycle then
    /// contributes `lhs_eval` / `rhs_act` / `commit` latency samples and
    /// a per-rule firing row. The single-thread engine is the latency
    /// baseline the parallel phases of Figures 4.1/4.2 are compared to.
    pub fn set_observer(&mut self, obs: Option<Arc<Recorder>>) {
        self.obs = obs;
    }

    /// The current working memory.
    pub fn wm(&self) -> &WorkingMemory {
        &self.world.wm
    }

    /// The matcher (for conflict-set inspection).
    pub fn matcher(&self) -> &M {
        &self.world.matcher
    }

    /// The commit sequence so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executes one production-system cycle.
    pub fn step(&mut self) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        // select
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        let Some(inst) = self
            .config
            .strategy
            .select(self.world.matcher.conflict_set(), &self.refracted)
        else {
            return StepOutcome::Quiescent;
        };
        let inst = inst.clone();
        let rule = self
            .rules
            .get(inst.rule)
            .expect("matcher only emits known rules");
        let t1 = match (&self.obs, t0) {
            (Some(obs), Some(t)) => {
                obs.phase(Phase::LhsEval, t.elapsed());
                Some(Instant::now())
            }
            _ => None,
        };
        // execute — the commit skeleton is the one shared by all engines.
        let (delta, halt) = instantiate_actions(rule, &inst.bindings, &inst.wmes)
            .expect("validated rule instantiates");
        let t2 = match (&self.obs, t1) {
            (Some(obs), Some(t)) => {
                obs.phase(Phase::RhsAct, t.elapsed());
                obs.rule_fired(rule.name.as_str());
                Some(Instant::now())
            }
            _ => None,
        };
        self.world.commit(
            &mut self.refracted,
            &mut self.trace,
            Firing {
                rule: inst.rule,
                rule_name: rule.name.clone(),
                key: inst.key(),
                delta,
                halt,
                external: false,
            },
        );
        if let (Some(obs), Some(t)) = (&self.obs, t2) {
            obs.phase(Phase::Commit, t.elapsed());
        }
        // Serial firings are degenerate transactions: emit the same
        // Begin/Commit/Fire triple the parallel engine produces (txn id
        // = 0-based firing index), so a serial run's history feeds the
        // same analysis pipeline and the commit-sequence checker sees
        // seq == txn == trace position.
        if let Some(obs) = &self.obs {
            let seq = (self.trace.len() - 1) as u64;
            let rule_id = obs.intern_rule(rule.name.as_str());
            obs.record(seq, EventKind::Begin);
            obs.record(seq, EventKind::Commit);
            obs.record(seq, EventKind::Fire { rule: rule_id, seq });
        }
        if halt {
            self.halted = true;
            return StepOutcome::Halted;
        }
        // Keep the refraction set from growing without bound: drop keys
        // that are no longer in the conflict set (they can never match
        // again — timestamps are fresh on re-assertion).
        self.world.gc_refracted(&mut self.refracted, 1024);
        StepOutcome::Fired
    }

    /// Runs until quiescence, `halt`, or the cycle cap.
    pub fn run(&mut self) -> RunReport {
        let mut outcome = StepOutcome::Fired;
        for _ in 0..self.config.max_cycles {
            outcome = self.step();
            if outcome != StepOutcome::Fired {
                break;
            }
        }
        RunReport {
            commits: self.trace.len(),
            outcome,
            trace: self.trace.clone(),
        }
    }

    /// Consumes the engine, returning the final working memory and trace.
    pub fn into_parts(self) -> (WorkingMemory, Trace) {
        (self.world.wm, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::validate_trace;
    use dps_wm::{Value, WmeData};

    fn counter_system(n: i64) -> (RuleSet, WorkingMemory) {
        let rules =
            RuleSet::parse("(p count-down (counter ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))")
                .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("counter").with("n", n));
        (rules, wm)
    }

    #[test]
    fn counts_down_to_zero_and_quiesces() {
        let (rules, wm) = counter_system(5);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 5);
        assert_eq!(r.outcome, StepOutcome::Quiescent);
        let c = e.wm().class_iter("counter").next().unwrap();
        assert_eq!(c.get("n"), Some(&Value::Int(0)));
    }

    #[test]
    fn trace_is_semantically_valid() {
        let (rules, wm) = counter_system(4);
        let initial = wm.clone();
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        assert!(validate_trace(&rules, &initial, &r.trace).is_ok());
    }

    #[test]
    fn halt_stops_immediately() {
        let rules = RuleSet::parse(
            "(p stop (salience 10) (go) --> (halt))
             (p loop-forever (go ^n <n>) --> (modify 1 ^n (+ <n> 1)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go").with("n", 0i64));
        let mut e = SingleThreadEngine::new(
            &rules,
            wm,
            EngineConfig {
                strategy: Strategy::Salience,
                max_cycles: 100,
            },
        );
        let r = e.run();
        assert_eq!(r.commits, 1);
        assert_eq!(r.outcome, StepOutcome::Halted);
        assert!(r.trace.firings[0].halt);
        // Further steps stay halted.
        assert_eq!(e.step(), StepOutcome::Halted);
    }

    #[test]
    fn refraction_prevents_refiring_make_only_rules() {
        // Without refraction this rule would fire forever on the same
        // match (its RHS never touches the matched WME).
        let rules = RuleSet::parse("(p log-once (go) --> (make log))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go"));
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 1);
        assert_eq!(r.outcome, StepOutcome::Quiescent);
        assert_eq!(e.wm().class_iter("log").count(), 1);
    }

    #[test]
    fn cycle_cap_stops_livelock() {
        let rules = RuleSet::parse("(p spin (go ^n <n>) --> (modify 1 ^n (+ <n> 1)))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go").with("n", 0i64));
        let mut e = SingleThreadEngine::new(
            &rules,
            wm,
            EngineConfig {
                strategy: Strategy::Lex,
                max_cycles: 7,
            },
        );
        let r = e.run();
        assert_eq!(r.commits, 7);
        assert_eq!(r.outcome, StepOutcome::Fired);
    }

    #[test]
    fn strategies_explore_different_sequences() {
        let rules = RuleSet::parse(
            "(p a (x) --> (remove 1))
             (p b (y) --> (remove 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("x"));
        wm.insert(WmeData::new("y"));
        let run = |strategy: Strategy| {
            let mut e = SingleThreadEngine::new(
                &rules,
                wm.clone(),
                EngineConfig {
                    strategy,
                    max_cycles: 10,
                },
            );
            e.run().trace.names().join(" ")
        };
        assert_eq!(run(Strategy::Fifo), "a b");
        assert_eq!(run(Strategy::Lex), "b a", "y is more recent");
        // Every strategy's trace has both rules.
        for s in [Strategy::Mea, Strategy::Salience, Strategy::Random(3)] {
            let t = run(s);
            assert!(t.contains('a') && t.contains('b'));
        }
    }

    #[test]
    fn step_on_quiescent_engine_is_stable() {
        let (rules, wm) = counter_system(0);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        assert_eq!(e.step(), StepOutcome::Quiescent);
        assert_eq!(e.step(), StepOutcome::Quiescent);
        assert!(e.trace().is_empty());
    }

    #[test]
    fn into_parts_returns_final_state() {
        let (rules, wm) = counter_system(2);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        e.run();
        let (wm, trace) = e.into_parts();
        assert_eq!(trace.len(), 2);
        assert_eq!(wm.class_iter("counter").count(), 1);
    }
}
