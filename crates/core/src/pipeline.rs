//! The sharded match pipeline: Rete off the world mutex.
//!
//! The dynamic engine's former `Mutex<World>` made every claim scan and
//! every commit serialise on one matcher. This module splits that state
//! into the paper's natural grain — the rule partition's class-connected
//! components — so the match phase runs as a *pipeline* behind the
//! commit critical section:
//!
//! * **[`WmBase`]** (`Mutex`) — the authoritative working memory plus
//!   the commit sequence counter. `commit` now only applies the WM
//!   delta and *publishes* the resulting change batch; it no longer
//!   drives any matcher inline.
//! * **Delta log** — a bounded queue of sequence-numbered change
//!   batches (`Arc`'d, so shards share one copy), plus a `watermark`
//!   atomic: the highest published sequence. The watermark is stored
//!   while the base mutex is held, so `watermark()` read after locking
//!   the base is exact.
//! * **[`MatchShard`]s** — one per plan shard: a [`Rete`] over that
//!   shard's rules (speaking global rule ids via
//!   [`Rete::with_rules`]), the shard's **refraction slice**, and an
//!   `applied` cursor. A published batch fans out only to shards whose
//!   alpha classes intersect it ([`ShardPlan::affected`]); the rest
//!   advance their cursor for free with one CAS.
//! * **Work stealing** — any worker holding a shard lock can
//!   [`MatchPipeline::catch_up`] that shard from the log; idle claim
//!   scans do exactly that, so match work overlaps RHS execution
//!   instead of queueing behind the committer.
//!
//! ### Why a stale shard view can never commit
//!
//! Claim validation reads the watermark `w` **under the base mutex**
//! (every publish completes before the base is released), catches the
//! claimed rule's shard up to `w`, and checks membership. Any commit
//! that could invalidate the claim after that point necessarily
//! conflicts with the claim's condition locks — a tuple `Wa` against
//! our tuple `Rc`, or a relation `Wa` (creates, and the
//! modify/remove relation escalation) against our relation `Rc` for
//! negated classes — so the lock manager dooms us before or at our own
//! `commit`. The shard epoch therefore only needs to be exact up to
//! `w`; later invalidations are the lock manager's problem, exactly as
//! in the monolithic design. See DESIGN.md §12.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::time::Instant;

use dps_match::{InstKey, Matcher, Rete, ShardPlan};
use dps_obs::{FanoutStats, Phase, Recorder};
use dps_rules::RuleSet;
use dps_wm::{Change, VersionedStore, WorkingMemory};

/// Log entries older than the slowest shard are pruned opportunistically;
/// past this length the committer force-drains lagging shards so an
/// unlucky (never-affected, never-scanned) shard cannot pin the log.
const LOG_DRAIN_THRESHOLD: usize = 64;

/// Soft per-element bound on retained MVCC versions (see
/// [`VersionedStore::new`]); versions above the GC floor are never
/// capped, so pinned snapshots stay readable.
const VERSION_CHAIN_CAP: usize = 16;

/// Version-store GC cadence, in commits. GC walks every chain, so it is
/// amortised rather than run per publish.
const VERSION_GC_INTERVAL: u64 = 64;

/// The commit critical section's state: authoritative WM + sequencing.
#[derive(Debug)]
pub(crate) struct WmBase {
    /// The authoritative working memory.
    pub wm: WorkingMemory,
    /// Sequence number the *next* commit will take (watermark + 1).
    pub next_seq: u64,
}

/// One published commit: its sequence number, its WM change batch and
/// the shards whose alpha classes intersect it.
#[derive(Debug)]
struct LogEntry {
    seq: u64,
    changes: Arc<Vec<Change>>,
    affected: Vec<usize>,
}

/// A shard's lock-protected state: its Rete and its refraction slice.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// The shard's network; its conflict set is the authoritative slice
    /// for the shard's rules.
    pub rete: Rete,
    /// Refraction for this shard's rules (fired or eval-error keys).
    pub refracted: HashSet<InstKey>,
    /// Next refraction-GC trigger (doubles after each sweep).
    gc_at: usize,
}

impl ShardState {
    /// Bounds the refraction slice: past the trigger, drop keys no
    /// longer in the conflict set (timestamps are fresh on
    /// re-assertion, so a dead key can never match again). The trigger
    /// doubles with the surviving size, amortising the sweep.
    pub fn maybe_gc(&mut self) {
        if self.refracted.len() >= self.gc_at {
            let cs = self.rete.conflict_set();
            self.refracted.retain(|k| cs.contains(k));
            self.gc_at = (self.refracted.len() * 2).max(1024);
        }
    }
}

/// One match shard: lock-protected state plus its lock-free log cursor.
#[derive(Debug)]
pub(crate) struct MatchShard {
    state: Mutex<ShardState>,
    /// Highest log sequence this shard has incorporated. Only advances
    /// (`fetch_max` / forward CAS); `applied ≤ watermark` always.
    applied: AtomicU64,
}

/// Fan-out tallies (relaxed atomics; maintained whether or not a
/// [`Recorder`] is attached, so reports are free).
#[derive(Debug, Default)]
struct PipelineStats {
    batches: AtomicU64,
    applies: AtomicU64,
    free_advances: AtomicU64,
    steals: AtomicU64,
    /// Live-telemetry mirrors, maintained at the mutation sites (under
    /// the respective mutexes, so exact) — sampling probes read these
    /// instead of taking the log / pins / versions locks.
    log_len: AtomicU64,
    version_records: AtomicU64,
    gc_floor: AtomicU64,
    pin_count: AtomicU64,
    oldest_pin: AtomicU64,
}

/// The sharded match pipeline. See the module docs for the protocol;
/// the lock order is **base → shard → log** (the engine's ledger and
/// trace mutexes sort after `shard` and are never held while taking a
/// shard lock).
#[derive(Debug)]
pub(crate) struct MatchPipeline {
    /// The commit critical section.
    pub base: Mutex<WmBase>,
    plan: ShardPlan,
    shards: Vec<MatchShard>,
    log: Mutex<VecDeque<LogEntry>>,
    watermark: AtomicU64,
    stats: PipelineStats,
    /// The MVCC version chains, mirroring every published batch. The
    /// delta log above *is* the version log in transit; this store is
    /// its queryable, bounded materialisation (`as_of` reads for
    /// snapshot claim validation and commit-time self-validation).
    /// Writers only run under the base mutex (lock order: base →
    /// versions), so a write lock is never contended by another writer.
    versions: RwLock<VersionedStore>,
    /// Active read-snapshot pins: snapshot seq → pin count. The oldest
    /// pinned snapshot floors version GC. Lock order: base → pins.
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl MatchPipeline {
    /// Partitions `rules` onto at most `shards` shards (clamped to the
    /// class-connected component count), loads `wm` into every shard
    /// network, and starts the sequence space at `base_seq` — the last
    /// committed sequence number, as recovered from a durable log (`0`
    /// = a fresh system). `wm` must be the state *as of* commit
    /// `base_seq`; the watermark and every shard cursor start there,
    /// and the next commit takes `base_seq + 1`, so a resumed engine's
    /// WAL records continue the same sequence the crashed incarnation
    /// was writing.
    pub fn new_at(rules: &RuleSet, wm: WorkingMemory, shards: usize, base_seq: u64) -> Self {
        let plan = ShardPlan::new(rules, shards);
        let shard_states = plan
            .build(rules, &wm)
            .into_iter()
            .map(|rete| MatchShard {
                state: Mutex::new(ShardState {
                    rete,
                    refracted: HashSet::new(),
                    gc_at: 1024,
                }),
                applied: AtomicU64::new(base_seq),
            })
            .collect();
        let mut versions = VersionedStore::new(VERSION_CHAIN_CAP);
        versions.seed(&wm);
        MatchPipeline {
            base: Mutex::new(WmBase { wm, next_seq: base_seq + 1 }),
            plan,
            shards: shard_states,
            log: Mutex::new(VecDeque::new()),
            watermark: AtomicU64::new(base_seq),
            stats: PipelineStats::default(),
            versions: RwLock::new(versions),
            pins: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shard layout.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Locks one shard's state.
    pub fn shard_state(&self, s: usize) -> MutexGuard<'_, ShardState> {
        self.shards[s].state.lock().unwrap()
    }

    /// Shard `s`'s log cursor. Stable while the caller holds both the
    /// base mutex and the shard's state lock (applies need the state
    /// lock; free advances happen under the base mutex).
    pub fn applied(&self, s: usize) -> u64 {
        self.shards[s].applied.load(Ordering::Acquire)
    }

    /// The highest published commit sequence. Reading it *after*
    /// acquiring the base mutex yields an exact value (publish happens
    /// under the base mutex); elsewhere it is a safe lower bound.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Publishes commit `seq`'s change batch. **Must be called with the
    /// base mutex held** and `seq == base.next_seq - 1` already bumped
    /// by the caller. Appends the log entry, advances the watermark,
    /// and free-advances every unaffected, fully-caught-up shard.
    /// Returns the affected shard list for the caller's fan-out.
    pub fn publish(&self, seq: u64, changes: Vec<Change>, obs: Option<&Recorder>) -> Vec<usize> {
        let affected = self.plan.affected(&changes);
        {
            // Mirror the batch into the version chains (we hold the
            // base mutex, so records arrive in sequence order), and
            // amortise watermark-driven GC: prune everything below the
            // oldest active snapshot pin (or the watermark when no
            // snapshot is pinned).
            let mut versions = self.versions.write().unwrap();
            versions.record(seq, &changes);
            if seq.is_multiple_of(VERSION_GC_INTERVAL) {
                let floor = self.oldest_pin().unwrap_or(seq).min(seq);
                versions.gc(floor);
                // Amortised telemetry mirrors: chain-length totals are
                // O(chains) to compute, so refresh them on the GC
                // cadence rather than per publish.
                self.stats.gc_floor.store(floor, Ordering::Relaxed);
                self.stats
                    .version_records
                    .store(versions.stats().versions as u64, Ordering::Relaxed);
            }
        }
        {
            let mut log = self.log.lock().unwrap();
            log.push_back(LogEntry {
                seq,
                changes: Arc::new(changes),
                affected: affected.clone(),
            });
            self.stats.log_len.store(log.len() as u64, Ordering::Relaxed);
        }
        // Watermark before free advances: `applied ≤ watermark` stays
        // invariant (a cursor only reaches `seq` once `watermark` has).
        self.watermark.store(seq, Ordering::Release);
        let mut free = 0u64;
        for (s, shard) in self.shards.iter().enumerate() {
            if affected.binary_search(&s).is_err()
                && shard
                    .applied
                    .compare_exchange(seq - 1, seq, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                free += 1;
            }
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.free_advances.fetch_add(free, Ordering::Relaxed);
        if let Some(obs) = obs {
            obs.fanout_batch(free);
        }
        affected
    }

    /// Brings shard `s` (whose state the caller holds) up to at least
    /// `target`. `stolen` marks applies done outside the committing
    /// worker's own fan-out (claim-scan work stealing), for the fan-out
    /// tallies.
    pub fn catch_up(
        &self,
        s: usize,
        target: u64,
        state: &mut ShardState,
        stolen: bool,
        obs: Option<&Recorder>,
    ) {
        loop {
            let cur = self.shards[s].applied.load(Ordering::Acquire);
            if cur >= target {
                return;
            }
            // Snapshot the needed entries, then drop the log lock before
            // running the network (never hold the log across an apply).
            let batch: Vec<(u64, Option<Arc<Vec<Change>>>)> = {
                let log = self.log.lock().unwrap();
                log.iter()
                    .filter(|e| e.seq > cur && e.seq <= target)
                    .map(|e| {
                        let hit = e.affected.binary_search(&s).is_ok();
                        (e.seq, hit.then(|| Arc::clone(&e.changes)))
                    })
                    .collect()
            };
            if batch.is_empty() {
                // Entries ≤ `cur` were pruned only after every shard
                // (including this one) applied them, so an empty batch
                // means a concurrent `catch_up` raced us past `target`.
                debug_assert!(self.shards[s].applied.load(Ordering::Acquire) >= target);
                return;
            }
            debug_assert_eq!(batch[0].0, cur + 1, "delta log must be gapless");
            for (seq, changes) in batch {
                if let Some(changes) = changes {
                    let t0 = obs.map(|_| Instant::now());
                    state.rete.apply(&changes);
                    self.stats.applies.fetch_add(1, Ordering::Relaxed);
                    if stolen {
                        self.stats.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    if let (Some(obs), Some(t0)) = (obs, t0) {
                        obs.phase(Phase::MatchApply, t0.elapsed());
                        obs.fanout_apply(stolen);
                    }
                }
                self.shards[s].applied.fetch_max(seq, Ordering::AcqRel);
            }
        }
    }

    /// The committing worker's fan-out: push `seq` to every affected
    /// shard, then prune the log. When the log has grown past
    /// [`LOG_DRAIN_THRESHOLD`] the committer also drains *lagging*
    /// shards (affected or not), bounding the log against shards no
    /// batch ever routes to.
    pub fn fan_out(&self, affected: &[usize], seq: u64, obs: Option<&Recorder>) {
        for &s in affected {
            if self.shards[s].applied.load(Ordering::Acquire) >= seq {
                continue;
            }
            let mut state = self.shard_state(s);
            self.catch_up(s, seq, &mut state, false, obs);
        }
        let over = self.log.lock().unwrap().len() > LOG_DRAIN_THRESHOLD;
        if over {
            for s in 0..self.shards.len() {
                if self.shards[s].applied.load(Ordering::Acquire) < seq {
                    let mut state = self.shard_state(s);
                    self.catch_up(s, seq, &mut state, false, obs);
                }
            }
        }
        self.prune();
    }

    /// Drops log entries every shard has incorporated.
    fn prune(&self) {
        let min = self
            .shards
            .iter()
            .map(|s| s.applied.load(Ordering::Acquire))
            .min()
            .unwrap_or(0);
        let mut log = self.log.lock().unwrap();
        while log.front().is_some_and(|e| e.seq <= min) {
            log.pop_front();
        }
        self.stats.log_len.store(log.len() as u64, Ordering::Relaxed);
    }

    /// Read access to the MVCC version chains.
    pub fn versions(&self) -> RwLockReadGuard<'_, VersionedStore> {
        self.versions.read().unwrap()
    }

    /// Registers a read-snapshot pin at `snap`, flooring version GC.
    /// Pair with [`MatchPipeline::unpin_snapshot`].
    pub fn pin_snapshot(&self, snap: u64) {
        let mut pins = self.pins.lock().unwrap();
        *pins.entry(snap).or_insert(0) += 1;
        self.mirror_pins(&pins);
    }

    /// Releases one pin at `snap`.
    pub fn unpin_snapshot(&self, snap: u64) {
        let mut pins = self.pins.lock().unwrap();
        if let Some(n) = pins.get_mut(&snap) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&snap);
            }
        } else {
            debug_assert!(false, "unpin without a matching pin at {snap}");
        }
        self.mirror_pins(&pins);
    }

    /// Refreshes the pin telemetry mirrors (call with the pins mutex
    /// held, so the two stores are mutually consistent).
    fn mirror_pins(&self, pins: &BTreeMap<u64, usize>) {
        let count: usize = pins.values().sum();
        self.stats.pin_count.store(count as u64, Ordering::Relaxed);
        self.stats
            .oldest_pin
            .store(pins.keys().next().copied().unwrap_or(0), Ordering::Relaxed);
    }

    /// The oldest active snapshot pin, if any (the version-GC floor).
    pub fn oldest_pin(&self) -> Option<u64> {
        self.pins.lock().unwrap().keys().next().copied()
    }

    /// Delta-log depth (live telemetry gauge; a lock-free mirror of the
    /// log length, maintained under the log mutex at publish/prune).
    pub fn log_depth(&self) -> u64 {
        self.stats.log_len.load(Ordering::Relaxed)
    }

    /// How far the slowest shard's applied cursor trails the watermark
    /// (live telemetry gauge; pure atomic reads).
    pub fn max_cursor_lag(&self) -> u64 {
        let w = self.watermark.load(Ordering::Acquire);
        let min = self
            .shards
            .iter()
            .map(|s| s.applied.load(Ordering::Acquire))
            .min()
            .unwrap_or(w);
        w.saturating_sub(min)
    }

    /// Retained MVCC version records (live telemetry gauge; refreshed
    /// on the version-GC cadence, so it trails by at most
    /// [`VERSION_GC_INTERVAL`] commits).
    pub fn version_records(&self) -> u64 {
        self.stats.version_records.load(Ordering::Relaxed)
    }

    /// How far the version-GC floor trails the watermark (live
    /// telemetry gauge; the floor mirror is refreshed at each GC).
    pub fn gc_floor_lag(&self) -> u64 {
        let w = self.watermark.load(Ordering::Acquire);
        w.saturating_sub(self.stats.gc_floor.load(Ordering::Relaxed))
    }

    /// Active snapshot pins (live telemetry gauge).
    pub fn pin_count(&self) -> u64 {
        self.stats.pin_count.load(Ordering::Relaxed)
    }

    /// How far the oldest pinned snapshot trails the watermark (live
    /// telemetry gauge; 0 when nothing is pinned).
    pub fn oldest_pin_lag(&self) -> u64 {
        if self.stats.pin_count.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let w = self.watermark.load(Ordering::Acquire);
        w.saturating_sub(self.stats.oldest_pin.load(Ordering::Relaxed))
    }

    /// Point-in-time fan-out tallies.
    pub fn fanout_stats(&self) -> FanoutStats {
        FanoutStats {
            batches: self.stats.batches.load(Ordering::Relaxed),
            applies: self.stats.applies.load(Ordering::Relaxed),
            free_advances: self.stats.free_advances.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            shards: self.shards.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_wm::WmeData;

    const CORPUS: &str = r#"
        (p fam1 (a ^k <x>) (b ^k <x>) --> (remove 1))
        (p fam2 (c ^k <x>) --> (make d ^k <x>))
        (p fam3 (e ^k <x>) --> (remove 1))
    "#;

    fn pipeline(shards: usize) -> (RuleSet, MatchPipeline) {
        let rules = RuleSet::parse(CORPUS).unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("a").with("k", 1i64));
        wm.insert(WmeData::new("b").with("k", 1i64));
        wm.insert(WmeData::new("e").with("k", 2i64));
        let p = MatchPipeline::new_at(&rules, wm, shards, 0);
        (rules, p)
    }

    /// Drives one commit through the base/publish/fan-out protocol.
    fn commit_changes(p: &MatchPipeline, data: WmeData) -> (u64, Vec<usize>) {
        let mut base = p.base.lock().unwrap();
        let w = base.wm.insert_full(data);
        let seq = base.next_seq;
        base.next_seq += 1;
        let affected = p.publish(seq, vec![Change::Added(w)], None);
        drop(base);
        p.fan_out(&affected, seq, None);
        (seq, affected)
    }

    #[test]
    fn publish_free_advances_unaffected_shards() {
        let (_, p) = pipeline(3);
        assert_eq!(p.shards(), 3);
        let (seq, affected) = commit_changes(&p, WmeData::new("e").with("k", 9i64));
        assert_eq!(affected.len(), 1, "only fam3's shard fans in");
        assert_eq!(p.watermark(), seq);
        for s in 0..p.shards() {
            assert_eq!(p.shards[s].applied.load(Ordering::Acquire), seq);
        }
        let stats = p.fanout_stats();
        assert_eq!((stats.batches, stats.applies, stats.free_advances), (1, 1, 2));
        assert_eq!(p.log.lock().unwrap().len(), 0, "fully-applied entries pruned");
    }

    #[test]
    fn lagging_shard_catches_up_from_the_log() {
        let (rules, p) = pipeline(3);
        // Publish without fanning out: shards lag behind the watermark.
        let mut base = p.base.lock().unwrap();
        let w1 = base.wm.insert_full(WmeData::new("e").with("k", 5i64));
        let seq1 = base.next_seq;
        base.next_seq += 1;
        p.publish(seq1, vec![Change::Added(w1)], None);
        let w2 = base.wm.insert_full(WmeData::new("e").with("k", 6i64));
        let seq2 = base.next_seq;
        base.next_seq += 1;
        p.publish(seq2, vec![Change::Added(w2)], None);
        drop(base);
        let s = p.plan().shard_of(rules.id_of("fam3").unwrap());
        assert!(p.shards[s].applied.load(Ordering::Acquire) < seq2);
        let before = {
            let st = p.shard_state(s);
            st.rete.conflict_set().len()
        };
        let mut st = p.shard_state(s);
        p.catch_up(s, seq2, &mut st, true, None);
        assert_eq!(st.rete.conflict_set().len(), before + 2);
        drop(st);
        assert_eq!(p.shards[s].applied.load(Ordering::Acquire), seq2);
        assert_eq!(p.fanout_stats().steals, 2);
    }

    #[test]
    fn refraction_gc_keeps_live_keys() {
        let (_, p) = pipeline(1);
        let mut st = p.shard_state(0);
        st.gc_at = 1; // force the sweep
        let live = st.rete.conflict_set().iter().next().unwrap().key();
        let dead = InstKey {
            rule: live.rule,
            wmes: vec![],
        };
        st.refracted.insert(live.clone());
        st.refracted.insert(dead.clone());
        st.maybe_gc();
        assert!(st.refracted.contains(&live));
        assert!(!st.refracted.contains(&dead));
        assert!(st.gc_at >= 1024, "trigger re-arms");
    }
}
