//! Execution semantics: the execution graph, `ES_single` enumeration, and
//! the semantic-consistency check of Definitions 3.1–3.2.
//!
//! * For **abstract** systems (§3.3) the system state *is* the conflict
//!   set, so [`ExecutionGraph`] is exact: its root-originating paths are
//!   precisely `ES_single` (Figure 3.2).
//! * For **concrete** rule systems, checking `ES_M ⊆ ES_single` for a
//!   recorded parallel commit sequence does not require materialising the
//!   (unbounded) graph: [`validate_trace`] *replays* the trace as a
//!   single-thread execution — at every step the committed instantiation
//!   must be in the replayed conflict set, which is exactly membership of
//!   the corresponding root-originating path.

use std::collections::{BTreeMap, HashMap};

use dps_match::{Matcher, Rete};
use dps_rules::RuleSet;
use dps_wm::WorkingMemory;

use crate::abstract_model::{fmt_seq, AbstractSystem, ConflictState, PId};
use crate::Trace;

/// The single-thread execution graph of an abstract system (Figure 3.1 /
/// 3.2): nodes are reachable conflict-set states, edges are firings.
///
/// States are interned; since the abstract transition is a pure function
/// of the conflict set, convergent paths share nodes and the graph is
/// finite whenever the reachable state space is (a cap guards against
/// livelock-capable systems whose add sets regenerate productions).
#[derive(Clone, Debug)]
pub struct ExecutionGraph {
    states: Vec<ConflictState>,
    index: HashMap<ConflictState, usize>,
    /// Outgoing edges: `edges[s]` maps fired production → successor state.
    edges: Vec<BTreeMap<PId, usize>>,
    root: usize,
    truncated: bool,
}

impl ExecutionGraph {
    /// Builds the graph by exhaustive expansion from the initial state,
    /// visiting at most `max_states` distinct states.
    pub fn build(sys: &AbstractSystem, max_states: usize) -> Self {
        let mut g = ExecutionGraph {
            states: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
            root: 0,
            truncated: false,
        };
        g.root = g.intern(sys.initial.clone());
        let mut frontier = vec![g.root];
        while let Some(s) = frontier.pop() {
            let state = g.states[s].clone();
            for &p in state.iter() {
                let next = sys.fire(&state, p).expect("p is active");
                if let Some(&existing) = g.index.get(&next) {
                    g.edges[s].insert(p, existing);
                } else if g.states.len() < max_states {
                    let id = g.intern(next);
                    g.edges[s].insert(p, id);
                    frontier.push(id);
                } else {
                    g.truncated = true;
                }
            }
        }
        g
    }

    fn intern(&mut self, state: ConflictState) -> usize {
        if let Some(&id) = self.index.get(&state) {
            return id;
        }
        let id = self.states.len();
        self.index.insert(state.clone(), id);
        self.states.push(state);
        self.edges.push(BTreeMap::new());
        id
    }

    /// `true` when the state cap stopped the expansion (results are then
    /// conservative: `admits` may reject valid deep sequences).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of distinct reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The semantic-consistency membership test of Definition 3.2: is
    /// `seq` a root-originating path (or prefix of one)?
    ///
    /// Since every edge out of a node corresponds to an *active*
    /// production, any sequence of legal firings is automatically a
    /// prefix of some maximal path, so checking edge-by-edge suffices.
    pub fn admits(&self, seq: &[PId]) -> bool {
        let mut s = self.root;
        for &p in seq {
            match self.edges[s].get(&p) {
                Some(&next) => s = next,
                None => return false,
            }
        }
        true
    }

    /// Enumerates `ES_single`'s **maximal** sequences (paths ending in a
    /// state with an empty conflict set or no outgoing edges), up to
    /// `cap` sequences and `max_len` length. Returns the sequences in
    /// lexicographic firing order.
    pub fn maximal_sequences(&self, cap: usize, max_len: usize) -> Vec<Vec<PId>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.dfs(self.root, &mut path, &mut out, cap, max_len);
        out
    }

    fn dfs(
        &self,
        s: usize,
        path: &mut Vec<PId>,
        out: &mut Vec<Vec<PId>>,
        cap: usize,
        max_len: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if self.edges[s].is_empty() {
            out.push(path.clone());
            return;
        }
        if path.len() >= max_len {
            out.push(path.clone()); // truncated path counts as maximal-so-far
            return;
        }
        for (&p, &next) in &self.edges[s] {
            path.push(p);
            self.dfs(next, path, out, cap, max_len);
            path.pop();
        }
    }

    /// Pretty-prints the graph as `state --p--> state` lines (Figure 3.2
    /// in text form).
    pub fn render(&self) -> String {
        use crate::abstract_model::fmt_state;
        let mut lines = Vec::new();
        for (s, edges) in self.edges.iter().enumerate() {
            for (p, next) in edges {
                lines.push(format!(
                    "{} --{}--> {}",
                    fmt_state(&self.states[s]),
                    p,
                    fmt_state(&self.states[*next])
                ));
            }
        }
        lines.join("\n")
    }
}

/// A violation of the semantic-consistency condition found by
/// [`validate_trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Index of the offending commit within the trace.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "semantic violation at commit #{}: {}",
            self.at, self.message
        )
    }
}

/// Checks Definition 3.2 for a concrete engine run: replays `trace` from
/// `initial` as a single-thread execution and verifies that every
/// committed instantiation was selectable (present in the replayed
/// conflict set) at its commit point, and that its recorded effects apply
/// cleanly.
///
/// This is precisely "the commit sequence ... is identical to some
/// single-thread execution of the same sequence" from the paper's
/// Theorem 2 induction step, checked mechanically.
pub fn validate_trace(
    rules: &RuleSet,
    initial: &WorkingMemory,
    trace: &Trace,
) -> Result<(), Violation> {
    let mut wm = initial.clone();
    let mut rete = Rete::new(rules, &wm);
    for (i, firing) in trace.firings.iter().enumerate() {
        if firing.external {
            // External session commits carry no instantiation — the
            // single-thread equivalent is "a client changed working
            // memory here". Replay the delta and keep the matcher in
            // sync; selectability does not apply.
            match wm.apply(&firing.delta) {
                Ok(changes) => rete.apply(&changes),
                Err(e) => {
                    return Err(Violation {
                        at: i,
                        message: format!("external delta no longer applies: {e}"),
                    })
                }
            }
            continue;
        }
        let present = rete.conflict_set().contains(&firing.key);
        if !present {
            return Err(Violation {
                at: i,
                message: format!(
                    "instantiation {:?} of rule {} is not in the single-thread conflict set",
                    firing.key, firing.rule_name
                ),
            });
        }
        match wm.apply(&firing.delta) {
            Ok(changes) => rete.apply(&changes),
            Err(e) => {
                return Err(Violation {
                    at: i,
                    message: format!("recorded delta no longer applies: {e}"),
                })
            }
        }
    }
    Ok(())
}

/// Exhaustively enumerates the single-thread execution sequences of a
/// *concrete* rule system, up to `max_depth` firings and `max_paths`
/// sequences — Definition 3.1 for real working memories.
///
/// Each state (working memory + matcher) is cloned at every branch, so
/// this is exponential and meant for small systems (tests, examples,
/// and exhaustive verification of toy workloads). Returned sequences are
/// the *maximal* ones (quiescent leaf or depth-capped), each as the list
/// of fired rule names.
pub fn enumerate_concrete(
    rules: &RuleSet,
    initial: &WorkingMemory,
    max_depth: usize,
    max_paths: usize,
) -> Vec<Vec<String>> {
    use dps_rules::instantiate_actions;

    fn go(
        rules: &RuleSet,
        wm: &WorkingMemory,
        rete: &Rete,
        path: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
        depth_left: usize,
        max_paths: usize,
    ) {
        if out.len() >= max_paths {
            return;
        }
        let insts: Vec<_> = rete.conflict_set().iter().cloned().collect();
        if insts.is_empty() || depth_left == 0 {
            out.push(path.clone());
            return;
        }
        for inst in insts {
            let rule = rules.get(inst.rule).expect("known rule");
            let Ok((delta, halt)) = instantiate_actions(rule, &inst.bindings, &inst.wmes) else {
                continue;
            };
            let mut wm2 = wm.clone();
            let mut rete2 = rete.clone();
            let changes = wm2.apply(&delta).expect("matched WMEs are live");
            rete2.apply(&changes);
            path.push(rule.name.to_string());
            if halt {
                if out.len() < max_paths {
                    out.push(path.clone());
                }
            } else {
                go(rules, &wm2, &rete2, path, out, depth_left - 1, max_paths);
            }
            path.pop();
        }
    }

    let rete = Rete::new(rules, initial);
    let mut out = Vec::new();
    let mut path = Vec::new();
    go(
        rules, initial, &rete, &mut path, &mut out, max_depth, max_paths,
    );
    out
}

/// Validates an abstract commit sequence against an abstract system
/// (used by the §5 simulator's consistency self-checks).
pub fn validate_abstract_sequence(sys: &AbstractSystem, seq: &[PId]) -> Result<(), Violation> {
    let mut state = sys.initial.clone();
    for (i, &p) in seq.iter().enumerate() {
        match sys.fire(&state, p) {
            Some(next) => state = next,
            None => {
                return Err(Violation {
                    at: i,
                    message: format!(
                        "{p} fired while not in conflict set (sequence {})",
                        fmt_seq(seq)
                    ),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_model::{paper33_example, AbstractProduction};

    #[test]
    fn paper33_has_exactly_nine_maximal_sequences() {
        let sys = paper33_example();
        let g = ExecutionGraph::build(&sys, 10_000);
        assert!(!g.truncated());
        let seqs = g.maximal_sequences(1000, 100);
        let rendered: Vec<String> = seqs.iter().map(|s| fmt_seq(s)).collect();
        assert_eq!(
            rendered,
            vec![
                "p1 p4 p5",
                "p1 p5",
                "p2 p3 p5",
                "p2 p5",
                "p3 p1 p4 p5",
                "p3 p1 p5",
                "p3 p5 p1 p4",
                "p5 p1 p4",
                "p5 p2",
            ],
            "the reconstructed §3.3 example yields nine maximal sequences"
        );
    }

    #[test]
    fn admits_accepts_paths_and_prefixes() {
        let sys = paper33_example();
        let g = ExecutionGraph::build(&sys, 10_000);
        assert!(g.admits(&[])); // the initial state itself
        assert!(g.admits(&[PId(0)]));
        assert!(g.admits(&[PId(0), PId(3), PId(4)]));
        assert!(g.admits(&[PId(2), PId(4), PId(0), PId(3)]));
    }

    #[test]
    fn admits_rejects_invalid_sequences() {
        let sys = paper33_example();
        let g = ExecutionGraph::build(&sys, 10_000);
        assert!(!g.admits(&[PId(3)]), "P4 not initially active");
        assert!(!g.admits(&[PId(0), PId(1)]), "P1 deletes P2");
        assert!(
            !g.admits(&[PId(0), PId(3), PId(4), PId(0)]),
            "nothing after a maximal path"
        );
    }

    #[test]
    fn convergent_states_are_shared() {
        let sys = paper33_example();
        let g = ExecutionGraph::build(&sys, 10_000);
        // Far fewer states than path prefixes.
        assert!(
            g.state_count() < 20,
            "state interning collapses the tree: {}",
            g.state_count()
        );
    }

    #[test]
    fn livelock_system_truncates_gracefully() {
        let sys = AbstractSystem::new(
            vec![
                AbstractProduction::new([1], [], 1),
                AbstractProduction::new([0], [], 1),
            ],
            [0],
        );
        // Reachable states: {p1},{p2},{p1,p2}... finite! Use a self-add.
        let g = ExecutionGraph::build(&sys, 10_000);
        assert!(!g.truncated());
        // p1 p2 p1 p2 ... is admitted arbitrarily deep (cyclic graph).
        assert!(g.admits(&[PId(0), PId(1), PId(0), PId(1), PId(0)]));
    }

    #[test]
    fn state_cap_marks_truncation() {
        // A chain generator: each production enables the next id via adds;
        // cap below reachable count → truncated.
        let n = 20;
        let prods: Vec<AbstractProduction> = (0..n)
            .map(|i| AbstractProduction::new(if i + 1 < n { vec![i + 1] } else { vec![] }, [], 1))
            .collect();
        let sys = AbstractSystem::new(prods, [0]);
        let g = ExecutionGraph::build(&sys, 3);
        assert!(g.truncated());
    }

    #[test]
    fn render_mentions_edges() {
        let sys = paper33_example();
        let g = ExecutionGraph::build(&sys, 10_000);
        let r = g.render();
        assert!(r.contains("--p1-->"));
        assert!(r.contains("{p4, p5}"));
    }

    #[test]
    fn enumerate_concrete_lists_all_orders() {
        use dps_wm::WmeData;
        let rules = RuleSet::parse(
            "(p a (x) --> (remove 1))
             (p b (y) --> (remove 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("x"));
        wm.insert(WmeData::new("y"));
        let mut seqs = enumerate_concrete(&rules, &wm, 10, 100);
        seqs.sort();
        assert_eq!(seqs, vec![vec!["a", "b"], vec!["b", "a"]]);
    }

    #[test]
    fn enumerate_concrete_respects_halt_and_depth() {
        use dps_wm::WmeData;
        let rules =
            RuleSet::parse("(p stop (go ^n <n>) --> (modify 1 ^n (+ <n> 1)) (halt))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go").with("n", 0i64));
        let seqs = enumerate_concrete(&rules, &wm, 10, 100);
        assert_eq!(seqs, vec![vec!["stop"]], "halt terminates the branch");

        let spin = RuleSet::parse("(p spin (go ^n <n>) --> (modify 1 ^n (+ <n> 1)))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go").with("n", 0i64));
        let seqs = enumerate_concrete(&spin, &wm, 3, 100);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].len(), 3, "depth cap bounds the livelock");
    }

    #[test]
    fn enumerated_sequences_agree_with_single_thread_runs() {
        use crate::{EngineConfig, SingleThreadEngine};
        use dps_match::Strategy;
        use dps_wm::WmeData;
        let rules = RuleSet::parse(
            "(p take (coin ^v <v>) (purse ^sum <s>)
               --> (remove 1) (modify 2 ^sum (+ <s> <v>)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        for v in [1i64, 2, 4] {
            wm.insert(WmeData::new("coin").with("v", v));
        }
        wm.insert(WmeData::new("purse").with("sum", 0i64));
        let all = enumerate_concrete(&rules, &wm, 10, 1000);
        assert_eq!(all.len(), 6, "3! orders of consuming the coins");
        for seed in 0..10 {
            let mut e = SingleThreadEngine::new(
                &rules,
                wm.clone(),
                EngineConfig {
                    strategy: Strategy::Random(seed + 1),
                    max_cycles: 10,
                },
            );
            let r = e.run();
            let names: Vec<String> = r.trace.names().iter().map(|s| s.to_string()).collect();
            assert!(all.contains(&names), "observed run must be enumerated");
        }
    }

    #[test]
    fn abstract_sequence_validation() {
        let sys = paper33_example();
        assert!(validate_abstract_sequence(&sys, &[PId(0), PId(3), PId(4)]).is_ok());
        let err = validate_abstract_sequence(&sys, &[PId(3)]).unwrap_err();
        assert_eq!(err.at, 0);
        assert!(err.to_string().contains("p4"));
    }
}
