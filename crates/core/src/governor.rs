//! Adaptive retry governor — graceful degradation under doom storms.
//!
//! The paper's §5 analysis makes the speed-up of the dynamic approach a
//! function of the **degree of conflict** and the **wasted-work
//! fraction `f`**: when concurrent productions collide often, the
//! optimistic `Rc`–`Wa` relaxation stops paying for itself — every
//! committing writer dooms a crowd of readers whose execution time is
//! thrown away, and the engine can end up slower than a pessimistic
//! one. The governor is the engine's feedback controller for exactly
//! that regime. It watches the abort stream and degrades gracefully,
//! in three escalating steps, then walks back when contention subsides:
//!
//! 1. **Backoff** — every contention abort of a rule earns the retry a
//!    bounded-exponential delay with deterministic (seed-hashed)
//!    jitter, so a doomed production does not immediately re-collide
//!    with the writer that killed it.
//! 2. **Escalation** — when the sliding-window abort rate crosses the
//!    storm threshold, resources repeatedly implicated in contention
//!    aborts are flipped to **pessimistic 2PL modes** (`Rc → S`,
//!    `Ra → S`, `Wa → X`). The cross-protocol rows of the
//!    compatibility function treat any read/write mix as incompatible,
//!    so an escalated resource simply blocks instead of dooming —
//!    trading parallelism for wasted work, exactly the §5 dial.
//! 3. **Serialization** — a rule whose consecutive-abort streak passes
//!    the starvation bound is pushed through a global serial-fallback
//!    mutex: one starving production at a time runs effectively alone,
//!    guaranteeing progress. The mutex is acquired **before** any lock
//!    and released after commit/abort, so it is strictly outermost and
//!    can never join a waits-for cycle inside the lock manager.
//!
//! De-escalation: once the storm detector goes quiet, a run of clean
//! commits (the cooldown) clears every escalated resource and
//! serialized rule in one step. All transitions are emitted as
//! first-class [`dps_obs::EventKind::Escalate`] events.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use dps_obs::{EventKind as ObsEvent, Recorder};

/// SplitMix64 finalizer (the workspace's standard mixer) — used for the
/// deterministic backoff jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a rule name — the `resource` field of a `serialize`
/// escalation event (rules are not lock-table resources, so they get a
/// stable synthetic id).
fn rule_tag(rule: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in rule.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Tuning knobs for the [`Governor`]. The defaults are deliberately
/// conservative: under organic contention (no fault injection) a
/// healthy run should never trip the storm detector.
#[derive(Clone, Debug)]
pub struct GovernorConfig {
    /// First-retry backoff, microseconds (doubles per consecutive
    /// abort of the same rule, up to [`GovernorConfig::backoff_cap_us`]).
    pub backoff_base_us: u64,
    /// Backoff ceiling, microseconds.
    pub backoff_cap_us: u64,
    /// Sliding-window length (outcomes) for the doom-storm detector.
    pub storm_window: usize,
    /// Per-mille abort rate over the window that declares a storm.
    pub storm_threshold_pm: u32,
    /// Contention aborts implicating one resource before it is
    /// escalated to pessimistic modes (only counted during a storm).
    pub escalate_after: u32,
    /// Consecutive aborts of one rule before it is serialized through
    /// the global fallback mutex (the starvation bound).
    pub starvation_bound: u32,
    /// Clean commits, with the storm detector quiet, before every
    /// escalation and serialization is rolled back.
    pub cooldown_commits: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            backoff_base_us: 50,
            backoff_cap_us: 2_000,
            storm_window: 32,
            storm_threshold_pm: 500,
            escalate_after: 3,
            starvation_bound: 6,
            cooldown_commits: 16,
            seed: 0,
        }
    }
}

/// Point-in-time governor counters, reported alongside the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Resources escalated to pessimistic 2PL modes (cumulative).
    pub escalations: u64,
    /// Rules pushed through the serial fallback (cumulative).
    pub serializations: u64,
    /// De-escalation sweeps performed (each clears everything).
    pub deescalations: u64,
    /// Backoff delays imposed on retries.
    pub backoffs: u64,
    /// Resources currently escalated.
    pub escalated_now: usize,
    /// Rules currently serialized.
    pub serialized_now: usize,
}

/// Mutable governor state (one mutex; every critical section is a few
/// map operations).
#[derive(Debug, Default)]
struct GovState {
    /// Sliding outcome window: `true` = contention abort.
    window: VecDeque<bool>,
    /// Aborts in the window (maintained incrementally).
    window_aborts: usize,
    /// Contention aborts implicating each resource key.
    res_aborts: HashMap<u64, u32>,
    /// Resources currently under pessimistic modes.
    escalated: HashSet<u64>,
    /// Consecutive contention aborts per rule (reset on commit).
    rule_streak: HashMap<String, u32>,
    /// Rules currently routed through the serial fallback.
    serialized: HashSet<String>,
    /// Clean commits since the storm last showed itself.
    calm_commits: u32,
}

impl GovState {
    fn push_outcome(&mut self, abort: bool, window: usize) {
        self.window.push_back(abort);
        self.window_aborts += usize::from(abort);
        while self.window.len() > window.max(1) {
            if self.window.pop_front() == Some(true) {
                self.window_aborts -= 1;
            }
        }
    }

    /// Storm = window at least half warm and abort rate ≥ threshold.
    fn storm(&self, cfg: &GovernorConfig) -> bool {
        let len = self.window.len();
        len * 2 >= cfg.storm_window.max(1)
            && self.window_aborts * 1000 >= cfg.storm_threshold_pm as usize * len
    }
}

/// The governor. Share by reference from the engine; every method takes
/// `&self`.
#[derive(Debug)]
pub struct Governor {
    config: GovernorConfig,
    state: Mutex<GovState>,
    /// The serial-fallback mutex. Strictly outermost: acquired before
    /// any lock-manager request, released after commit/abort.
    serial: Mutex<()>,
    /// Fast-path flags so the unescalated hot path costs one atomic
    /// load, not a mutex acquisition per resource.
    any_escalated: AtomicBool,
    any_serialized: AtomicBool,
    escalations: AtomicU64,
    serializations: AtomicU64,
    deescalations: AtomicU64,
    backoffs: AtomicU64,
    /// Live-telemetry mirrors of the mutexed sets' sizes and the last
    /// imposed backoff, updated at every mutation site (while the state
    /// lock is held, so they are always exact) — sampling never takes
    /// the governor mutex.
    escalated_now: AtomicU64,
    serialized_now: AtomicU64,
    last_backoff_us: AtomicU64,
}

impl Governor {
    /// Builds a governor from its tuning knobs.
    pub fn new(config: GovernorConfig) -> Self {
        Governor {
            config,
            state: Mutex::new(GovState::default()),
            serial: Mutex::new(()),
            any_escalated: AtomicBool::new(false),
            any_serialized: AtomicBool::new(false),
            escalations: AtomicU64::new(0),
            serializations: AtomicU64::new(0),
            deescalations: AtomicU64::new(0),
            backoffs: AtomicU64::new(0),
            escalated_now: AtomicU64::new(0),
            serialized_now: AtomicU64::new(0),
            last_backoff_us: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> GovernorStats {
        let st = self.state.lock().unwrap();
        GovernorStats {
            escalations: self.escalations.load(Relaxed),
            serializations: self.serializations.load(Relaxed),
            deescalations: self.deescalations.load(Relaxed),
            backoffs: self.backoffs.load(Relaxed),
            escalated_now: st.escalated.len(),
            serialized_now: st.serialized.len(),
        }
    }

    /// Is this resource currently under pessimistic (2PL) modes? One
    /// relaxed atomic load when nothing is escalated.
    pub fn is_escalated(&self, res_key: u64) -> bool {
        self.any_escalated.load(Relaxed) && self.state.lock().unwrap().escalated.contains(&res_key)
    }

    /// If `rule` is currently serialized, acquires the global fallback
    /// mutex — hold the guard across the whole attempt. Call **before**
    /// the first lock request (the guard must stay outermost).
    pub fn serial_guard(&self, rule: &str) -> Option<MutexGuard<'_, ()>> {
        if !self.any_serialized.load(Relaxed) {
            return None;
        }
        if !self.state.lock().unwrap().serialized.contains(rule) {
            return None;
        }
        Some(self.serial.lock().unwrap())
    }

    /// Feed a commit. Clears the rule's abort streak, cools the storm
    /// detector and — after a full quiet cooldown — rolls back every
    /// escalation/serialization in one sweep (emitting a `deescalate`
    /// event against slot `obs_slot`).
    pub fn on_commit(&self, rule: &str, obs_slot: u64, obs: Option<&Recorder>) {
        let mut st = self.state.lock().unwrap();
        st.push_outcome(false, self.config.storm_window);
        st.rule_streak.remove(rule);
        if st.escalated.is_empty() && st.serialized.is_empty() {
            return;
        }
        if st.storm(&self.config) {
            st.calm_commits = 0;
            return;
        }
        st.calm_commits += 1;
        if st.calm_commits >= self.config.cooldown_commits {
            st.escalated.clear();
            st.serialized.clear();
            st.res_aborts.clear();
            st.calm_commits = 0;
            self.any_escalated.store(false, Relaxed);
            self.any_serialized.store(false, Relaxed);
            self.escalated_now.store(0, Relaxed);
            self.serialized_now.store(0, Relaxed);
            self.deescalations.fetch_add(1, Relaxed);
            drop(st);
            if let Some(obs) = obs {
                obs.record(
                    obs_slot,
                    ObsEvent::Escalate {
                        resource: 0,
                        action: "deescalate",
                    },
                );
            }
        }
    }

    /// Feed a contention abort (doomed / deadlock / timeout / injected /
    /// revalidation — *not* stale or eval-error). `touched` is the
    /// resource keys the transaction held condition locks on (the doom
    /// channel). Returns the backoff to sleep before retrying —
    /// deterministic in `(seed, slot, streak)`.
    pub fn on_contention_abort(
        &self,
        rule: &str,
        touched: &[u64],
        obs_slot: u64,
        obs: Option<&Recorder>,
    ) -> Duration {
        let mut st = self.state.lock().unwrap();
        st.push_outcome(true, self.config.storm_window);
        let streak = {
            let s = st.rule_streak.entry(rule.to_owned()).or_insert(0);
            *s += 1;
            *s
        };
        let storm = st.storm(&self.config);
        if storm {
            st.calm_commits = 0;
        }
        // Resource attribution → escalation (only while storming:
        // isolated collisions are the optimistic protocol working as
        // designed, not a regime change).
        let mut newly_escalated: Vec<u64> = Vec::new();
        for &res in touched {
            let n = {
                let c = st.res_aborts.entry(res).or_insert(0);
                *c += 1;
                *c
            };
            if storm && n >= self.config.escalate_after && st.escalated.insert(res) {
                newly_escalated.push(res);
            }
        }
        if !newly_escalated.is_empty() {
            self.any_escalated.store(true, Relaxed);
            self.escalations
                .fetch_add(newly_escalated.len() as u64, Relaxed);
            self.escalated_now.store(st.escalated.len() as u64, Relaxed);
        }
        // Starvation bound → serialize the rule.
        let mut serialized_now = false;
        if streak >= self.config.starvation_bound && st.serialized.insert(rule.to_owned()) {
            self.any_serialized.store(true, Relaxed);
            self.serializations.fetch_add(1, Relaxed);
            self.serialized_now.store(st.serialized.len() as u64, Relaxed);
            serialized_now = true;
        }
        drop(st);
        if let Some(obs) = obs {
            for res in &newly_escalated {
                obs.record(
                    obs_slot,
                    ObsEvent::Escalate {
                        resource: *res,
                        action: "escalate",
                    },
                );
            }
            if serialized_now {
                obs.record(
                    obs_slot,
                    ObsEvent::Escalate {
                        resource: rule_tag(rule),
                        action: "serialize",
                    },
                );
            }
        }
        self.backoffs.fetch_add(1, Relaxed);
        self.backoff(obs_slot, streak)
    }

    /// Bounded exponential backoff with deterministic jitter:
    /// `min(cap, base·2^(streak−1)) + hash(seed, slot, streak) % base`.
    fn backoff(&self, slot: u64, streak: u32) -> Duration {
        let base = self.config.backoff_base_us;
        if base == 0 {
            return Duration::ZERO;
        }
        let shift = u64::from(streak.saturating_sub(1).min(16));
        let exp = base.saturating_mul(1u64 << shift).min(self.config.backoff_cap_us);
        let jitter = mix(self.config.seed ^ mix(slot).rotate_left(17) ^ u64::from(streak)) % base;
        self.last_backoff_us.store(exp + jitter, Relaxed);
        Duration::from_micros(exp + jitter)
    }

    /// Resources currently under pessimistic modes (lock-free mirror;
    /// the `governor.escalated_now` telemetry gauge).
    pub fn escalated_now(&self) -> u64 {
        self.escalated_now.load(Relaxed)
    }

    /// Rules currently routed through the serial fallback (lock-free
    /// mirror; the `governor.serialized_now` telemetry gauge).
    pub fn serialized_now(&self) -> u64 {
        self.serialized_now.load(Relaxed)
    }

    /// The last backoff imposed, microseconds (the `governor.backoff_us`
    /// telemetry gauge — the storm's current severity dial).
    pub fn last_backoff_us(&self) -> u64 {
        self.last_backoff_us.load(Relaxed)
    }

    /// Cumulative counters as bare numbers, for telemetry probes
    /// (`escalations`, `serializations`, `deescalations`, `backoffs`).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.escalations.load(Relaxed),
            self.serializations.load(Relaxed),
            self.deescalations.load(Relaxed),
            self.backoffs.load(Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> GovernorConfig {
        GovernorConfig {
            backoff_base_us: 10,
            backoff_cap_us: 100,
            storm_window: 8,
            storm_threshold_pm: 500,
            escalate_after: 3,
            starvation_bound: 4,
            cooldown_commits: 3,
            seed: 1,
        }
    }

    #[test]
    fn quiet_runs_never_escalate() {
        let g = Governor::new(tight());
        for i in 0..100 {
            g.on_commit("r", i, None);
        }
        // A lone abort amid commits is not a storm.
        g.on_contention_abort("r", &[7], 0, None);
        assert!(!g.is_escalated(7));
        assert!(g.serial_guard("r").is_none());
        assert_eq!(g.stats().escalations, 0);
    }

    #[test]
    fn storm_escalates_the_hot_resource() {
        let g = Governor::new(tight());
        for i in 0..4 {
            g.on_contention_abort("r", &[7], i, None);
        }
        assert!(g.is_escalated(7), "hot resource escalated under storm");
        assert!(!g.is_escalated(8), "cold resource untouched");
        let s = g.stats();
        assert_eq!(s.escalations, 1);
        assert_eq!(s.escalated_now, 1);
    }

    #[test]
    fn starvation_bound_serializes_the_rule() {
        let g = Governor::new(tight());
        for i in 0..4 {
            assert!(g.serial_guard("starving").is_none(), "abort {i}: not yet");
            g.on_contention_abort("starving", &[], i, None);
        }
        let guard = g.serial_guard("starving");
        assert!(guard.is_some(), "4th consecutive abort trips the bound");
        assert!(g.serial_guard("other").is_none());
        assert_eq!(g.stats().serializations, 1);
    }

    #[test]
    fn commit_resets_the_streak() {
        let g = Governor::new(tight());
        for _ in 0..3 {
            g.on_contention_abort("r", &[], 0, None);
        }
        g.on_commit("r", 0, None);
        g.on_contention_abort("r", &[], 0, None);
        assert!(
            g.serial_guard("r").is_none(),
            "streak is consecutive, not cumulative"
        );
    }

    #[test]
    fn cooldown_deescalates_everything() {
        let g = Governor::new(tight());
        for i in 0..5 {
            g.on_contention_abort("r", &[7], i, None);
        }
        assert!(g.is_escalated(7));
        assert!(g.serial_guard("r").is_some(), "also serialized");
        // Quiet stretch: flush the storm out of the window, then count
        // the cooldown.
        for i in 0..16 {
            g.on_commit("r", i, None);
        }
        assert!(!g.is_escalated(7), "cooldown cleared the escalation");
        assert!(g.serial_guard("r").is_none(), "and the serialization");
        let s = g.stats();
        assert_eq!(s.deescalations, 1);
        assert_eq!(s.escalated_now, 0);
        assert_eq!(s.serialized_now, 0);
    }

    #[test]
    fn backoff_grows_and_is_bounded() {
        let g = Governor::new(tight());
        let d1 = g.backoff(5, 1);
        let d4 = g.backoff(5, 4);
        let d20 = g.backoff(5, 20);
        assert!(d1 >= Duration::from_micros(10));
        assert!(d1 < Duration::from_micros(20), "base + jitter < 2·base");
        assert!(d4 > d1, "exponential growth");
        assert!(
            d20 <= Duration::from_micros(110),
            "cap + jitter bounds the tail: {d20:?}"
        );
        // Deterministic in (seed, slot, streak).
        assert_eq!(g.backoff(5, 3), g.backoff(5, 3));
        assert_ne!(g.backoff(5, 1), g.backoff(6, 1), "jitter varies by slot");
    }

    #[test]
    fn zero_base_disables_backoff() {
        let g = Governor::new(GovernorConfig {
            backoff_base_us: 0,
            ..tight()
        });
        assert_eq!(g.on_contention_abort("r", &[], 0, None), Duration::ZERO);
    }

    #[test]
    fn escalation_events_reach_the_recorder() {
        let rec = Recorder::default();
        let g = Governor::new(tight());
        for i in 0..5 {
            g.on_contention_abort("r", &[9], i, Some(&rec));
        }
        for i in 0..16 {
            g.on_commit("r", i, Some(&rec));
        }
        let history = rec.history();
        let actions: Vec<&str> = history
            .iter()
            .filter_map(|e| match e.kind {
                ObsEvent::Escalate { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert!(actions.contains(&"escalate"));
        assert!(actions.contains(&"serialize"));
        assert!(actions.contains(&"deescalate"));
        assert_eq!(rec.report().escalations, actions.len() as u64);
    }
}
