//! The dynamic approach (§4.2–4.3): multiple execution threads running
//! production RHSs as transactions under a lock protocol.
//!
//! Architecture (one instance of the paper's Figure 4.1/4.2 pipeline per
//! worker thread):
//!
//! 1. **claim** — pick an unclaimed, unrefracted instantiation from the
//!    shared conflict set;
//! 2. **condition locks** — acquire `Rc` (or `S`) locks on the matched
//!    WMEs, plus *relation-level* `Rc` locks for negated condition
//!    elements (the paper's escalation for negative dependence), then
//!    re-validate the claim under those locks;
//! 3. **execute** — simulate the RHS work (configurable per-rule
//!    duration), polling for dooms so an invalidated production stops
//!    early;
//! 4. **action locks** — acquire `Ra`/`Wa` (or `S`/`X`) locks for the
//!    buffered effects;
//! 5. **commit** — atomically: lock-manager commit (which applies the
//!    `Rc`–`Wa` rule of Figure 4.3), apply the delta to working memory,
//!    drive the matcher, append to the trace. Under
//!    [`ConflictPolicy::Revalidate`] the engine re-checks each affected
//!    reader's instantiation against the new conflict set and dooms only
//!    those actually invalidated — the paper's cheaper-abort alternative.
//!
//! ## MVCC condition reads
//!
//! Under [`ConflictPolicy::MvccSnapshot`] phase 2 changes shape
//! entirely: the condition read set takes **no locks**. Claim
//! validation instead pins a *snapshot* — the newest fully published
//! commit sequence — and validates the matched WMEs against the
//! pipeline's versioned store ([`dps_wm::VersionedStore`], fed by the
//! same delta log that drives the match shards). Because a production's
//! RHS only ever reads its own instantiation (bindings + matched WMEs,
//! never live WM), nothing after validation depends on current state,
//! so a committing writer has nobody to doom: the Figure 4.3 commit
//! rule degenerates to a no-op and *reader aborts vanish structurally*.
//! The price is paid at commit: under the base mutex the committer
//! re-validates its own read set (latest versions still carry the
//! matched timestamps; no negated class written past the snapshot —
//! with an exact conflict-set membership fallback), aborting itself
//! with [`AbortStats::snapshot_stale`] on genuine overlap. Validity at
//! the commit point is exactly what the §3 serial-replay oracle needs,
//! so MVCC traces replay unchanged; the recorded snapshot-pin /
//! version-read / version-write events additionally feed the SI &
//! serializability polygraph checker in `dps-obs`.
//!
//! ## Shared-state decomposition
//!
//! The engine's mutable state was formerly one `Mutex<Shared>`, then a
//! `Mutex<World>` (WM + one monolithic matcher) beside the scheduler's
//! ledger — every claim scan and every commit still serialised on the
//! single matcher. The matcher is now the **sharded match pipeline**
//! ([`crate::pipeline`]):
//!
//! * **`WmBase`** (`Mutex`) — the authoritative WM + commit sequence
//!   counter; the commit critical section shrinks to lock-manager
//!   commit + WM delta apply + publishing the change batch;
//! * **match shards** (one `Mutex` each) — per-component Rete networks
//!   with their own conflict-set slice and refraction slice, caught up
//!   from the sequence-numbered delta log by committers fanning out and
//!   by idle claim scans stealing pending shard×batch work;
//! * **`Ledger`** (`Mutex` + `Condvar`) — claims, engine dooms,
//!   in-flight count and termination flags; the scheduler's state.
//!   Doom-polling during simulated RHS work touches *only* this (and
//!   the lock manager), never any matcher;
//! * **`Metrics`** (atomics) + **trace** (`Mutex<Trace>`) — counters and
//!   the commit log.
//!
//! Lock order: base → shard → log → ledger → trace (any subsequence is
//! fine; never in reverse). The condvar is tied to the ledger; waiters
//! hold nothing else while sleeping.
//!
//! Every committed sequence is recorded as a [`Trace`];
//! [`crate::semantics::validate_trace`] checks it against `ES_single`
//! (Definition 3.2) — the property the paper proves as Theorem 2 (and
//! extends to the improved scheme in §4.3).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

use dps_lock::{
    res_key, ConflictPolicy, FaultInjector, FaultPlan, FaultStats, LockManager, LockMode, Protocol,
    ResourceId, TxnId, WalKillSite,
};
use dps_match::{InstKey, Instantiation, Matcher, DEFAULT_MATCH_SHARDS};
use dps_obs::{
    EventKind as ObsEvent, FanoutStats, Phase, Recorder, Telemetry, TelemetryConfig, TickHist,
};
use dps_rules::{instantiate_actions, RuleSet};
use dps_wm::wal::KillMode;
use dps_wm::{Atom, DurableWm, WalError, WalStats, WorkingMemory};

use crate::governor::{Governor, GovernorConfig, GovernorStats};
use crate::pipeline::MatchPipeline;
use crate::{Firing, Footprint, Trace};

/// Simulated per-production RHS duration — stands in for the "full-
/// fledged database query" the paper expects an RHS to be.
#[derive(Clone, Debug, Default)]
pub enum WorkModel {
    /// RHS costs nothing beyond its real computation.
    #[default]
    None,
    /// Every rule *sleeps* for this many microseconds: models an
    /// I/O-bound RHS that occupies the worker but not a processor.
    FixedMicros(u64),
    /// Per-rule durations (microseconds); absent rules cost nothing.
    PerRuleMicros(HashMap<Atom, u64>),
    /// Every rule *spins* for this many microseconds: models the
    /// paper's CPU-bound "full-fledged database query". Unlike the
    /// sleeping models, aborted work under this model genuinely
    /// consumed a processor — on an oversubscribed machine the §5
    /// wasted-work fraction `f` is paid in wall-clock, which is what
    /// makes doom storms expensive and the retry governor measurable.
    BusyMicros(u64),
}

impl WorkModel {
    fn duration(&self, rule: &Atom) -> Duration {
        match self {
            WorkModel::None => Duration::ZERO,
            WorkModel::FixedMicros(us) | WorkModel::BusyMicros(us) => Duration::from_micros(*us),
            WorkModel::PerRuleMicros(m) => Duration::from_micros(m.get(rule).copied().unwrap_or(0)),
        }
    }

    /// `true` when simulated work occupies a processor (spin) rather
    /// than just the worker (sleep).
    fn is_busy(&self) -> bool {
        matches!(self, WorkModel::BusyMicros(_))
    }
}

/// Burns exactly `n` iterations of real processor work. The body is a
/// data-dependent LCG the optimiser cannot elide (the accumulator is
/// black-boxed), so `n` iterations cost the same cycle count whether
/// or not the thread gets descheduled halfway through.
fn spin_iters(n: u64) {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..n {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
        std::hint::spin_loop();
    }
    std::hint::black_box(acc);
}

/// Spin iterations per microsecond, calibrated once per process.
///
/// [`WorkModel::BusyMicros`] must burn *iterations*, not elapsed time:
/// an elapsed-based spin lets a descheduled worker make "progress" by
/// the wall clock, which on an oversubscribed machine silently turns
/// CPU-bound work back into free work — and with it, the wasted-work
/// fraction `f` of §5 back into a no-op.
fn spin_iters_per_us() -> u64 {
    static CAL: OnceLock<u64> = OnceLock::new();
    *CAL.get_or_init(|| {
        spin_iters(50_000); // warm-up
        const N: u64 = 2_000_000;
        let t0 = Instant::now();
        spin_iters(N);
        let us = t0.elapsed().as_micros().max(1) as u64;
        (N / us).max(1)
    })
}

/// Configuration of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Lock protocol: 2PL baseline or the improved `Rc`/`Ra`/`Wa`.
    pub protocol: Protocol,
    /// Commit-time `Rc`–`Wa` policy (only meaningful for `RcRaWa`).
    pub policy: ConflictPolicy,
    /// Worker threads (`N_p`).
    pub workers: usize,
    /// Simulated RHS cost.
    pub work: WorkModel,
    /// Commit cap (guards non-terminating systems).
    pub max_commits: usize,
    /// `R_c` lock escalation (§4.3: "the `R_c` locks can be escalated
    /// for performance reasons. In the extreme case, a `R_c` lock may
    /// lock an entire relation"). `Some(t)`: when an instantiation
    /// matched more than `t` tuples of one class, lock the whole
    /// relation instead of the tuples (`Some(0)` = always escalate);
    /// `None`: never escalate. Escalation trades lock-manager traffic
    /// for *false conflicts* — quantified by experiment X7.
    pub rc_escalation: Option<usize>,
    /// Stripe count of the engine's lock table. The default
    /// ([`dps_lock::DEFAULT_SHARDS`]) spreads lock traffic over
    /// independent mutexes; `1` collapses to a single-mutex (centralised)
    /// table — the pre-sharding layout, kept as a knob so the scaling
    /// sweep can measure exactly what the striping buys.
    pub lock_shards: usize,
    /// Lock-wait timeout forwarded to the lock manager (`None`:
    /// deadlock detection alone handles stuck waits). Timed-out
    /// attempts abort with [`AbortStats::timeout`].
    pub lock_timeout: Option<Duration>,
    /// Observability: when `true` the engine attaches a
    /// [`dps_obs::Recorder`] and emits the full transaction-lifecycle
    /// event stream, phase latency histograms and per-rule tables
    /// (retrieve via [`ParallelEngine::observer`]). When `false` every
    /// instrumentation site costs one branch on a `None`.
    pub observe: bool,
    /// Chaos: a seeded [`FaultPlan`] threaded through the lock manager
    /// and the engine's RHS loop (see [`dps_lock::fault`]). `None` (the
    /// default) keeps every injection seam a single branch on a `None`
    /// — zero-cost when disabled.
    pub fault: Option<FaultPlan>,
    /// Adaptive retry governor (see [`crate::governor`]): bounded
    /// backoff on contention aborts, doom-storm detection with
    /// per-resource escalation to pessimistic 2PL modes, and a serial
    /// fallback past the starvation bound. `None` disables it.
    pub governor: Option<GovernorConfig>,
    /// Match shards: the rule partition's class-connected components
    /// are folded onto at most this many independently-locked Rete
    /// networks (clamped to the component count; `1` collapses to the
    /// monolithic pre-pipeline layout — the recovery knob `matchbench`
    /// measures). See [`crate::pipeline`].
    pub match_shards: usize,
    /// Durability: when set, every commit's change batch is staged
    /// into a file-backed group-commit WAL under the base mutex and
    /// fsynced (piggybacked) before the worker moves on, with periodic
    /// checkpoint snapshots; [`dps_wm::recover`] +
    /// [`ParallelEngine::resume`] rebuild and continue after a crash.
    /// `None` (the default) keeps the commit path free of any
    /// durability cost — one branch on a `None`, like `observe` and
    /// `fault`.
    pub durability: Option<DurabilityConfig>,
    /// Live telemetry: when set, the engine registers atomic probes for
    /// every subsystem (commit/abort rates, lock waits, delta-log
    /// depth, WAL backlog, governor state) on a
    /// [`dps_obs::Telemetry`] registry and runs its background sampler
    /// for the duration of [`ParallelEngine::run`] (retrieve via
    /// [`ParallelEngine::telemetry`]). Same zero-cost seam as
    /// `observe`: the hot path pays nothing — probes read the same
    /// atomics the end-of-run report reads; only the sampler thread
    /// works.
    pub telemetry: Option<TelemetryConfig>,
    /// Cooperative stop flag for graceful drain: when the flag flips to
    /// `true` (a signal handler, a server shutdown, a watchdog) workers
    /// stop claiming new work, finish their in-flight commits, and
    /// [`ParallelEngine::run`] exits through the normal quiescence path
    /// — final WAL flush, telemetry stop — so an interrupted run never
    /// leaves a torn WAL tail. `None` (the default) costs one branch.
    pub stop: Option<Arc<AtomicBool>>,
    /// Service mode: at quiescence, workers *park* on the engine
    /// condvar instead of terminating, waiting for external session
    /// commits ([`ParallelEngine::external_commit`]) to feed new WM
    /// changes — the multi-session server's front-door mode. The run
    /// then only ends via [`ParallelEngine::request_stop`] (or the
    /// [`ParallelConfig::stop`] flag, or halt / the commit cap).
    pub service: bool,
    /// Coordination avoidance (Bailis et al.): when `true`, a claimed
    /// firing of a rule the shard planner proved commutative with every
    /// rule that can run concurrently (`ShardPlan::elidable` — the
    /// static commute matrix over its class-connected component) skips
    /// `LockManager` acquisition for **all** of its resources and
    /// commits through the `ElidedCommit` protocol instead: snapshot
    /// pinned at claim, per-matched-WME version check at claim, and
    /// commit-time self-validation under the base mutex (the PR 6
    /// backward-OCC skeleton), aborting with
    /// [`AbortStats::elision_stale`] on the rare conflict. Rules the
    /// matrix could not prove — and every rule sharing their component
    /// — keep the full §4 protocol, so lock-holding and lock-skipping
    /// firings never meet on a resource.
    pub elide_locks: bool,
    /// Falsifiability knob (gates and tests only — never production):
    /// treats *every* rule as provably-commutative and **bypasses** the
    /// elided commit-time validation. With a genuinely non-commutative
    /// pair this manufactures a lost update, which the §3 serial-replay
    /// oracle must reject — proving the gate can fail. Meaningful only
    /// with [`ParallelConfig::elide_locks`]; commit-time validation
    /// alone would keep even a misclassified run correct, which is why
    /// the probe must switch it off to expose the misclassification.
    pub elide_misclassify: bool,
}

/// Configuration of the durability layer ([`ParallelConfig::durability`]).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the checkpoints and WAL segments.
    pub dir: std::path::PathBuf,
    /// Take a checkpoint (snapshot + log rotation + prune) every this
    /// many commits. `0` = never checkpoint (one segment grows
    /// forever); useful for tests that want the whole log.
    pub checkpoint_interval: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default checkpoint cadence.
    pub fn at(dir: impl Into<std::path::PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), checkpoint_interval: 4096 }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy: ConflictPolicy::AbortReaders,
            workers: 4,
            work: WorkModel::None,
            max_commits: 100_000,
            rc_escalation: None,
            lock_shards: dps_lock::DEFAULT_SHARDS,
            lock_timeout: None,
            observe: false,
            fault: None,
            governor: None,
            match_shards: DEFAULT_MATCH_SHARDS,
            durability: None,
            telemetry: None,
            stop: None,
            service: false,
            elide_locks: false,
            elide_misclassify: false,
        }
    }
}

/// Abort counters, by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbortStats {
    /// Doomed by a committing writer (Figure 4.3(b)).
    pub doomed: u64,
    /// Deadlock victims.
    pub deadlock: u64,
    /// Claim invalidated before/while acquiring condition locks.
    ///
    /// Historical note: this counter used to also absorb RHS evaluation
    /// errors; those now have their own [`AbortStats::eval_error`]
    /// counter, so `stale` means exactly what its name says.
    pub stale: u64,
    /// Revalidation failed (policy `Revalidate`).
    pub revalidation: u64,
    /// RHS evaluation failed (e.g. division by zero); the
    /// instantiation is refracted so it is never retried.
    pub eval_error: u64,
    /// A lock wait exceeded [`ParallelConfig::lock_timeout`].
    pub timeout: u64,
    /// Force-aborted by the chaos fault injector
    /// ([`ParallelConfig::fault`]). Always zero outside fault-injected
    /// runs — injected failures never masquerade as organic causes.
    pub injected: u64,
    /// Commit-time snapshot validation failed
    /// ([`ConflictPolicy::MvccSnapshot`] only): a concurrent commit
    /// overwrote this transaction's read set between its pinned
    /// snapshot and its commit point. The MVCC analogue of a write
    /// conflict — *not* a reader abort (no committing writer ever dooms
    /// an MVCC reader), and deliberately distinct from
    /// [`AbortStats::stale`] (pre-execution claim invalidation) so
    /// legacy reader aborts can never be silently folded into it.
    pub snapshot_stale: u64,
    /// Elided commit-time validation failed
    /// ([`ParallelConfig::elide_locks`] only): a lock-skipping firing
    /// of a provably-commutative rule found a matched tuple changed
    /// between claim and commit (e.g. two rules bumping the same cell —
    /// deltas are materialised to absolute values at RHS evaluation, so
    /// a stale apply would be a lost update). Structurally the same
    /// check as [`AbortStats::snapshot_stale`], counted separately so
    /// elision A/B comparisons cannot fold the two together.
    pub elision_stale: u64,
}

impl AbortStats {
    /// Total aborts (sum over every cause counter).
    pub fn total(&self) -> u64 {
        self.doomed
            + self.deadlock
            + self.stale
            + self.revalidation
            + self.eval_error
            + self.timeout
            + self.injected
            + self.snapshot_stale
            + self.elision_stale
    }

    /// Aborts of *condition readers* — productions killed because of
    /// what they read, not what they wrote: Figure 4.3(b) dooms plus
    /// engine-level revalidation failures. The counters the MVCC read
    /// path is designed to drive to zero.
    pub fn reader_aborts(&self) -> u64 {
        self.doomed + self.revalidation
    }
}

/// Result of [`ParallelEngine::run`].
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// Productions committed.
    pub commits: usize,
    /// Aborts by cause.
    pub aborts: AbortStats,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Simulated work thrown away by aborts (the §5 `f` factor's
    /// numerator).
    pub wasted_work: Duration,
    /// The commit sequence.
    pub trace: Trace,
    /// `true` if a `halt` action ended the run.
    pub halted: bool,
    /// Aggregate lock-manager statistics for the run.
    pub lock_stats: dps_lock::LockStats,
    /// Injection counters, when a [`ParallelConfig::fault`] plan was
    /// attached.
    pub fault_stats: Option<FaultStats>,
    /// Governor counters, when a [`ParallelConfig::governor`] was
    /// attached.
    pub governor: Option<GovernorStats>,
    /// Sharded-match fan-out tallies (batches published, shard×batch
    /// applies, free epoch advances, stolen catch-ups; maintained with
    /// or without [`ParallelConfig::observe`]).
    pub fanout: FanoutStats,
    /// WAL counters, when [`ParallelConfig::durability`] was attached
    /// (appends/fsyncs/piggybacks — the group-commit evidence).
    pub wal: Option<WalStats>,
}

/// Scheduler state: who has claimed what, who is doomed at engine
/// level, and the run's termination flags. The engine condvar is tied
/// to this mutex. (Refraction lives on the match shards — it is a
/// per-shard slice now, not global scheduler state.)
#[derive(Debug, Default)]
pub(crate) struct Ledger {
    claimed: HashSet<InstKey>,
    pub(crate) claims_by_txn: HashMap<TxnId, InstKey>,
    /// Readers doomed by engine-level revalidation.
    pub(crate) engine_doomed: HashSet<TxnId>,
    pub(crate) inflight: usize,
    halted: bool,
    pub(crate) done: bool,
}

/// Run counters, updated lock-free.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    commits: AtomicUsize,
    doomed: AtomicU64,
    deadlock: AtomicU64,
    stale: AtomicU64,
    revalidation: AtomicU64,
    eval_error: AtomicU64,
    timeout: AtomicU64,
    injected: AtomicU64,
    snapshot_stale: AtomicU64,
    elision_stale: AtomicU64,
    wasted_nanos: AtomicU64,
}

impl Metrics {
    fn abort_stats(&self) -> AbortStats {
        AbortStats {
            doomed: self.doomed.load(Relaxed),
            deadlock: self.deadlock.load(Relaxed),
            stale: self.stale.load(Relaxed),
            revalidation: self.revalidation.load(Relaxed),
            eval_error: self.eval_error.load(Relaxed),
            timeout: self.timeout.load(Relaxed),
            injected: self.injected.load(Relaxed),
            snapshot_stale: self.snapshot_stale.load(Relaxed),
            elision_stale: self.elision_stale.load(Relaxed),
        }
    }

    pub(crate) fn count_abort(&self, cause: &AbortCause) {
        match cause {
            AbortCause::Doomed => self.doomed.fetch_add(1, Relaxed),
            AbortCause::Deadlock => self.deadlock.fetch_add(1, Relaxed),
            AbortCause::Stale => self.stale.fetch_add(1, Relaxed),
            AbortCause::Revalidation => self.revalidation.fetch_add(1, Relaxed),
            AbortCause::EvalError => self.eval_error.fetch_add(1, Relaxed),
            AbortCause::Timeout => self.timeout.fetch_add(1, Relaxed),
            AbortCause::Injected => self.injected.fetch_add(1, Relaxed),
            AbortCause::SnapshotStale => self.snapshot_stale.fetch_add(1, Relaxed),
            AbortCause::ElisionStale => self.elision_stale.fetch_add(1, Relaxed),
        };
    }
}

/// The dynamic-approach parallel engine. See the module docs.
///
/// Field visibility: `pub(crate)` where the external-session layer
/// ([`crate::session`]) shares the commit machinery.
pub struct ParallelEngine {
    rules: RuleSet,
    pub(crate) config: ParallelConfig,
    /// Class → relation-resource id mapping. Seeded at build with every
    /// class any rule mentions; external session inserts may introduce
    /// *new* classes at run time, so the map allocates ids on demand
    /// behind an `RwLock` (reads stay a shared lock on the hot path).
    class_ids: RwLock<HashMap<Atom, u32>>,
    /// Piece (b): the authoritative WM (commit critical section) plus
    /// the per-shard match networks and the delta log between them.
    /// `Arc`'d (like `metrics`, `lm` and the governor) so telemetry
    /// probes — `'static` closures on the sampler thread — can read
    /// its atomics after borrowing rules forbid a plain reference.
    pub(crate) pipeline: Arc<MatchPipeline>,
    /// Piece (a): claims + termination; condvar lives here.
    pub(crate) ledger: Mutex<Ledger>,
    pub(crate) cv: Condvar,
    /// Piece (c): commit log and counters.
    pub(crate) trace: Mutex<Trace>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) lm: Arc<LockManager>,
    /// Observability sink ([`ParallelConfig::observe`]); shared with the
    /// lock manager. `None` ⇒ every instrumentation site is one branch.
    pub(crate) obs: Option<Arc<Recorder>>,
    /// Chaos injector ([`ParallelConfig::fault`]); shared with the lock
    /// manager. `None` ⇒ every seam is one branch.
    pub(crate) injector: Option<Arc<FaultInjector>>,
    /// Adaptive retry governor ([`ParallelConfig::governor`]).
    governor: Option<Arc<Governor>>,
    /// Durability layer ([`ParallelConfig::durability`]): checkpoint +
    /// group-commit WAL. `None` ⇒ the commit path pays one branch.
    pub(crate) durable: Option<Arc<DurableWm>>,
    /// Live-telemetry registry + sampler ([`ParallelConfig::telemetry`]).
    telemetry: Option<Arc<Telemetry>>,
    /// Internal stop latch ([`ParallelEngine::request_stop`]); OR'd with
    /// the external [`ParallelConfig::stop`] flag in [`Self::capped`].
    stop: AtomicBool,
    /// External session commits threaded through the engine (kept out
    /// of [`Metrics::commits`], which counts rule firings and gates the
    /// commit cap).
    pub(crate) external_commits: AtomicU64,
}

enum WorkerStep {
    Worked,
    Finished,
}

impl ParallelEngine {
    /// Creates the engine over an initial working memory.
    pub fn new(rules: &RuleSet, wm: WorkingMemory, config: ParallelConfig) -> Self {
        Self::build(rules, wm, 0, config)
    }

    /// Creates the engine over a **recovered** working memory, resuming
    /// the commit sequence at `last_seq + 1` (see [`dps_wm::recover`]).
    /// With [`ParallelConfig::durability`] set, a fresh checkpoint is
    /// cut at `last_seq` so the new log suffix starts clean (this also
    /// retires any torn tail left by the crash).
    pub fn resume(
        rules: &RuleSet,
        wm: WorkingMemory,
        last_seq: u64,
        config: ParallelConfig,
    ) -> Self {
        Self::build(rules, wm, last_seq, config)
    }

    fn build(rules: &RuleSet, wm: WorkingMemory, base_seq: u64, config: ParallelConfig) -> Self {
        // The durability layer snapshots `wm` before the pipeline takes
        // ownership of it (checkpoint-at-base: recovery never needs log
        // records older than `base_seq`).
        let durable = config.durability.as_ref().map(|d| {
            Arc::new(
                DurableWm::create(&d.dir, &wm, base_seq)
                    .expect("durability dir initialises"),
            )
        });
        let pipeline = MatchPipeline::new_at(rules, wm, config.match_shards, base_seq);
        let mut class_ids = HashMap::new();
        for (_, rule) in rules.iter() {
            for cond in &rule.conditions {
                let next = class_ids.len() as u32;
                class_ids.entry(cond.ce().class.clone()).or_insert(next);
            }
            for action in &rule.actions {
                if let dps_rules::Action::Make { class, .. } = action {
                    let next = class_ids.len() as u32;
                    class_ids.entry(class.clone()).or_insert(next);
                }
            }
        }
        let obs = config.observe.then(|| Arc::new(Recorder::default()));
        if let Some(obs) = &obs {
            obs.set_match_shards(pipeline.shards() as u64);
        }
        let injector = config
            .fault
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let governor = config
            .governor
            .clone()
            .map(|cfg| Arc::new(Governor::new(cfg)));
        let pipeline = Arc::new(pipeline);
        let metrics = Arc::new(Metrics::default());
        let telemetry = config.telemetry.clone().map(|t| Arc::new(Telemetry::new(t)));
        let wait_hist = telemetry.as_ref().map(|_| Arc::new(TickHist::default()));
        let lm = Arc::new(
            LockManager::builder()
                .policy(config.policy)
                .shards(config.lock_shards)
                .timeout(config.lock_timeout)
                .obs(obs.clone())
                .fault(injector.clone())
                .wait_hist(wait_hist.clone())
                .build(),
        );
        if let Some(tel) = &telemetry {
            Self::register_probes(
                tel,
                &metrics,
                &lm,
                &pipeline,
                governor.as_ref(),
                durable.as_ref(),
                wait_hist,
            );
        }
        ParallelEngine {
            rules: rules.clone(),
            class_ids: RwLock::new(class_ids),
            lm,
            config,
            pipeline,
            ledger: Mutex::new(Ledger::default()),
            cv: Condvar::new(),
            trace: Mutex::new(Trace::default()),
            metrics,
            obs,
            injector,
            governor,
            durable,
            telemetry,
            stop: AtomicBool::new(false),
            external_commits: AtomicU64::new(0),
        }
    }

    /// Registers every engine series on the telemetry registry. Each
    /// probe is a lock-free read over `Arc`'d atomics — the same cells
    /// the end-of-run [`ParallelReport`] reads, which is what makes
    /// tick-integrated totals reconcile exactly with the event-ring
    /// aggregates. No probe ever takes an engine lock (see the
    /// lock-order note in [`dps_obs::timeline`]).
    // The `[(&str, fn(..) -> u64); N]` annotations are what coerce the
    // per-series closures to plain fn pointers so each loop body stays
    // monomorphic; aliasing them per component would obscure, not help.
    #[allow(clippy::type_complexity)]
    fn register_probes(
        tel: &Arc<Telemetry>,
        metrics: &Arc<Metrics>,
        lm: &Arc<LockManager>,
        pipeline: &Arc<MatchPipeline>,
        governor: Option<&Arc<Governor>>,
        durable: Option<&Arc<DurableWm>>,
        wait_hist: Option<Arc<TickHist>>,
    ) {
        // Engine: commit + abort-by-cause counters (per-tick first
        // differences are the rates) and wasted work.
        let m = Arc::clone(metrics);
        tel.counter("engine.commits", move || m.commits.load(Relaxed) as u64);
        let causes: [(&str, fn(&Metrics) -> u64); 10] = [
            ("engine.aborts.doomed", |m| m.doomed.load(Relaxed)),
            ("engine.aborts.deadlock", |m| m.deadlock.load(Relaxed)),
            ("engine.aborts.stale", |m| m.stale.load(Relaxed)),
            ("engine.aborts.revalidation", |m| m.revalidation.load(Relaxed)),
            ("engine.aborts.eval_error", |m| m.eval_error.load(Relaxed)),
            ("engine.aborts.timeout", |m| m.timeout.load(Relaxed)),
            ("engine.aborts.injected", |m| m.injected.load(Relaxed)),
            ("engine.aborts.snapshot_stale", |m| {
                m.snapshot_stale.load(Relaxed)
            }),
            ("engine.aborts.elision_stale", |m| {
                m.elision_stale.load(Relaxed)
            }),
            ("engine.wasted_ns", |m| m.wasted_nanos.load(Relaxed)),
        ];
        for (name, read) in causes {
            let m = Arc::clone(metrics);
            tel.counter(name, move || read(&m));
        }
        // Lock manager: counter snapshot is pure atomic loads; the wait
        // histogram drains into lock.wait.{count,p50_ns,p99_ns,max_ns}.
        let stats: [(&str, fn(dps_lock::LockStats) -> u64); 5] = [
            ("lock.grants", |s| s.grants),
            ("lock.blocks", |s| s.blocks),
            ("lock.dooms", |s| s.dooms),
            ("lock.deadlocks", |s| s.deadlocks),
            ("lock.elided", |s| s.elided),
        ];
        for (name, read) in stats {
            let l = Arc::clone(lm);
            tel.counter(name, move || read(l.stats()));
        }
        if let Some(hist) = wait_hist {
            tel.hist("lock.wait", hist);
        }
        // Match pipeline: fan-out counters plus the backlog gauges.
        let fanout: [(&str, fn(FanoutStats) -> u64); 4] = [
            ("pipeline.batches", |s| s.batches),
            ("pipeline.applies", |s| s.applies),
            ("pipeline.free_advances", |s| s.free_advances),
            ("pipeline.steals", |s| s.steals),
        ];
        for (name, read) in fanout {
            let p = Arc::clone(pipeline);
            tel.counter(name, move || read(p.fanout_stats()));
        }
        let gauges: [(&str, fn(&MatchPipeline) -> u64); 6] = [
            ("pipeline.log_depth", MatchPipeline::log_depth),
            ("pipeline.cursor_lag", MatchPipeline::max_cursor_lag),
            ("pipeline.version_records", MatchPipeline::version_records),
            ("pipeline.gc_floor_lag", MatchPipeline::gc_floor_lag),
            ("pipeline.snapshot_pins", MatchPipeline::pin_count),
            ("pipeline.pin_lag", MatchPipeline::oldest_pin_lag),
        ];
        for (name, read) in gauges {
            let p = Arc::clone(pipeline);
            tel.gauge(name, move || read(&p));
        }
        // Governor: cumulative transitions plus the current regime.
        if let Some(g) = governor {
            let counters: [(&str, fn((u64, u64, u64, u64)) -> u64); 4] = [
                ("governor.escalations", |c| c.0),
                ("governor.serializations", |c| c.1),
                ("governor.deescalations", |c| c.2),
                ("governor.backoffs", |c| c.3),
            ];
            for (name, read) in counters {
                let g = Arc::clone(g);
                tel.counter(name, move || read(g.counters()));
            }
            let gauges: [(&str, fn(&Governor) -> u64); 3] = [
                ("governor.escalated_now", Governor::escalated_now),
                ("governor.serialized_now", Governor::serialized_now),
                ("governor.backoff_us", Governor::last_backoff_us),
            ];
            for (name, read) in gauges {
                let g = Arc::clone(g);
                tel.gauge(name, move || read(&g));
            }
        }
        // WAL: group-commit evidence (pending backlog, fsync count +
        // cumulative latency, piggyback numerator/denominator).
        if let Some(d) = durable {
            let counters: [(&str, fn(WalStats) -> u64); 5] = [
                ("wal.appends", |s| s.appends),
                ("wal.fsyncs", |s| s.fsyncs),
                ("wal.synced_records", |s| s.synced_records),
                ("wal.piggybacked", |s| s.piggybacked),
                ("wal.checkpoints", |s| s.checkpoints),
            ];
            for (name, read) in counters {
                let d = Arc::clone(d);
                tel.counter(name, move || read(d.writer().stats()));
            }
            let d2 = Arc::clone(d);
            tel.counter("wal.fsync_ns", move || d2.writer().fsync_nanos());
            let d3 = Arc::clone(d);
            tel.gauge("wal.pending_bytes", move || d3.writer().pending_bytes());
        }
    }

    /// The observability recorder, when [`ParallelConfig::observe`] is
    /// set (shared with the engine's lock manager). Snapshot it with
    /// [`Recorder::report`] or merge its event rings with
    /// [`Recorder::history`].
    pub fn observer(&self) -> Option<&Arc<Recorder>> {
        self.obs.as_ref()
    }

    pub(crate) fn relation_resource(&self, class: &Atom) -> ResourceId {
        if let Some(id) = self.class_ids.read().unwrap().get(class) {
            return ResourceId::Relation(*id);
        }
        // New class (an external session insert): allocate an id on
        // demand. `entry` re-checks under the write lock, so two racing
        // allocators agree.
        let mut map = self.class_ids.write().unwrap();
        let next = map.len() as u32;
        ResourceId::Relation(*map.entry(class.clone()).or_insert(next))
    }

    /// Runs the system to quiescence with `config.workers` threads.
    pub fn run(&mut self) -> ParallelReport {
        self.run_shared()
    }

    /// [`Self::run`] through a shared reference, for callers that keep
    /// using the engine concurrently while it runs — the server holds
    /// `&self` on its session-handler threads (external transactions)
    /// while one scoped thread sits in `run_shared`. Not re-entrant:
    /// one run at a time.
    pub fn run_shared(&self) -> ParallelReport {
        let start = Instant::now();
        if let Some(tel) = &self.telemetry {
            tel.start();
        }
        let workers = self.config.workers.max(1);
        std::thread::scope(|scope| {
            for idx in 0..workers {
                scope.spawn(move || self.worker_loop(idx));
            }
        });
        // Quiescence flush: the baton flusher only guarantees eventual
        // durability while commits keep arriving; make the final tail
        // durable here so a clean shutdown recovers completely.
        if let Some(durable) = &self.durable {
            if !durable.writer().is_dead() {
                let _ = durable.writer().flush();
            }
        }
        // Stop the sampler after the flush: its forced final sample
        // anchors every counter series at the run total, which is the
        // reconciliation invariant the cross-validation tests check.
        if let Some(tel) = &self.telemetry {
            tel.stop();
        }
        // Leak audit: a drained run holds nothing. Every lock-release
        // and pin-release path is a drop-guard precisely so these hold
        // even through panicking RHSs and severed sessions (external
        // transactions are resolved by the server before it stops the
        // engine).
        debug_assert_eq!(self.pipeline.pin_count(), 0, "snapshot pins leaked");
        debug_assert_eq!(self.lm.held_locks(), 0, "locks leaked past drain");
        let wall = start.elapsed();
        let halted = self.ledger.lock().unwrap().halted;
        ParallelReport {
            commits: self.metrics.commits.load(Relaxed),
            aborts: self.metrics.abort_stats(),
            wall,
            wasted_work: Duration::from_nanos(self.metrics.wasted_nanos.load(Relaxed)),
            trace: self.trace.lock().unwrap().clone(),
            halted,
            lock_stats: self.lm.stats(),
            fault_stats: self.injector.as_ref().map(|inj| inj.stats()),
            governor: self.governor.as_ref().map(|g| g.stats()),
            fanout: self.pipeline.fanout_stats(),
            wal: self.durable.as_ref().map(|d| d.writer().stats()),
        }
    }

    /// The durability layer, when [`ParallelConfig::durability`] is set
    /// (checkpoint directory + group-commit WAL writer).
    pub fn durable(&self) -> Option<&Arc<DurableWm>> {
        self.durable.as_ref()
    }

    /// The live-telemetry registry, when [`ParallelConfig::telemetry`]
    /// is set. After [`ParallelEngine::run`] the sampler has stopped
    /// and [`Telemetry::doc`] yields the run's `dps-timeline-v1`
    /// document.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// A snapshot of the current working memory (after `run`, the final
    /// state).
    pub fn final_wm(&self) -> WorkingMemory {
        self.pipeline.base.lock().unwrap().wm.clone()
    }

    /// Locks currently held in the engine's lock table (see
    /// [`LockManager::held_locks`]) — the disconnect-chaos gate's leak
    /// probe: zero after every drain.
    pub fn held_locks(&self) -> u64 {
        self.lm.held_locks()
    }

    /// Snapshot pins currently registered on the match pipeline — the
    /// other half of the leak probe.
    pub fn snapshot_pins(&self) -> u64 {
        self.pipeline.pin_count()
    }

    /// The chaos injector, when [`ParallelConfig::fault`] is set. The
    /// server consults it for the session-level disconnect sites
    /// (`drop_mid_claim` / `drop_mid_rhs` / `slowloris`).
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// External session commits threaded through this engine so far.
    pub fn external_commit_count(&self) -> u64 {
        self.external_commits.load(Relaxed)
    }

    /// Rule-firing commits so far — the running total a service-mode
    /// `Invoke` reports once the engine has quiesced.
    pub fn rule_commit_count(&self) -> u64 {
        self.metrics.commits.load(Relaxed) as u64
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            match self.worker_step(worker) {
                WorkerStep::Worked => {}
                WorkerStep::Finished => return,
            }
        }
    }

    /// `true` when the run may not claim more work (halt seen, the
    /// commit cap reached, or a stop was requested). `commits` only
    /// changes under the ledger lock, so reads under that lock are
    /// exact.
    fn capped(&self, ledger: &Ledger) -> bool {
        ledger.halted
            || self.metrics.commits.load(Relaxed) >= self.config.max_commits
            || self.stop_requested()
    }

    /// `true` once a graceful drain has been requested — via
    /// [`Self::request_stop`] or the external [`ParallelConfig::stop`]
    /// flag (typically flipped by a signal handler).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Relaxed)
            || self
                .config
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Relaxed))
    }

    /// Requests a graceful drain: workers stop claiming, finish their
    /// in-flight work, and [`Self::run`] exits through the final WAL
    /// flush. Safe from any thread (the server's shutdown path, a
    /// signal handler's helper thread).
    pub fn request_stop(&self) {
        self.stop.store(true, Relaxed);
        self.kick();
    }

    /// Wakes every parked worker to re-examine the world — used after
    /// flipping an external stop flag the engine cannot observe flip.
    /// Locking the ledger (empty critical section) before the notify
    /// orders the wake against the claim gate's check-then-wait.
    pub fn kick(&self) {
        drop(self.ledger.lock().unwrap());
        self.cv.notify_all();
    }

    /// One claim→execute→commit attempt (or a wait / exit decision).
    ///
    /// The claim scan walks the match shards starting at `worker`'s own
    /// rotation offset (workers fan out over different shards instead
    /// of racing down the same conflict-set prefix). Each shard is
    /// first caught up to the watermark — idle claim scans *steal* the
    /// pending shard×batch match work — then scanned skipping the
    /// shard's refraction slice; the ledger is only taken lazily at the
    /// first unrefracted candidate, so the (quadratic) refracted-prefix
    /// skip runs on shard-local state alone.
    fn worker_step(&self, worker: usize) -> WorkerStep {
        let claim = loop {
            // ---- gate: termination / halt / commit cap ----
            {
                let mut ledger = self.ledger.lock().unwrap();
                if ledger.done {
                    return WorkerStep::Finished;
                }
                if self.capped(&ledger) {
                    if ledger.inflight == 0 {
                        ledger.done = true;
                        drop(ledger);
                        self.cv.notify_all();
                        return WorkerStep::Finished;
                    }
                    let _g = self.cv.wait(ledger).unwrap();
                    continue;
                }
            }
            // ---- scan the shards at a fixed watermark ----
            let w = self.pipeline.watermark();
            let shards = self.pipeline.shards();
            let mut saw_claimed = false;
            let mut found: Option<Instantiation> = None;
            'shards: for off in 0..shards {
                let s = (worker + off) % shards;
                let mut state = self.pipeline.shard_state(s);
                self.pipeline
                    .catch_up(s, w, &mut state, true, self.obs.as_deref());
                // Lock order: shard → ledger. The guard is acquired at
                // the first candidate that survives the refraction skip
                // and held for the rest of this shard's scan.
                let mut ledger: Option<MutexGuard<'_, Ledger>> = None;
                for inst in state.rete.conflict_set().iter() {
                    let key = inst.key();
                    if state.refracted.contains(&key) {
                        continue;
                    }
                    let led = ledger.get_or_insert_with(|| self.ledger.lock().unwrap());
                    if led.done || self.capped(led) {
                        break 'shards; // re-gate at the loop top
                    }
                    if led.claimed.contains(&key) {
                        saw_claimed = true;
                        continue;
                    }
                    led.claimed.insert(key);
                    led.inflight += 1;
                    found = Some(inst.clone());
                    break 'shards;
                }
            }
            match found {
                Some(inst) => break inst,
                None => {
                    let mut ledger = self.ledger.lock().unwrap();
                    if ledger.done {
                        return WorkerStep::Finished;
                    }
                    // Sound termination: zero candidates across every
                    // shard at watermark `w`, nothing in flight, and no
                    // commit advanced the watermark since the scan began
                    // (commits bump the watermark *before* decrementing
                    // `inflight`, both before their condvar notify, so
                    // this re-check cannot miss one).
                    if !self.capped(&ledger)
                        && !saw_claimed
                        && ledger.inflight == 0
                        && self.pipeline.watermark() == w
                    {
                        if self.config.service {
                            // Service mode: quiescence is idleness, not
                            // termination — park until an external
                            // session commit publishes new WM state (or
                            // a stop request arrives). The timeout is a
                            // lost-wakeup safety net only.
                            let (g, _) = self
                                .cv
                                .wait_timeout(ledger, Duration::from_millis(10))
                                .unwrap();
                            drop(g);
                            continue;
                        }
                        ledger.done = true;
                        drop(ledger);
                        self.cv.notify_all();
                        return WorkerStep::Finished;
                    }
                    if ledger.inflight > 0 {
                        let _g = self.cv.wait(ledger).unwrap();
                    }
                    // else: the watermark moved (or a claimed key was
                    // released) — rescan immediately.
                }
            }
        };
        self.execute_claim(claim);
        WorkerStep::Worked
    }

    /// Runs one claimed instantiation as a transaction.
    fn execute_claim(&self, inst: Instantiation) {
        let key = inst.key();
        let rule = self.rules.get(inst.rule).expect("known rule").clone();
        // Serial fallback (governor step 3): a rule past its starvation
        // bound runs alone. The guard is strictly outermost — acquired
        // before `begin`/any lock request, dropped after commit/abort —
        // so it can never appear inside a lock-manager waits-for cycle
        // (a waiter on this mutex holds no locks yet).
        let _serial = self
            .governor
            .as_ref()
            .and_then(|g| g.serial_guard(rule.name.as_str()));
        let txn = self.lm.begin();
        self.ledger
            .lock()
            .unwrap()
            .claims_by_txn
            .insert(txn, key.clone());
        // Unwind guard: if anything below panics (an injected RHS
        // panic, a bug in an action evaluator), the transaction's locks
        // are released and its claim unclaimed as the unwind passes
        // through — a panicking worker must never leak locks, pins
        // (PinGuard handles those) or a wedged claim that deadlocks the
        // survivors. Disarmed on both ordinary exits, which do their
        // own (fuller) bookkeeping.
        let mut guard = ClaimGuard { engine: self, txn, key: key.clone(), armed: true };
        let mut worked = Duration::ZERO;
        let mut touched: Vec<u64> = Vec::new();
        let outcome = self.try_execute(txn, &inst, &rule, &mut worked, &mut touched);
        guard.armed = false;
        drop(guard);
        match outcome {
            Ok(()) => {
                if let Some(obs) = &self.obs {
                    obs.rule_fired(rule.name.as_str());
                }
                if let Some(g) = &self.governor {
                    g.on_commit(rule.name.as_str(), txn.0, self.obs.as_deref());
                }
            }
            Err(cause) => {
                // Abort path: release locks, unclaim, account. The lock
                // manager may already have auto-aborted the transaction
                // when it surfaced a doom/deadlock/timeout (`NotActive`
                // here is that benign race); anything else would mean
                // locks were leaked, so it is asserted in debug builds
                // and flagged in the event stream in release builds.
                match self.lm.abort(txn) {
                    Ok(()) | Err(dps_lock::LockError::NotActive(_)) => {}
                    Err(e) => {
                        debug_assert!(false, "abort of {txn:?} failed: {e:?}");
                        if let Some(obs) = &self.obs {
                            obs.record(txn.0, ObsEvent::Anomaly { what: "abort-failed" });
                        }
                    }
                }
                if let Some(obs) = &self.obs {
                    obs.record(txn.0, ObsEvent::Abort { cause: cause.to_obs() });
                    obs.rule_aborted(rule.name.as_str());
                }
                self.metrics.count_abort(&cause);
                self.metrics
                    .wasted_nanos
                    .fetch_add(worked.as_nanos() as u64, Relaxed);
                if matches!(cause, AbortCause::EvalError) {
                    // Permanently skip this instantiation: refract it on
                    // its rule's shard *before* unclaiming below, so no
                    // scanner can re-claim it in between (shard → ledger
                    // respects the lock order).
                    let s = self.pipeline.plan().shard_of(key.rule);
                    self.pipeline
                        .shard_state(s)
                        .refracted
                        .insert(key.clone());
                }
                let mut ledger = self.ledger.lock().unwrap();
                ledger.engine_doomed.remove(&txn);
                ledger.claims_by_txn.remove(&txn);
                ledger.claimed.remove(&key);
                ledger.inflight -= 1;
                drop(ledger);
                self.cv.notify_all();
                // Governor feedback + backoff (steps 1–2): contention
                // aborts earn a bounded, jittered retry delay and feed
                // the storm detector; stale claims and eval errors are
                // not contention and skip it. The sleep happens with no
                // lock held (ledger dropped, locks released).
                if let Some(g) = &self.governor {
                    if cause.is_contention() {
                        let delay = g.on_contention_abort(
                            rule.name.as_str(),
                            &touched,
                            txn.0,
                            self.obs.as_deref(),
                        );
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    }
                }
            }
        }
    }

    /// Lock mode for a resource, accounting for governor escalation:
    /// an escalated resource uses the pessimistic 2PL mode (`S`/`X`)
    /// instead of the optimistic production mode — the cross-protocol
    /// rows of [`dps_lock::compatible`] make any read/write mix
    /// incompatible, so escalated resources block instead of dooming.
    pub(crate) fn governed_mode(
        &self,
        res: ResourceId,
        optimistic: LockMode,
        pessimistic: LockMode,
    ) -> LockMode {
        match &self.governor {
            Some(g) if g.is_escalated(res_key(res)) => pessimistic,
            _ => optimistic,
        }
    }

    /// Engine-level revalidation (policy `Revalidate`): doom only the
    /// affected readers whose claimed instantiation the commit at `seq`
    /// actually invalidated. Claims are snapshotted under the ledger,
    /// checked against caught-up shards, and dooms re-verified against
    /// the *same* claim (shard → ledger order throughout; the caller
    /// holds the base mutex, so a doomed reader cannot be mid-commit).
    /// Shared by the rule commit path and external session commits.
    pub(crate) fn revalidate_readers(
        &self,
        readers: &[TxnId],
        seq: u64,
        obs: Option<&Recorder>,
    ) {
        let claims: Vec<(TxnId, InstKey)> = {
            let ledger = self.ledger.lock().unwrap();
            readers
                .iter()
                .filter_map(|r| ledger.claims_by_txn.get(r).map(|k| (*r, k.clone())))
                .collect()
        };
        for (reader, k) in claims {
            let s = self.pipeline.plan().shard_of(k.rule);
            let still_valid = {
                let mut state = self.pipeline.shard_state(s);
                self.pipeline.catch_up(s, seq, &mut state, false, obs);
                state.rete.conflict_set().contains(&k)
            };
            if !still_valid {
                let mut ledger = self.ledger.lock().unwrap();
                if ledger.claims_by_txn.get(&reader) == Some(&k) {
                    ledger.engine_doomed.insert(reader);
                }
            }
        }
    }

    fn try_execute(
        &self,
        txn: TxnId,
        inst: &Instantiation,
        rule: &dps_rules::Rule,
        worked: &mut Duration,
        touched: &mut Vec<u64>,
    ) -> Result<(), AbortCause> {
        let key = inst.key();
        let proto = self.config.protocol;
        let mvcc = matches!(self.config.policy, ConflictPolicy::MvccSnapshot);
        // Coordination avoidance: a rule the shard planner's static
        // commute matrix proved safe skips the lock manager entirely
        // and self-validates at commit (`ElidedCommit`). The decision
        // is per *component*, never per rule — either every rule that
        // can race on a class elides, or none does — so the §4
        // lock-order argument is undisturbed for the locking rules:
        // they never meet an elided firing on any resource.
        let elide = self.config.elide_locks
            && (self.config.elide_misclassify || self.pipeline.plan().elidable(key.rule));
        // OCC-style validation applies to both MVCC and elided firings;
        // they differ only in the abort cause they surface.
        let occ = mvcc || elide;
        let mut elided_skips: u32 = 0;
        // Phase clocks (None when observability is off). Samples are
        // recorded only when a phase completes; the lock-wait histogram
        // (recorded inside the lock manager) covers the blocked tails of
        // phases that abort mid-lock.
        let t_lhs = self.obs.as_ref().map(|_| Instant::now());

        // ---- condition (LHS) locks ----
        // Per-class tuple groups, so Rc escalation can promote a group
        // to one relation-level lock. The set is computed in every
        // mode; under MVCC it is not locked — it is the injection and
        // attribution surface only.
        let mut cond_resources: Vec<ResourceId> = Vec::new();
        let mut by_class: HashMap<&Atom, Vec<ResourceId>> = HashMap::new();
        for w in &inst.wmes {
            by_class
                .entry(&w.data.class)
                .or_default()
                .push(ResourceId::Tuple(w.id.0));
        }
        for (class, tuples) in by_class {
            match self.config.rc_escalation {
                Some(threshold) if tuples.len() > threshold => {
                    cond_resources.push(self.relation_resource(class));
                }
                _ => cond_resources.extend(tuples),
            }
        }
        for class in Footprint::negated_classes(rule) {
            cond_resources.push(self.relation_resource(class));
        }
        cond_resources.sort_unstable();
        cond_resources.dedup();
        // Contention attribution for the governor: the condition-read
        // set is the doom channel (`Rc` holders are who a committing
        // `Wa` kills) — and under MVCC the blame set of snapshot-stale
        // aborts — so these are the keys a storm escalates.
        touched.extend(cond_resources.iter().map(|r| res_key(*r)));
        if elide {
            // Lock-elision fast path: no `Rc` acquisition at all. The
            // skip is still *booked* per resource (stats attribution
            // and the chaos seam a lock request would have passed
            // through), so fault-injected A/B runs compare protocols
            // rather than injection surface areas.
            for res in &cond_resources {
                self.lm.elide(txn, *res).map_err(classify)?;
            }
            elided_skips += cond_resources.len() as u32;
        } else if !mvcc {
            for res in &cond_resources {
                let mode = self.governed_mode(*res, proto.condition_read(), LockMode::S);
                self.lm.lock(txn, *res, mode).map_err(classify)?;
            }
        } else {
            // No locks — but the chaos seam a lock request would have
            // passed through still fires, per resource, so fault-
            // injected A/B runs compare protocols rather than
            // injection surface areas.
            for res in &cond_resources {
                self.lm.inject_read(txn, *res).map_err(classify)?;
            }
        }

        // ---- re-validate the claim ----
        //
        // Lock-based modes: under the read locks. The watermark is read
        // under the base mutex, so every publish ≤ `w` is complete; the
        // shard is pinned to at least `w` before the membership check.
        // Any *later* commit that could invalidate this claim
        // necessarily conflicts with the `Rc` locks just acquired
        // (tuple `Wa`, or relation `Wa` vs our negated-class relation
        // `Rc`), so the lock manager dooms us — a stale shard view can
        // never carry a claim to commit.
        //
        // MVCC: pin a snapshot `w` instead (under the base mutex, so
        // `w` is a fully published prefix and the pin is registered
        // before any later GC floor computation can pass it). The
        // membership check at `w` plays the same role, but nothing
        // prevents later commits from invalidating the claim — that is
        // caught by commit-time self-validation, not here. The pin
        // floors version GC for the duration of the attempt; each
        // matched WME's version-at-snapshot is recorded for the SI
        // checker.
        let (_pin, snapshot) = {
            // Elided firings run the same snapshot-pin protocol as MVCC
            // (the PR 6 backward-OCC skeleton): with no locks held,
            // claim freshness is guaranteed by validation, not mutual
            // exclusion.
            let w = if occ {
                let base = self.pipeline.base.lock().unwrap();
                let w = base.next_seq - 1;
                self.pipeline.pin_snapshot(w);
                w
            } else {
                self.pipeline.base.lock().unwrap().next_seq - 1
            };
            let pin = occ.then(|| PinGuard {
                pipeline: &self.pipeline,
                snap: w,
            });
            if occ {
                if let Some(obs) = &self.obs {
                    obs.record(txn.0, ObsEvent::SnapshotPin { seq: w });
                }
            }
            let s = self.pipeline.plan().shard_of(key.rule);
            let mut state = self.pipeline.shard_state(s);
            self.pipeline
                .catch_up(s, w, &mut state, true, self.obs.as_deref());
            if !state.rete.conflict_set().contains(&key) {
                return Err(AbortCause::Stale);
            }
            drop(state);
            if occ {
                // Snapshot reads: every matched WME must be live at `w`
                // with exactly the matched timestamp (instantiation
                // identity includes timestamps, so a version mismatch
                // means the claim refers to a different era of the
                // tuple). Record the version sequence each read
                // observed — the reads-from edges of the SI polygraph.
                let versions = self.pipeline.versions();
                for wme in &inst.wmes {
                    match versions.version_at(wme.id, w) {
                        Some(v)
                            if v.state
                                .as_ref()
                                .is_some_and(|s| s.timestamp == wme.timestamp) =>
                        {
                            if let Some(obs) = &self.obs {
                                obs.record(
                                    txn.0,
                                    ObsEvent::VersionRead {
                                        resource: res_key(ResourceId::Tuple(wme.id.0)),
                                        seq: v.seq,
                                    },
                                );
                            }
                        }
                        _ if mvcc => return Err(AbortCause::SnapshotStale),
                        _ => return Err(AbortCause::ElisionStale),
                    }
                }
            }
            let ledger = self.ledger.lock().unwrap();
            if ledger.engine_doomed.contains(&txn) {
                return Err(AbortCause::Revalidation);
            }
            (pin, w)
        };
        let t_rhs = match (&self.obs, t_lhs) {
            (Some(obs), Some(t)) => {
                obs.phase(Phase::LhsEval, t.elapsed());
                Some(Instant::now())
            }
            _ => None,
        };

        // ---- simulated RHS work, polling for dooms ----
        // Note: polling touches only the lock manager and the ledger,
        // never the world — busy workers do not serialise the matcher.
        let budget = self.config.work.duration(&rule.name);
        if !budget.is_zero() {
            let busy = self.config.work.is_busy();
            let slice = Duration::from_micros(50).min(budget);
            let slice_us = slice.as_micros().max(1) as u64;
            // Busy mode completes a *quota of slices*, not a wall-clock
            // budget: on an oversubscribed machine the wall clock keeps
            // running while a worker is descheduled, and an elapsed
            // check would hand it that time as free work.
            let slices = (budget.as_micros().max(1) as u64).div_ceil(slice_us);
            let t0 = Instant::now();
            let mut step: u64 = 0;
            while if busy { step < slices } else { t0.elapsed() < budget } {
                if busy {
                    // CPU-bound RHS: burn one doom-poll slice of
                    // calibrated iterations.
                    spin_iters(slice_us * spin_iters_per_us());
                } else {
                    std::thread::sleep(slice);
                }
                step += 1;
                // Chaos seam: a seeded mid-RHS stall widens the window
                // in which a committing writer dooms this worker — the
                // doomed-poll below must still catch it before the next
                // action step. Stall time counts as worked (wasted on
                // abort).
                if let Some(inj) = &self.injector {
                    inj.rhs_stall(txn, step, self.obs.as_deref());
                }
                // Busy wasted work is the CPU actually burned (slices
                // completed), not elapsed time — a descheduled worker
                // wastes nothing while it isn't running.
                *worked = if busy {
                    Duration::from_micros(slice_us * step)
                } else {
                    t0.elapsed()
                };
                self.lm.check(txn).map_err(classify)?;
                let ledger = self.ledger.lock().unwrap();
                if ledger.engine_doomed.contains(&txn) {
                    return Err(AbortCause::Revalidation);
                }
            }
            *worked = budget;
        }

        // ---- compute the delta ----
        // Chaos seam: an injected RHS *panic* — unlike a stall or a
        // forced abort, the unwind must pass through the PinGuard and
        // ClaimGuard, which the leak-regression tests verify releases
        // every lock and snapshot pin.
        if let Some(inj) = &self.injector {
            if inj.rhs_panic(txn, 0, self.obs.as_deref()) {
                panic!("injected RHS panic (chaos plan rhs_panic_pm)");
            }
        }
        let (delta, halt) = instantiate_actions(rule, &inst.bindings, &inst.wmes)
            .map_err(|_| AbortCause::EvalError)?;

        // ---- action (RHS) locks ----
        let mut reads: Vec<ResourceId> = inst
            .wmes
            .iter()
            .map(|w| ResourceId::Tuple(w.id.0))
            .collect();
        reads.sort_unstable();
        reads.dedup();
        let mut writes: Vec<ResourceId> = delta
            .written_ids()
            .map(|id| ResourceId::Tuple(id.0))
            .collect();
        for class in delta.created_classes() {
            writes.push(self.relation_resource(class));
        }
        // A modify/remove also escalates to its class's relation lock so
        // negated readers of the class are serialised against it.
        for w in &inst.wmes {
            if delta.written_ids().any(|id| id == w.id) {
                writes.push(self.relation_resource(&w.data.class));
            }
        }
        writes.sort_unstable();
        writes.dedup();
        if elide {
            // The R_a/W_a fast path the commute matrix paid for: in the
            // locking protocol every make takes its class's relation
            // `Wa` and every modify escalates to one, so independent
            // firings of the same component convoy on the relation
            // lock. A provably-commutative component skips all of it;
            // each skip is still booked (stats + chaos parity).
            for res in &reads {
                if writes.contains(res) {
                    continue;
                }
                self.lm.elide(txn, *res).map_err(classify)?;
                elided_skips += 1;
            }
            for res in &writes {
                self.lm.elide(txn, *res).map_err(classify)?;
                elided_skips += 1;
            }
        } else {
            for res in &reads {
                if writes.contains(res) {
                    continue; // will take the write lock instead
                }
                let mode = self.governed_mode(*res, proto.action_read(), LockMode::S);
                self.lm.lock(txn, *res, mode).map_err(classify)?;
            }
            for res in &writes {
                let mode = self.governed_mode(*res, proto.action_write(), LockMode::X);
                self.lm.lock(txn, *res, mode).map_err(classify)?;
            }
        }
        let t_commit = match (&self.obs, t_rhs) {
            (Some(obs), Some(t)) => {
                obs.phase(Phase::RhsAct, t.elapsed());
                Some(Instant::now())
            }
            _ => None,
        };

        // ---- commit ----
        // The base mutex is the commit critical section: lm.commit, WM
        // delta apply and batch publication happen under it, so commit
        // order equals sequence order equals trace order (the Theorem 2
        // oracle replays the trace serially). The matcher is *not*
        // driven here — the batch is published to the delta log and
        // fanned out to the affected shards after the base is released.
        let obs = self.obs.as_deref();
        let mut base = self.pipeline.base.lock().unwrap();
        {
            // Engine-doom check. Dropping the ledger before lm.commit is
            // safe: engine dooms are only ever inserted by revalidation
            // passes, which run under the base mutex (held here).
            let ledger = self.ledger.lock().unwrap();
            if ledger.engine_doomed.contains(&txn) {
                return Err(AbortCause::Revalidation);
            }
        }
        // MVCC commit-time self-validation: with no condition locks
        // held, nothing stopped concurrent commits from overwriting
        // this transaction's read set between its snapshot and now —
        // so the committer validates itself under the base mutex (the
        // same critical section every conflicting commit serialised
        // through). Fast path, against the version store alone: every
        // matched WME's *latest* version still carries the matched
        // timestamp, and no negated class was written past the
        // snapshot. If any check fails, fall back to the exact test —
        // catch the own shard up to the current published prefix and
        // ask whether the instantiation is (still / again) in the
        // conflict set; membership implies validity *at this commit
        // point*, which is precisely what the §3 serial-replay oracle
        // requires of the trace slot this commit is about to take.
        // Elided firings validate the same way (their locks were never
        // taken, so nothing else protects the read set) and abort with
        // `ElisionStale` instead. Deltas are materialised to absolute
        // values at RHS evaluation, so even two semantically-commuting
        // bumps of the same cell must not both apply from one snapshot
        // — the validation, not the commute judgment, is what makes the
        // fast path safe; the judgment only decides when it is safe to
        // *skip the locks*. The `elide_misclassify` probe switches this
        // check off precisely to let the manufactured lost update
        // through to the §3 oracle.
        if occ && !(elide && self.config.elide_misclassify) {
            let fast_ok = {
                let versions = self.pipeline.versions();
                inst.wmes.iter().all(|w| {
                    versions
                        .latest(w.id)
                        .is_some_and(|s| s.timestamp == w.timestamp)
                }) && Footprint::negated_classes(rule)
                    .into_iter()
                    .all(|class| versions.class_write_seq(class) <= snapshot)
            };
            if !fast_ok {
                let cur = base.next_seq - 1;
                let s = self.pipeline.plan().shard_of(key.rule);
                let mut state = self.pipeline.shard_state(s);
                self.pipeline.catch_up(s, cur, &mut state, false, obs);
                if !state.rete.conflict_set().contains(&key) {
                    return Err(if mvcc {
                        AbortCause::SnapshotStale
                    } else {
                        AbortCause::ElisionStale
                    });
                }
            }
        }
        let outcome = self.lm.commit(txn).map_err(classify)?;
        // Past this point the commit is irrevocable.
        let changes = base
            .wm
            .apply(&delta)
            .expect("committed firing only touches live WMEs");
        let seq = base.next_seq;
        base.next_seq += 1;
        // Durability: stage this commit's redo record *before* `publish`
        // consumes the batch. Staging runs under the base mutex, so
        // records enter the WAL in sequence order; the fsync (group
        // commit) waits until the critical section is over. A dead
        // writer (a kill point already fired) is ignored — the
        // in-memory run keeps going, and the chaos harness measures
        // what survived on disk.
        let mut checkpoint_snap: Option<Vec<u8>> = None;
        if let Some(durable) = &self.durable {
            let writer = durable.writer();
            // Kill-point seam: simulate process death at this commit.
            // The record's fate depends on the site — dropped on the
            // floor (died before the fsync), torn mid-frame, or made
            // durable first (died right after the fsync). Dropped and
            // torn stage + kill under one WAL-file lock acquisition
            // (`append_then_kill`): a concurrent group-commit flusher
            // must not slip between the two and make the doomed record
            // durable, or the site's horizon would be nondeterministic.
            let kill_site = self.injector.as_ref().and_then(|inj| inj.wal_kill(seq));
            let staged = match kill_site {
                None => writer.append(seq, &changes),
                Some(WalKillSite::AfterPublish) => {
                    writer.append_then_kill(seq, &changes, KillMode::Clean)
                }
                Some(WalKillSite::TornTail) => {
                    writer.append_then_kill(seq, &changes, KillMode::Torn)
                }
                Some(WalKillSite::AfterSync) => writer
                    .append(seq, &changes)
                    .and_then(|()| writer.flush().map(drop))
                    .and_then(|()| writer.kill(KillMode::Clean)),
            };
            match staged {
                Ok(()) => {
                    if kill_site.is_some() {
                        if let Some(inj) = &self.injector {
                            inj.count_wal_kill(txn, obs);
                        }
                    }
                }
                Err(WalError::Dead) => {}
                Err(e) => panic!("wal append at seq {seq}: {e}"),
            }
            // Checkpoint cadence: rotate the log under the base mutex
            // (cheap — flush + reopen), encode the snapshot under the
            // same mutex (it must capture exactly seq's state), and
            // defer the slow snapshot write to after the critical
            // section.
            let interval = self
                .config
                .durability
                .as_ref()
                .map_or(0, |d| d.checkpoint_interval);
            if interval > 0 && seq.is_multiple_of(interval) && !writer.is_dead() {
                let snap = base
                    .wm
                    .encode_snapshot()
                    .expect("checkpoint snapshot encodes");
                if durable.rotate(seq).is_ok() {
                    checkpoint_snap = Some(snap);
                }
            }
        }
        // Version-write footprint for the SI polygraph, captured before
        // `publish` consumes the batch (one entry per written tuple,
        // the installing sequence is this commit's).
        let written: Vec<u64> = if mvcc && obs.is_some() {
            let mut ids: Vec<u64> = changes
                .iter()
                .map(|c| res_key(ResourceId::Tuple(c.wme().id.0)))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        } else {
            Vec::new()
        };
        let affected = self.pipeline.publish(seq, changes, obs);
        // Own shard: catch up to the pre-commit state — where the
        // instantiation cannot have vanished (its read set was
        // lock-protected since re-validation, and a committed
        // conflicting writer would have failed the lm.commit above) —
        // then absorb the own batch and refract *before* the unclaim
        // below, closing the double-fire window.
        let own = self.pipeline.plan().shard_of(inst.rule);
        {
            let mut state = self.pipeline.shard_state(own);
            // A claim scanner may already have stolen this batch (the
            // watermark is visible the moment `publish` returns); the
            // pre-commit membership invariant is only checkable when
            // the shard is genuinely behind. `applied` is stable here:
            // we hold both the base mutex and the shard lock.
            if self.pipeline.applied(own) < seq {
                self.pipeline.catch_up(own, seq - 1, &mut state, false, obs);
                // The `elide_misclassify` probe commits stale claims on
                // purpose (validation bypassed) — the only path on
                // which this invariant may not hold.
                debug_assert!(
                    state.rete.conflict_set().contains(&key)
                        || (elide && self.config.elide_misclassify)
                );
                self.pipeline.catch_up(own, seq, &mut state, false, obs);
            }
            state.refracted.insert(key.clone());
            state.maybe_gc();
        }
        {
            let mut trace = self.trace.lock().unwrap();
            trace.firings.push(Firing {
                rule: inst.rule,
                rule_name: rule.name.clone(),
                key: key.clone(),
                delta,
                halt,
                external: false,
            });
            // Commit-sequence record for the semantic checker (§3
            // Theorem 2): this firing's 0-based slot in the global
            // trace, stamped while the trace lock is still held so
            // `seq` order equals trace-append order. The Fire event
            // trails the lock manager's Commit terminal (the sequence
            // number only exists now); `validate_history` and the
            // checker both account for that.
            if let Some(obs) = obs {
                // Falsifiability seam: `corrupt_fire_seq` plans flip the
                // recorded slot's low bit so the §3 checker must reject
                // the history — proving the chaos gate can fail.
                let fire_seq = (trace.len() - 1) as u64;
                let fire_seq = self
                    .injector
                    .as_ref()
                    .map_or(fire_seq, |inj| inj.corrupt_seq(fire_seq));
                obs.record(
                    txn.0,
                    ObsEvent::Fire {
                        rule: obs.intern_rule(rule.name.as_str()),
                        seq: fire_seq,
                    },
                );
                // MVCC: the versions this commit installed. Trails the
                // Commit terminal like Fire (the sequence number only
                // exists now); the SI checker cross-checks `seq` against
                // the Fire slot (`seq == fire_seq + 1`).
                for res in &written {
                    obs.record(txn.0, ObsEvent::VersionWrite { resource: *res, seq });
                }
                // Coordination-avoidance receipt: this commit went
                // through without a single lock acquisition — the
                // count is every `Rc`/`Ra`/`Wa` request the locking
                // protocol would have made. Trails Commit like Fire.
                if elide {
                    obs.record(txn.0, ObsEvent::ElidedCommit { resources: elided_skips });
                }
            }
        }
        // Engine-level revalidation (policy `Revalidate`): doom only the
        // affected readers whose instantiation this commit invalidated.
        // Claims are snapshotted under the ledger, checked against
        // caught-up shards, and dooms re-verified against the *same*
        // claim (shard → ledger order throughout; still under base, so
        // the doomed reader cannot be mid-commit).
        if !outcome.needs_revalidation.is_empty() {
            self.revalidate_readers(&outcome.needs_revalidation, seq, obs);
        }
        {
            let mut ledger = self.ledger.lock().unwrap();
            // Incremented under the ledger so the claim gate's cap
            // check stays exact.
            self.metrics.commits.fetch_add(1, Relaxed);
            ledger.halted |= halt;
            ledger.claims_by_txn.remove(&txn);
            ledger.claimed.remove(&key);
            ledger.inflight -= 1;
        }
        drop(base);
        if let (Some(obs), Some(t)) = (obs, t_commit) {
            obs.phase(Phase::Commit, t.elapsed());
        }
        self.cv.notify_all();
        // Fan the batch out to the remaining affected shards *outside*
        // the commit critical section — the pipeline half of the
        // design: match work overlaps the next commit.
        self.pipeline.fan_out(&affected, seq, obs);
        // Durability tail, with no engine lock held: the deferred
        // checkpoint-snapshot install, then the group-commit request
        // for this sequence number. `request_sync` is non-blocking for
        // piggybackers — one committer at a time holds the flush baton
        // and fsyncs for everyone, so workers keep firing while the
        // disk catches up (the durable horizon trails the published one
        // by at most the in-flight batch, exactly the prefix-loss the
        // recovery gate sweeps). A dead writer means a kill point
        // fired — the commit stays visible in memory and simply never
        // becomes durable, which is the condition recovery is tested
        // against.
        if let Some(durable) = &self.durable {
            if let Some(snap) = &checkpoint_snap {
                if durable.install_checkpoint(seq, snap).is_ok() {
                    if let Some(obs) = obs {
                        obs.record(txn.0, ObsEvent::Checkpoint { seq });
                    }
                }
            }
            if let Ok(Some(horizon)) = durable.writer().request_sync(seq) {
                if let Some(obs) = obs {
                    obs.record(txn.0, ObsEvent::WalSync { seq: horizon });
                }
            }
        }
        Ok(())
    }
}

/// Unpins an MVCC read snapshot when the execution attempt ends
/// (commit or abort on any path), releasing its version-GC floor.
pub(crate) struct PinGuard<'a> {
    pub(crate) pipeline: &'a MatchPipeline,
    pub(crate) snap: u64,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.pipeline.unpin_snapshot(self.snap);
    }
}

/// Panic-unwind insurance for a claimed transaction: if the worker
/// unwinds between claim and commit (injected RHS panic, evaluator
/// bug), the drop releases the transaction's locks and unclaims the
/// instantiation so surviving workers neither deadlock on leaked locks
/// nor wait forever on a wedged in-flight count. Ordinary commit/abort
/// paths disarm it and do their own (fuller) bookkeeping.
struct ClaimGuard<'a> {
    engine: &'a ParallelEngine,
    txn: TxnId,
    key: InstKey,
    armed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let _ = self.engine.lm.abort(self.txn);
        // Defensive on the unwind path: a poisoned ledger means another
        // worker already died holding it — nothing left to salvage.
        if let Ok(mut ledger) = self.engine.ledger.lock() {
            ledger.engine_doomed.remove(&self.txn);
            ledger.claims_by_txn.remove(&self.txn);
            ledger.claimed.remove(&self.key);
            ledger.inflight -= 1;
        }
        self.engine.cv.notify_all();
    }
}

pub(crate) enum AbortCause {
    Doomed,
    Deadlock,
    Stale,
    Revalidation,
    EvalError,
    Timeout,
    Injected,
    /// MVCC commit-time self-validation failed (read set overwritten
    /// since the pinned snapshot).
    SnapshotStale,
    /// Lock-elided commit-time self-validation failed: a matched tuple
    /// of a provably-commutative firing changed between claim and
    /// commit (e.g. two bump rules racing on one cell — their deltas
    /// were materialised from the same snapshot, so the second apply
    /// would lose the first's update).
    ElisionStale,
}

impl AbortCause {
    /// The matching cause in the observability taxonomy.
    pub(crate) fn to_obs(&self) -> dps_obs::AbortCause {
        match self {
            AbortCause::Doomed => dps_obs::AbortCause::Doomed,
            AbortCause::Deadlock => dps_obs::AbortCause::Deadlock,
            AbortCause::Stale => dps_obs::AbortCause::Stale,
            AbortCause::Revalidation => dps_obs::AbortCause::Revalidation,
            AbortCause::EvalError => dps_obs::AbortCause::EvalError,
            AbortCause::Timeout => dps_obs::AbortCause::Timeout,
            AbortCause::Injected => dps_obs::AbortCause::Injected,
            AbortCause::SnapshotStale => dps_obs::AbortCause::SnapshotStale,
            AbortCause::ElisionStale => dps_obs::AbortCause::ElisionStale,
        }
    }

    /// `true` for causes that mean "concurrent productions collided"
    /// (or chaos made them appear to) — the ones the governor's storm
    /// detector and backoff should react to. Stale claims and RHS
    /// evaluation errors are not contention. Snapshot-stale aborts
    /// *are*: under MVCC they are the only remaining signal of genuine
    /// write overlap, so the governor's backoff/escalation reacts to
    /// them exactly as it did to dooms (the reader-abort channels it
    /// used to watch are structurally zero in that mode).
    fn is_contention(&self) -> bool {
        matches!(
            self,
            AbortCause::Doomed
                | AbortCause::Deadlock
                | AbortCause::Revalidation
                | AbortCause::Timeout
                | AbortCause::Injected
                | AbortCause::SnapshotStale
                | AbortCause::ElisionStale
        )
    }
}

pub(crate) fn classify(e: dps_lock::LockError) -> AbortCause {
    match e {
        dps_lock::LockError::DoomedByWriter { .. } => AbortCause::Doomed,
        dps_lock::LockError::Deadlock(_) => AbortCause::Deadlock,
        dps_lock::LockError::Timeout(_) => AbortCause::Timeout,
        dps_lock::LockError::Injected(_) => AbortCause::Injected,
        dps_lock::LockError::NotActive(_) => AbortCause::Stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::validate_trace;
    use dps_wm::{Value, WmeData};

    fn run_with(
        rules: &RuleSet,
        wm: WorkingMemory,
        config: ParallelConfig,
    ) -> (ParallelReport, WorkingMemory) {
        let initial = wm.clone();
        let mut e = ParallelEngine::new(rules, wm, config);
        let report = e.run();
        // Every run must satisfy Definition 3.2.
        validate_trace(rules, &initial, &report.trace).expect("semantic consistency");
        let final_wm = e.final_wm();
        (report, final_wm)
    }

    fn counters(n: usize, start: i64) -> (RuleSet, WorkingMemory) {
        let rules =
            RuleSet::parse("(p bump (cell ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))").unwrap();
        let mut wm = WorkingMemory::new();
        for _ in 0..n {
            wm.insert(WmeData::new("cell").with("n", start));
        }
        (rules, wm)
    }

    #[test]
    fn parallel_counters_drain_correctly() {
        let (rules, wm) = counters(6, 3);
        let (report, final_wm) = run_with(&rules, wm, ParallelConfig::default());
        assert_eq!(report.commits, 18);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
    }

    #[test]
    fn two_phase_protocol_also_correct() {
        let (rules, wm) = counters(4, 2);
        let cfg = ParallelConfig {
            protocol: Protocol::TwoPhase,
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 8);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
    }

    #[test]
    fn revalidate_policy_correct() {
        let (rules, wm) = counters(4, 2);
        let cfg = ParallelConfig {
            policy: ConflictPolicy::Revalidate,
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 8);
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let (rules, wm) = counters(3, 2);
        let cfg = ParallelConfig {
            workers: 1,
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 6);
        assert_eq!(report.aborts.total(), 0, "no contention with one worker");
    }

    #[test]
    fn halt_ends_run() {
        let rules = RuleSet::parse("(p stop (go) --> (remove 1) (halt))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go"));
        let (report, _) = run_with(&rules, wm, ParallelConfig::default());
        assert!(report.halted);
        assert_eq!(report.commits, 1);
    }

    #[test]
    fn commit_cap_respected() {
        let rules = RuleSet::parse("(p spin (c ^n <n>) --> (modify 1 ^n (+ <n> 1)))").unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("c").with("n", 0i64));
        let cfg = ParallelConfig {
            max_commits: 5,
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 5);
    }

    #[test]
    fn contended_writes_serialize_correctly() {
        // Many rules all modifying one shared accumulator: heavy Rc–Wa
        // conflict; total must still equal the serial result.
        let rules = RuleSet::parse(
            "(p apply (delta ^v <d>) (acc ^total <t>)
               --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        let mut expected = 0i64;
        for i in 1..=10i64 {
            wm.insert(WmeData::new("delta").with("v", i));
            expected += i;
        }
        wm.insert(WmeData::new("acc").with("total", 0i64));
        let (report, final_wm) = run_with(&rules, wm, ParallelConfig::default());
        assert_eq!(report.commits, 10);
        let acc = final_wm.class_iter("acc").next().unwrap();
        assert_eq!(acc.get("total"), Some(&Value::Int(expected)));
    }

    #[test]
    fn elided_run_drains_with_zero_lock_acquisitions() {
        // The bump rule delta-writes the attribute it reads, so it
        // self-commutes and its (singleton) component elides: the whole
        // run must go through without one lock grant or block, every
        // skip booked in `LockStats::elided`, and the trace must still
        // replay serially (checked in run_with).
        let (rules, wm) = counters(6, 3);
        let cfg = ParallelConfig {
            elide_locks: true,
            observe: true,
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 18);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        assert_eq!(report.lock_stats.grants, 0, "no lock was ever acquired");
        assert_eq!(report.lock_stats.blocks, 0);
        assert!(report.lock_stats.elided > 0, "skips are booked");
    }

    #[test]
    fn unproven_component_keeps_the_locks() {
        // `store` writes an absolute value to the attribute `bump`
        // delta-writes: the pair does not commute, so the *whole*
        // cell-component locks — elision never mixes protocols within
        // a component.
        let rules = RuleSet::parse(
            "(p bump (cell ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))
             (p store (cell ^n { < 0 <n> }) --> (modify 1 ^n 0))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        for _ in 0..4 {
            wm.insert(WmeData::new("cell").with("n", 2i64));
        }
        let cfg = ParallelConfig {
            elide_locks: true,
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 8);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        assert_eq!(report.lock_stats.elided, 0, "nothing elides");
        assert!(report.lock_stats.grants > 0, "full §4 protocol in force");
    }

    #[test]
    fn elided_commits_appear_in_history() {
        let (rules, wm) = counters(2, 2);
        let initial = wm.clone();
        let cfg = ParallelConfig {
            elide_locks: true,
            observe: true,
            ..Default::default()
        };
        let mut e = ParallelEngine::new(&rules, wm, cfg);
        let report = e.run();
        validate_trace(&rules, &initial, &report.trace).expect("semantic consistency");
        let obs = e.observer().unwrap();
        let history = obs.history();
        dps_obs::validate_history(&history).expect("well-formed history");
        let elided = history
            .iter()
            .filter(|ev| matches!(ev.kind, dps_obs::EventKind::ElidedCommit { .. }))
            .count();
        assert_eq!(elided, report.commits, "one receipt per commit");
        assert_eq!(obs.report().elided_commits, elided as u64);
    }

    #[test]
    fn misclassify_probe_is_harmless_without_races() {
        // The falsifiability knob force-elides everything and bypasses
        // commit validation; with one worker there is no race to
        // exploit, so the run must still be serially valid — the knob
        // manufactures lost updates only out of genuine concurrency.
        let (rules, wm) = counters(3, 2);
        let cfg = ParallelConfig {
            elide_locks: true,
            elide_misclassify: true,
            workers: 1,
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 6);
    }

    #[test]
    fn negated_condition_uses_relation_escalation() {
        // quiet requires no alarm; raise creates one. Either order is
        // valid; the trace must replay single-threadedly (checked in
        // run_with) and both rules eventually account.
        let rules = RuleSet::parse(
            "(p quiet (go) -(alarm) --> (remove 1) (make calm))
             (p raise (trigger) --> (remove 1) (make alarm))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go"));
        wm.insert(WmeData::new("trigger"));
        let (report, final_wm) = run_with(&rules, wm, ParallelConfig::default());
        // raise always commits; quiet commits only if it ran first.
        assert!(report.commits >= 1 && report.commits <= 2);
        assert_eq!(final_wm.class_iter("alarm").count(), 1);
        let calm = final_wm.class_iter("calm").count();
        let quiet_fired = report.trace.names().contains(&"quiet");
        assert_eq!(calm, usize::from(quiet_fired));
    }

    #[test]
    fn doomed_readers_are_counted_under_load() {
        // With simulated work and many workers on one hot accumulator,
        // Rc–Wa dooms should actually occur (not guaranteed per run, so
        // aggregate over several runs).
        let rules = RuleSet::parse(
            "(p apply (delta ^v <d>) (acc ^total <t>)
               --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
        )
        .unwrap();
        let mut total_aborts = 0;
        for _ in 0..5 {
            let mut wm = WorkingMemory::new();
            for i in 1..=6i64 {
                wm.insert(WmeData::new("delta").with("v", i));
            }
            wm.insert(WmeData::new("acc").with("total", 0i64));
            let cfg = ParallelConfig {
                workers: 4,
                work: WorkModel::FixedMicros(300),
                ..Default::default()
            };
            let (report, final_wm) = run_with(&rules, wm, cfg);
            assert_eq!(report.commits, 6);
            let acc = final_wm.class_iter("acc").next().unwrap();
            assert_eq!(acc.get("total"), Some(&Value::Int(21)));
            total_aborts += report.aborts.total();
        }
        // Not asserting a minimum: scheduling may avoid conflicts, but
        // the counters must be internally consistent.
        let _ = total_aborts;
    }

    #[test]
    fn per_rule_work_model_applies() {
        let rules = RuleSet::parse(
            "(p slow (a) --> (remove 1))
             (p fast (b) --> (remove 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("a"));
        wm.insert(WmeData::new("b"));
        let mut durations = HashMap::new();
        durations.insert(Atom::from("slow"), 2_000u64);
        let cfg = ParallelConfig {
            workers: 2,
            work: WorkModel::PerRuleMicros(durations),
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 2);
        assert!(
            start.elapsed() >= Duration::from_micros(1_500),
            "slow rule busy-worked"
        );
    }

    #[test]
    fn full_escalation_remains_correct_under_both_policies() {
        // rc_escalation = Some(0): every condition lock is taken at
        // relation granularity — maximal false conflict, same results.
        for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::Revalidate] {
            let (rules, wm) = counters(4, 2);
            let cfg = ParallelConfig {
                rc_escalation: Some(0),
                policy,
                ..Default::default()
            };
            let (report, final_wm) = run_with(&rules, wm, cfg);
            assert_eq!(report.commits, 8, "policy {policy:?}");
            for cell in final_wm.class_iter("cell") {
                assert_eq!(cell.get("n"), Some(&Value::Int(0)));
            }
        }
    }

    #[test]
    fn high_threshold_escalation_never_triggers() {
        let (rules, wm) = counters(3, 2);
        let cfg = ParallelConfig {
            rc_escalation: Some(100),
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 6);
    }

    #[test]
    fn empty_system_finishes_immediately() {
        let rules = RuleSet::parse("(p r (never) --> (remove 1))").unwrap();
        let wm = WorkingMemory::new();
        let (report, _) = run_with(&rules, wm, ParallelConfig::default());
        assert_eq!(report.commits, 0);
        assert!(report.trace.is_empty());
    }

    #[test]
    fn quiet_fault_plan_is_invisible() {
        let (rules, wm) = counters(4, 2);
        let cfg = ParallelConfig {
            fault: Some(FaultPlan::quiet(7)),
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 8);
        assert_eq!(report.fault_stats.unwrap().total(), 0);
        assert_eq!(report.aborts.injected, 0);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
    }

    #[test]
    fn every_named_fault_plan_preserves_consistency() {
        // The tentpole property: under each chaos plan, for both
        // policies, the run terminates and its trace still replays
        // single-threadedly (checked inside run_with). Injected aborts
        // are accounted under their own cause, never an organic one.
        for (name, ctor) in FaultPlan::NAMED {
            for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::Revalidate] {
                let (rules, wm) = counters(4, 2);
                let cfg = ParallelConfig {
                    policy,
                    fault: Some(ctor(0xC0FFEE)),
                    work: WorkModel::FixedMicros(100),
                    ..Default::default()
                };
                let (report, final_wm) = run_with(&rules, wm, cfg);
                assert_eq!(report.commits, 8, "plan {name} policy {policy:?}");
                for cell in final_wm.class_iter("cell") {
                    assert_eq!(cell.get("n"), Some(&Value::Int(0)), "plan {name}");
                }
                let stats = report.fault_stats.unwrap();
                assert_eq!(
                    report.aborts.injected, stats.forced_aborts,
                    "plan {name}: every injected abort is accounted as Injected"
                );
            }
        }
    }

    #[test]
    fn governed_run_survives_a_doom_storm() {
        // Doom-storm plan + aggressive governor: the run must still
        // drain fully and replay, with the governor actually engaging
        // (backoffs observed; escalation permitted but not required —
        // the storm is probabilistic).
        let (rules, wm) = counters(6, 3);
        let cfg = ParallelConfig {
            workers: 4,
            fault: Some(FaultPlan::doom_storm(42)),
            governor: Some(crate::governor::GovernorConfig {
                backoff_base_us: 20,
                backoff_cap_us: 500,
                storm_window: 8,
                storm_threshold_pm: 400,
                escalate_after: 2,
                starvation_bound: 3,
                cooldown_commits: 4,
                seed: 42,
            }),
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 18);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        let gov = report.governor.unwrap();
        let faults = report.fault_stats.unwrap();
        if faults.forced_aborts > 0 {
            assert!(gov.backoffs > 0, "injected aborts must earn backoffs");
        }
    }

    #[test]
    fn governor_without_faults_changes_nothing() {
        let (rules, wm) = counters(4, 2);
        let cfg = ParallelConfig {
            governor: Some(crate::governor::GovernorConfig::default()),
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 8);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        let gov = report.governor.unwrap();
        assert_eq!(gov.escalations + gov.serializations, 0, "no storm, no action");
    }

    fn mvcc(cfg: ParallelConfig) -> ParallelConfig {
        ParallelConfig {
            policy: ConflictPolicy::MvccSnapshot,
            ..cfg
        }
    }

    #[test]
    fn mvcc_counters_drain_correctly() {
        let (rules, wm) = counters(6, 3);
        let (report, final_wm) = run_with(&rules, wm, mvcc(ParallelConfig::default()));
        assert_eq!(report.commits, 18);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        assert_eq!(report.aborts.reader_aborts(), 0, "MVCC readers are never doomed");
    }

    #[test]
    fn mvcc_contended_writes_serialize_correctly() {
        // The hot-accumulator workload: every firing reads + modifies
        // one shared tuple, the worst case for snapshot staleness. The
        // total must still equal the serial result, with conflicts
        // surfacing (if at all) as snapshot_stale — never as dooms.
        let rules = RuleSet::parse(
            "(p apply (delta ^v <d>) (acc ^total <t>)
               --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        let mut expected = 0i64;
        for i in 1..=10i64 {
            wm.insert(WmeData::new("delta").with("v", i));
            expected += i;
        }
        wm.insert(WmeData::new("acc").with("total", 0i64));
        let cfg = mvcc(ParallelConfig {
            workers: 4,
            work: WorkModel::FixedMicros(200),
            ..Default::default()
        });
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 10);
        let acc = final_wm.class_iter("acc").next().unwrap();
        assert_eq!(acc.get("total"), Some(&Value::Int(expected)));
        assert_eq!(report.aborts.doomed, 0);
        assert_eq!(report.aborts.revalidation, 0);
    }

    #[test]
    fn mvcc_negated_conditions_stay_sound() {
        // Negated CEs have no lock to escalate under MVCC — soundness
        // rests on the commit-time class-write check. Same invariants
        // as the lock-based variant of this test.
        let rules = RuleSet::parse(
            "(p quiet (go) -(alarm) --> (remove 1) (make calm))
             (p raise (trigger) --> (remove 1) (make alarm))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go"));
        wm.insert(WmeData::new("trigger"));
        let (report, final_wm) = run_with(&rules, wm, mvcc(ParallelConfig::default()));
        assert!(report.commits >= 1 && report.commits <= 2);
        assert_eq!(final_wm.class_iter("alarm").count(), 1);
        let calm = final_wm.class_iter("calm").count();
        let quiet_fired = report.trace.names().contains(&"quiet");
        assert_eq!(calm, usize::from(quiet_fired));
    }

    #[test]
    fn mvcc_under_doom_storm_has_zero_reader_aborts() {
        // The headline property: the chaos plan built to maximise dooms
        // cannot doom anyone when nobody holds condition locks. Only
        // injected aborts and snapshot staleness remain.
        let (rules, wm) = counters(6, 3);
        let cfg = mvcc(ParallelConfig {
            workers: 4,
            observe: true,
            fault: Some(FaultPlan::doom_storm(42)),
            work: WorkModel::FixedMicros(100),
            ..Default::default()
        });
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 18);
        for cell in final_wm.class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        assert_eq!(report.aborts.reader_aborts(), 0);
    }

    #[test]
    fn mvcc_history_passes_si_checker() {
        // The recorded snapshot/version events must reconstruct into a
        // consistent SI polygraph (and the analysis verdict must fold
        // it in).
        let (rules, wm) = counters(4, 2);
        let cfg = mvcc(ParallelConfig {
            workers: 4,
            observe: true,
            ..Default::default()
        });
        let initial = wm.clone();
        let mut e = ParallelEngine::new(&rules, wm, cfg);
        let report = e.run();
        validate_trace(&rules, &initial, &report.trace).expect("oracle");
        assert_eq!(report.commits, 8);
        let history = e.observer().unwrap().history();
        let si = dps_obs::analysis::si_checker::check_history(&history);
        assert_eq!(si.committed, 8, "every commit pinned a snapshot");
        assert!(
            si.violations.is_empty() && si.cycle.is_none(),
            "SI checker must accept a genuine MVCC run: {:?}",
            si.violations
        );
    }

    #[test]
    fn injected_aborts_flow_into_obs_taxonomy() {
        // Forced aborts at full odds: the engine retries until the
        // injector relents (new txn ids draw fresh odds)… with pm=1000
        // it never relents, so cap the run by max_commits=0 instead:
        // use a moderate rate and check taxonomy consistency.
        let (rules, wm) = counters(4, 2);
        let cfg = ParallelConfig {
            observe: true,
            fault: Some(FaultPlan {
                seed: 5,
                forced_abort_pm: 300,
                ..Default::default()
            }),
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg.clone());
        assert_eq!(report.commits, 8);
        // The obs report's injected-cause counter must equal the
        // engine's, which must equal the injector's forced-abort count.
        let stats = report.fault_stats.unwrap();
        assert_eq!(report.aborts.injected, stats.forced_aborts);
    }

    fn durability_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dps-engine-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_run_recovers_to_final_state() {
        let dir = durability_dir("final-state");
        let (rules, wm) = counters(5, 3);
        let cfg = ParallelConfig {
            durability: Some(DurabilityConfig {
                dir: dir.clone(),
                checkpoint_interval: 4,
            }),
            ..Default::default()
        };
        let (report, final_wm) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 15);
        let wal = report.wal.expect("durability attached");
        assert_eq!(wal.appends, 15, "one redo record per commit");
        assert!(wal.fsyncs >= 1, "at least one group-commit fsync");
        assert!(wal.checkpoints >= 1, "interval 4 over 15 commits checkpoints");
        let rec = dps_wm::recover(&dir).expect("clean shutdown recovers");
        assert_eq!(rec.last_seq, 15);
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.wm.encode_snapshot().unwrap(),
            final_wm.encode_snapshot().unwrap(),
            "recovered WM must be byte-identical to the final in-memory WM"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_point_loses_tail_then_resume_drains() {
        let dir = durability_dir("kill-resume");
        let (rules, wm) = counters(4, 3);
        let cfg = ParallelConfig {
            durability: Some(DurabilityConfig::at(&dir)),
            fault: Some(FaultPlan {
                wal_kill_commit: 5,
                wal_kill_site: WalKillSite::TornTail,
                ..Default::default()
            }),
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 12, "in-memory run drains despite the dead WAL");
        let stats = report.fault_stats.expect("fault plan attached");
        assert_eq!(stats.wal_kills, 1);
        // Recovery sees the durable prefix only: the torn record (and
        // everything after the kill) is gone.
        let rec = dps_wm::recover(&dir).expect("torn tail truncates cleanly");
        assert!(rec.last_seq < 12, "the tail after the kill must be lost");
        // A resumed engine continues the sequence space and drains the
        // recovered state to the same fixpoint.
        let mut resumed = ParallelEngine::resume(
            &rules,
            rec.wm.clone(),
            rec.last_seq,
            ParallelConfig {
                durability: Some(DurabilityConfig::at(&dir)),
                ..Default::default()
            },
        );
        let initial = rec.wm;
        let report2 = resumed.run();
        validate_trace(&rules, &initial, &report2.trace).expect("resumed run is consistent");
        assert_eq!(
            report2.commits as u64,
            12 - rec.last_seq,
            "exactly the lost work re-runs"
        );
        for cell in resumed.final_wm().class_iter("cell") {
            assert_eq!(cell.get("n"), Some(&Value::Int(0)));
        }
        // And the second incarnation's log recovers to the fixpoint.
        let rec2 = dps_wm::recover(&dir).expect("second incarnation recovers");
        assert_eq!(rec2.last_seq, 12);
        assert_eq!(
            rec2.wm.encode_snapshot().unwrap(),
            resumed.final_wm().encode_snapshot().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn after_sync_kill_keeps_the_killed_commit() {
        let dir = durability_dir("after-sync");
        let (rules, wm) = counters(2, 3);
        let cfg = ParallelConfig {
            workers: 1,
            durability: Some(DurabilityConfig::at(&dir)),
            fault: Some(FaultPlan {
                wal_kill_commit: 4,
                wal_kill_site: WalKillSite::AfterSync,
                ..Default::default()
            }),
            ..Default::default()
        };
        let (report, _) = run_with(&rules, wm, cfg);
        assert_eq!(report.commits, 6);
        let rec = dps_wm::recover(&dir).expect("recovers");
        assert_eq!(
            rec.last_seq, 4,
            "died right after the fsync: commit 4 is durable, 5.. are not"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
