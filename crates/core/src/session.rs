//! External session transactions: the engine half of the multi-session
//! front door.
//!
//! The paper's production-system setting assumes many concurrent
//! clients feeding working-memory changes into one shared engine; until
//! now the only writers were the engine's own rule firings. This module
//! lets an *external* client (a `dps-server` session) run a
//! transaction against the live engine — buffer inserts/removes, read
//! condition state, and commit through **the same commit critical
//! section** rule firings use, so external commits serialise with rule
//! commits, land in the same WAL, publish through the same delta log,
//! and appear in the same [`Trace`] (marked [`Firing::external`]; the
//! §3 oracle replays them by applying the delta verbatim — there is no
//! instantiation whose conflict-set membership could be checked).
//!
//! ## Locking
//!
//! External writes take the same action locks a rule RHS would: `Wa`
//! (or `X` under governor escalation) on written tuples and on the
//! relation of every created/written class — so a negated-condition
//! reader is serialised against a session insert exactly as against a
//! `make`. External *reads* ([`ParallelEngine::external_query`]) take a
//! relation `Rc` lock in lock-based modes and run lock-free
//! read-committed under MVCC. An external transaction therefore
//! participates in deadlock detection, doom, timeout and fault
//! injection like any rule transaction; every abort path releases its
//! locks and (under MVCC) its snapshot pin.
//!
//! ## Disconnect safety
//!
//! A session that dies mid-transaction leaves an [`ExternalTxn`] whose
//! owner will never speak again. [`ParallelEngine::external_abort`] is
//! the single cleanup path — idempotent at the lock manager (a
//! transaction already auto-aborted by doom/deadlock surfaces as the
//! benign `NotActive`), and unconditionally releasing the MVCC pin.
//! The server wraps every open transaction in a guard that routes all
//! exits (clean `Abort` frame, EOF, read timeout, handler panic)
//! through it; the engine's end-of-run `debug_assert`s and the
//! disconnect-chaos gate verify nothing leaks.

use std::sync::atomic::Ordering::Relaxed;

use dps_lock::{res_key, ConflictPolicy, LockMode, ResourceId, TxnId, WalKillSite};
use dps_match::{InstKey, Matcher};
use dps_obs::EventKind as ObsEvent;
use dps_rules::RuleId;
use dps_wm::wal::KillMode;
use dps_wm::{Atom, DeltaSet, WalError, WmeData, WmeId};

use crate::parallel::{classify, AbortCause, ParallelEngine, PinGuard};
use crate::Firing;

/// Sentinel rule id for external commits ([`Firing::rule`] must name
/// *something*; no real rule ever gets `u32::MAX`).
pub const EXTERNAL_RULE: RuleId = RuleId(u32::MAX);

/// Pseudo rule name external commits carry in traces, per-rule tables
/// and `Fire` events.
pub const EXTERNAL_RULE_NAME: &str = "@session";

/// One open external transaction: a lock-manager transaction, an
/// optional pinned MVCC snapshot, and the buffered delta. Plain data —
/// the engine is only touched through the `external_*` methods, and the
/// owner (a server session) must resolve it with
/// [`ParallelEngine::external_commit`] or
/// [`ParallelEngine::external_abort`] before forgetting it.
#[derive(Debug)]
pub struct ExternalTxn {
    txn: TxnId,
    /// Pinned snapshot sequence under MVCC (`None` in lock-based modes
    /// or after the pin was released).
    snapshot: Option<u64>,
    delta: DeltaSet,
}

impl ExternalTxn {
    /// The underlying lock-manager transaction id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Number of buffered delta operations.
    pub fn pending_ops(&self) -> usize {
        self.delta.ops().len()
    }
}

impl ParallelEngine {
    /// Opens an external transaction. Under MVCC a snapshot is pinned
    /// (flooring version GC) until the transaction resolves.
    pub fn external_begin(&self) -> ExternalTxn {
        let txn = self.lm.begin();
        let mvcc = matches!(self.config.policy, ConflictPolicy::MvccSnapshot);
        let snapshot = mvcc.then(|| {
            let base = self.pipeline.base.lock().unwrap();
            let w = base.next_seq - 1;
            self.pipeline.pin_snapshot(w);
            if let Some(obs) = &self.obs {
                obs.record(txn.0, ObsEvent::SnapshotPin { seq: w });
            }
            w
        });
        ExternalTxn { txn, snapshot, delta: DeltaSet::new() }
    }

    /// Buffers an insert. Takes the action-write lock on the class's
    /// relation (serialising against negated readers) before buffering;
    /// on any lock failure the transaction is fully aborted.
    pub fn external_insert(
        &self,
        xt: &mut ExternalTxn,
        data: WmeData,
    ) -> Result<(), dps_obs::AbortCause> {
        let res = self.relation_resource(&data.class);
        self.external_lock(xt, res, self.config.protocol.action_write(), LockMode::X)?;
        xt.delta.create(data);
        Ok(())
    }

    /// Buffers a remove of `id`. Takes the tuple write lock plus the
    /// relation write lock of the tuple's class (a removal can *enable*
    /// a negated reader). Fails — aborting the transaction — when the
    /// tuple does not exist.
    pub fn external_remove(
        &self,
        xt: &mut ExternalTxn,
        id: WmeId,
    ) -> Result<(), dps_obs::AbortCause> {
        let class: Atom = match self.pipeline.base.lock().unwrap().wm.get(id) {
            Some(w) => w.data.class.clone(),
            None => return Err(self.external_resolve_err(xt, AbortCause::Stale)),
        };
        let proto = self.config.protocol;
        self.external_lock(xt, ResourceId::Tuple(id.0), proto.action_write(), LockMode::X)?;
        let rel = self.relation_resource(&class);
        self.external_lock(xt, rel, proto.action_write(), LockMode::X)?;
        xt.delta.remove(id);
        Ok(())
    }

    /// Condition query: every live WME of `class`, as `(id, data)`
    /// pairs. Lock-based modes take the relation's condition-read lock
    /// (held to transaction end, so the read set is stable); MVCC reads
    /// lock-free read-committed state under the base mutex.
    pub fn external_query(
        &self,
        xt: &mut ExternalTxn,
        class: &str,
    ) -> Result<Vec<(u64, WmeData)>, dps_obs::AbortCause> {
        let mvcc = matches!(self.config.policy, ConflictPolicy::MvccSnapshot);
        if !mvcc {
            let atom = Atom::from(class);
            let rel = self.relation_resource(&atom);
            self.external_lock(xt, rel, self.config.protocol.condition_read(), LockMode::S)?;
        }
        let base = self.pipeline.base.lock().unwrap();
        Ok(base
            .wm
            .class_iter(class)
            .map(|w| (w.id.0, w.data.clone()))
            .collect())
    }

    /// Commits the buffered delta through the engine's commit critical
    /// section: lock-manager commit, WM apply, WAL staging, delta-log
    /// publish, trace append (as an external [`Firing`]) and reader
    /// revalidation — exactly the rule-firing commit path minus the
    /// instantiation-specific steps (refraction, own-shard catch-up).
    /// Returns the commit sequence number. On failure the transaction
    /// is fully aborted (locks + pin released).
    pub fn external_commit(&self, xt: &mut ExternalTxn) -> Result<u64, dps_obs::AbortCause> {
        let obs = self.obs.as_deref();
        let mvcc = matches!(self.config.policy, ConflictPolicy::MvccSnapshot);
        let delta = std::mem::take(&mut xt.delta);
        let mut base = self.pipeline.base.lock().unwrap();
        // Write-set validation: every modified/removed tuple must still
        // be live. Tuple write locks were taken when the ops were
        // buffered, but under MVCC (no read locks anywhere) a doomed
        // race is possible, and a client can name a bogus id outright.
        for id in delta.written_ids() {
            if base.wm.get(id).is_none() {
                drop(base);
                return Err(self.external_resolve_err(xt, AbortCause::Stale));
            }
        }
        let outcome = match self.lm.commit(xt.txn) {
            Ok(o) => o,
            Err(e) => {
                drop(base);
                return Err(self.external_resolve_err(xt, classify(e)));
            }
        };
        // Past this point the commit is irrevocable — mirror of the
        // rule path in `try_execute`.
        let changes = base
            .wm
            .apply(&delta)
            .expect("validated external delta applies");
        let seq = base.next_seq;
        base.next_seq += 1;
        let mut checkpoint_snap: Option<Vec<u8>> = None;
        if let Some(durable) = &self.durable {
            let writer = durable.writer();
            let kill_site = self.injector.as_ref().and_then(|inj| inj.wal_kill(seq));
            let staged = match kill_site {
                None => writer.append(seq, &changes),
                Some(WalKillSite::AfterPublish) => {
                    writer.append_then_kill(seq, &changes, KillMode::Clean)
                }
                Some(WalKillSite::TornTail) => {
                    writer.append_then_kill(seq, &changes, KillMode::Torn)
                }
                Some(WalKillSite::AfterSync) => writer
                    .append(seq, &changes)
                    .and_then(|()| writer.flush().map(drop))
                    .and_then(|()| writer.kill(KillMode::Clean)),
            };
            match staged {
                Ok(()) => {
                    if kill_site.is_some() {
                        if let Some(inj) = &self.injector {
                            inj.count_wal_kill(xt.txn, obs);
                        }
                    }
                }
                Err(WalError::Dead) => {}
                Err(e) => panic!("wal append at seq {seq}: {e}"),
            }
            let interval = self
                .config
                .durability
                .as_ref()
                .map_or(0, |d| d.checkpoint_interval);
            if interval > 0 && seq.is_multiple_of(interval) && !writer.is_dead() {
                let snap = base
                    .wm
                    .encode_snapshot()
                    .expect("checkpoint snapshot encodes");
                if durable.rotate(seq).is_ok() {
                    checkpoint_snap = Some(snap);
                }
            }
        }
        let written: Vec<u64> = if mvcc && obs.is_some() {
            let mut ids: Vec<u64> = changes
                .iter()
                .map(|c| res_key(ResourceId::Tuple(c.wme().id.0)))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        } else {
            Vec::new()
        };
        let affected = self.pipeline.publish(seq, changes, obs);
        {
            let mut trace = self.trace.lock().unwrap();
            trace.firings.push(Firing {
                rule: EXTERNAL_RULE,
                rule_name: Atom::from(EXTERNAL_RULE_NAME),
                key: InstKey { rule: EXTERNAL_RULE, wmes: Vec::new() },
                delta,
                halt: false,
                external: true,
            });
            if let Some(obs) = obs {
                let fire_seq = (trace.len() - 1) as u64;
                let fire_seq = self
                    .injector
                    .as_ref()
                    .map_or(fire_seq, |inj| inj.corrupt_seq(fire_seq));
                obs.record(
                    xt.txn.0,
                    ObsEvent::Fire { rule: obs.intern_rule(EXTERNAL_RULE_NAME), seq: fire_seq },
                );
                for res in &written {
                    obs.record(xt.txn.0, ObsEvent::VersionWrite { resource: *res, seq });
                }
            }
        }
        // Reader revalidation (policy `Revalidate`): an external write
        // invalidates claimed instantiations exactly like a rule's.
        if !outcome.needs_revalidation.is_empty() {
            self.revalidate_readers(&outcome.needs_revalidation, seq, obs);
        }
        self.external_commits.fetch_add(1, Relaxed);
        drop(base);
        if let Some(obs) = obs {
            obs.rule_fired(EXTERNAL_RULE_NAME);
        }
        // Wake parked workers: the published batch may have created new
        // instantiations (service mode parks at quiescence). `kick`
        // orders the notify against the claim gate's check-then-wait.
        self.kick();
        self.pipeline.fan_out(&affected, seq, obs);
        if let Some(durable) = &self.durable {
            if let Some(snap) = &checkpoint_snap {
                if durable.install_checkpoint(seq, snap).is_ok() {
                    if let Some(obs) = obs {
                        obs.record(xt.txn.0, ObsEvent::Checkpoint { seq });
                    }
                }
            }
            if let Ok(Some(horizon)) = durable.writer().request_sync(seq) {
                if let Some(obs) = obs {
                    obs.record(xt.txn.0, ObsEvent::WalSync { seq: horizon });
                }
            }
        }
        self.release_pin(xt);
        Ok(seq)
    }

    /// Aborts an external transaction: lock-manager abort (idempotent —
    /// `NotActive` means a doom/deadlock/timeout already auto-aborted
    /// it), snapshot unpin, abort event + counters. The disconnect
    /// cleanup path: the server routes every dying session's open
    /// transaction through here.
    pub fn external_abort(&self, xt: &mut ExternalTxn, cause: dps_obs::AbortCause) {
        let internal = match cause {
            dps_obs::AbortCause::Doomed => AbortCause::Doomed,
            dps_obs::AbortCause::Deadlock => AbortCause::Deadlock,
            dps_obs::AbortCause::Revalidation => AbortCause::Revalidation,
            dps_obs::AbortCause::EvalError => AbortCause::EvalError,
            dps_obs::AbortCause::Timeout => AbortCause::Timeout,
            dps_obs::AbortCause::Injected => AbortCause::Injected,
            dps_obs::AbortCause::SnapshotStale => AbortCause::SnapshotStale,
            _ => AbortCause::Stale,
        };
        let _ = self.external_resolve_err(xt, internal);
    }

    /// Shared failure path: abort at the lock manager, release the pin,
    /// emit the abort event, count the cause. Returns the public cause
    /// so callers can `return Err(self.external_resolve_err(..))`.
    fn external_resolve_err(&self, xt: &mut ExternalTxn, cause: AbortCause) -> dps_obs::AbortCause {
        match self.lm.abort(xt.txn) {
            Ok(()) | Err(dps_lock::LockError::NotActive(_)) => {}
            Err(e) => {
                debug_assert!(false, "external abort of {:?} failed: {e:?}", xt.txn);
                if let Some(obs) = &self.obs {
                    obs.record(xt.txn.0, ObsEvent::Anomaly { what: "abort-failed" });
                }
            }
        }
        self.release_pin(xt);
        xt.delta = DeltaSet::new();
        let public = cause.to_obs();
        if let Some(obs) = &self.obs {
            obs.record(xt.txn.0, ObsEvent::Abort { cause: public });
            obs.rule_aborted(EXTERNAL_RULE_NAME);
        }
        self.metrics.count_abort(&cause);
        public
    }

    /// Single or compound lock acquisition for external ops; any error
    /// resolves the whole transaction.
    fn external_lock(
        &self,
        xt: &mut ExternalTxn,
        res: ResourceId,
        optimistic: LockMode,
        pessimistic: LockMode,
    ) -> Result<(), dps_obs::AbortCause> {
        let mode = self.governed_mode(res, optimistic, pessimistic);
        self.lm
            .lock(xt.txn, res, mode)
            .map_err(|e| self.external_resolve_err(xt, classify(e)))
    }

    /// Drops the MVCC snapshot pin, if one is still registered. Routed
    /// through [`PinGuard`] so the pin-release logic has exactly one
    /// home.
    fn release_pin(&self, xt: &mut ExternalTxn) {
        if let Some(snap) = xt.snapshot.take() {
            drop(PinGuard { pipeline: &self.pipeline, snap });
        }
    }

    /// Blocks until the rule engine is quiescent *at the current
    /// watermark*: no unrefracted instantiation on any shard, nothing
    /// claimed or in flight, and no commit moved the watermark during
    /// the scan. Also returns when the run is done, halted or capped
    /// (the drain barrier must not outlive the engine). The server's
    /// `Invoke` barrier and graceful drain both sit on this.
    pub fn await_quiescence(&self) {
        loop {
            let w = self.pipeline.watermark();
            let shards = self.pipeline.shards();
            let mut busy = false;
            'scan: for s in 0..shards {
                let mut state = self.pipeline.shard_state(s);
                self.pipeline
                    .catch_up(s, w, &mut state, true, self.obs.as_deref());
                for inst in state.rete.conflict_set().iter() {
                    if !state.refracted.contains(&inst.key()) {
                        busy = true;
                        break 'scan;
                    }
                }
            }
            let ledger = self.ledger.lock().unwrap();
            if ledger.done {
                return;
            }
            if !busy && ledger.inflight == 0 && self.pipeline.watermark() == w {
                return;
            }
            // Parked on the same condvar commits notify; the timeout is
            // a safety net against wakeups this scan cannot observe.
            let _ = self
                .cv
                .wait_timeout(ledger, std::time::Duration::from_millis(2))
                .unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::validate_trace;
    use crate::{ParallelConfig, ParallelEngine};
    use dps_rules::RuleSet;
    use dps_wm::{Value, WorkingMemory};

    fn accumulator_rules() -> RuleSet {
        RuleSet::parse(
            "(p apply (delta ^key <k> ^v <v>) (acc ^key <k> ^total <t>)
               --> (remove 1) (modify 2 ^total (+ <t> <v>)))",
        )
        .unwrap()
    }

    fn acc_wm(keys: i64) -> WorkingMemory {
        let mut wm = WorkingMemory::new();
        for k in 0..keys {
            wm.insert(WmeData::new("acc").with("key", k).with("total", 0i64));
        }
        wm
    }

    fn total_of(wm: &WorkingMemory) -> i64 {
        wm.class_iter("acc")
            .map(|w| match w.data.get("total") {
                Some(Value::Int(n)) => *n,
                _ => 0,
            })
            .sum()
    }

    /// External commits feed the rule engine in service mode: inserts
    /// from outside `run_shared` fire rules data-driven, the trace
    /// (rule firings interleaved with external commits) replays through
    /// the §3 oracle, and the drain leaves no locks or pins.
    #[test]
    fn external_commits_drive_rules_in_service_mode() {
        for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::MvccSnapshot] {
            let rules = accumulator_rules();
            let initial = acc_wm(4);
            let engine = ParallelEngine::new(
                &rules,
                initial.clone(),
                ParallelConfig {
                    service: true,
                    workers: 2,
                    policy,
                    ..ParallelConfig::default()
                },
            );
            let report = std::thread::scope(|scope| {
                let run = scope.spawn(|| engine.run_shared());
                for i in 0..20i64 {
                    let mut xt = engine.external_begin();
                    engine
                        .external_insert(
                            &mut xt,
                            WmeData::new("delta").with("key", i % 4).with("v", 1i64),
                        )
                        .expect("insert admitted");
                    engine.external_commit(&mut xt).expect("commit");
                }
                engine.await_quiescence();
                engine.request_stop();
                run.join().expect("engine run")
            });
            assert_eq!(report.commits, 20, "every delta fired the rule");
            assert_eq!(engine.external_commit_count(), 20);
            assert_eq!(report.trace.len(), 40, "20 external + 20 rule commits");
            validate_trace(&rules, &initial, &report.trace).expect("oracle accepts");
            assert_eq!(total_of(&engine.final_wm()), 20);
            assert_eq!(engine.held_locks(), 0);
            assert_eq!(engine.snapshot_pins(), 0);
        }
    }

    /// A session dying mid-transaction (abort with buffered writes and
    /// locks held) releases everything; queries and removes work.
    #[test]
    fn external_abort_releases_locks_and_pins() {
        let rules = accumulator_rules();
        let engine = ParallelEngine::new(
            &rules,
            acc_wm(2),
            ParallelConfig {
                service: true,
                policy: ConflictPolicy::MvccSnapshot,
                ..ParallelConfig::default()
            },
        );
        // No engine run needed: external ops work against the idle
        // engine too (workers only matter for rule firings).
        let mut xt = engine.external_begin();
        assert_eq!(engine.snapshot_pins(), 1, "MVCC begin pins a snapshot");
        engine
            .external_insert(&mut xt, WmeData::new("delta").with("key", 0i64).with("v", 3i64))
            .unwrap();
        assert!(engine.held_locks() > 0, "insert holds its relation lock");
        assert!(xt.pending_ops() == 1);
        engine.external_abort(&mut xt, dps_obs::AbortCause::Timeout);
        assert_eq!(engine.held_locks(), 0);
        assert_eq!(engine.snapshot_pins(), 0);
        // Double abort is idempotent (disconnect cleanup may race a
        // protocol-level abort).
        engine.external_abort(&mut xt, dps_obs::AbortCause::Timeout);
        assert_eq!(engine.held_locks(), 0);

        // Query + remove round-trip.
        let mut xt = engine.external_begin();
        let rows = engine.external_query(&mut xt, "acc").unwrap();
        assert_eq!(rows.len(), 2);
        let (id, _) = rows[0].clone();
        engine.external_remove(&mut xt, WmeId(id)).unwrap();
        engine.external_commit(&mut xt).unwrap();
        let mut xt = engine.external_begin();
        assert_eq!(engine.external_query(&mut xt, "acc").unwrap().len(), 1);
        engine.external_abort(&mut xt, dps_obs::AbortCause::Stale);
        assert_eq!(engine.held_locks(), 0);
        assert_eq!(engine.snapshot_pins(), 0);

        // Removing a bogus id aborts the transaction cleanly.
        let mut xt = engine.external_begin();
        let err = engine.external_remove(&mut xt, WmeId(9999)).unwrap_err();
        assert_eq!(err, dps_obs::AbortCause::Stale);
        assert_eq!(engine.held_locks(), 0);
        assert_eq!(engine.snapshot_pins(), 0);
    }

    /// Leak regression (satellite 2): an RHS that *panics* mid-action
    /// must release every lock and snapshot pin through the drop-guard
    /// chain (PinGuard + ClaimGuard) as the unwind passes through the
    /// worker and out of `thread::scope`.
    #[test]
    fn panicking_rhs_leaks_nothing() {
        for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::MvccSnapshot] {
            let rules = accumulator_rules();
            let mut wm = acc_wm(2);
            for i in 0..4i64 {
                wm.insert(WmeData::new("delta").with("key", i % 2).with("v", 1i64));
            }
            let engine = ParallelEngine::new(
                &rules,
                wm,
                ParallelConfig {
                    workers: 1,
                    policy,
                    fault: Some(dps_lock::FaultPlan {
                        seed: 7,
                        rhs_panic_pm: 1000,
                        ..Default::default()
                    }),
                    ..ParallelConfig::default()
                },
            );
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.run_shared()
            }));
            assert!(outcome.is_err(), "rhs_panic_pm=1000 must panic the run");
            assert_eq!(engine.held_locks(), 0, "locks leaked through the unwind");
            assert_eq!(engine.snapshot_pins(), 0, "pins leaked through the unwind");
        }
    }
}
