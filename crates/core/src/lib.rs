//! # `dps-core` — the production-system engines
//!
//! The paper's primary contribution, implemented end to end:
//!
//! * [`SingleThreadEngine`] — the reference match–select–execute
//!   interpreter of §2, whose set of possible execution sequences
//!   *defines* correctness (§3, Definitions 3.1–3.2).
//! * [`StaticParallelEngine`] — Theorem 1's static approach: each cycle,
//!   a maximal set of mutually non-interfering instantiations fires in
//!   parallel.
//! * [`ParallelEngine`] — the dynamic approach of §4.2–4.3: worker
//!   threads execute RHSs as transactions under a pluggable lock
//!   protocol (conventional 2PL per Theorem 2, or the `Rc`/`Ra`/`Wa`
//!   scheme with abort-on-commit or revalidation).
//! * [`governor`] — the adaptive retry governor: bounded backoff on
//!   contention aborts, doom-storm detection, per-resource escalation
//!   to pessimistic 2PL modes, and a serial fallback past the
//!   starvation bound (graceful degradation when §5's degree of
//!   conflict spikes).
//! * [`abstract_model`] — the add/delete-set model of §3.3, used for
//!   execution-graph enumeration and the §5 analysis.
//! * [`semantics`] — the execution graph (Figure 3.1/3.2), `ES_single`
//!   enumeration, and trace validation: every engine records its commit
//!   sequence as a [`Trace`], and [`semantics::validate_trace`] checks the
//!   semantic-consistency condition `ES_M ⊆ ES_single` by replaying the
//!   trace as a single-thread execution.
//!
//! ```
//! use dps_core::{SingleThreadEngine, EngineConfig};
//! use dps_match::Strategy;
//! use dps_rules::RuleSet;
//! use dps_wm::{WorkingMemory, WmeData};
//!
//! let rules = RuleSet::parse(
//!     "(p count-down (counter ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))",
//! ).unwrap();
//! let mut wm = WorkingMemory::new();
//! wm.insert(WmeData::new("counter").with("n", 3i64));
//!
//! let mut engine = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
//! let report = engine.run();
//! assert_eq!(report.commits, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstract_model;
mod firing;
pub mod governor;
mod parallel;
mod pipeline;
pub mod semantics;
pub mod session;
mod single;
mod static_parallel;
mod world;

pub use firing::{Firing, Footprint, Trace};
pub use governor::{Governor, GovernorConfig, GovernorStats};
pub use parallel::{
    AbortStats, DurabilityConfig, ParallelConfig, ParallelEngine, ParallelReport, WorkModel,
};
pub use session::{ExternalTxn, EXTERNAL_RULE, EXTERNAL_RULE_NAME};
pub use single::{EngineConfig, RunReport, SingleThreadEngine, StepOutcome};
pub use static_parallel::{SelectionMode, StaticConfig, StaticParallelEngine, StaticReport};
