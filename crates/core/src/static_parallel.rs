//! The static approach (§4.1 / Theorem 1): fire a set of mutually
//! non-interfering productions per cycle.
//!
//! Two selection modes expose the paper's discussion directly:
//!
//! * [`SelectionMode::StaticRules`] — interference judged from the rules'
//!   static read/write sets (`dps_rules::analysis`), as a pre-execution
//!   partitioner would. Conservative: "the analyzer must behave in a
//!   conservative manner, sacrificing parallelism".
//! * [`SelectionMode::DynamicFootprints`] — interference judged from the
//!   *run-time* footprints of the candidate instantiations (matched WMEs
//!   and computed deltas), the information the paper notes static
//!   analysis cannot have. Strictly more parallelism, still
//!   serializability-safe (Theorem 1's argument applies unchanged: the
//!   batch's effects equal those of firing it in any serial order).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use dps_match::{InstKey, Instantiation, Matcher, Rete};
use dps_obs::{EventKind, Phase, Recorder};
use dps_rules::analysis::{interferes, rule_access, Granularity, RuleAccess};
use dps_rules::{instantiate_actions, RuleSet};
use dps_wm::{Atom, DeltaSet, WorkingMemory};

use crate::world::World;
use crate::{Firing, Footprint, Trace};

/// How batch members are checked for mutual non-interference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionMode {
    /// Rule-level static read/write sets at the given granularity.
    StaticRules(Granularity),
    /// Instantiation-level run-time footprints.
    DynamicFootprints,
}

/// Configuration of a static-parallel run.
#[derive(Clone, Debug)]
pub struct StaticConfig {
    /// Interference-checking mode.
    pub mode: SelectionMode,
    /// Maximum batch width (the number of processors, `N_p`).
    pub max_width: usize,
    /// Cycle cap.
    pub max_cycles: usize,
    /// Per-rule execution cost in abstract time units (default 1) —
    /// used for the analytic parallel-time accounting.
    pub rule_cost: HashMap<Atom, u64>,
}

impl Default for StaticConfig {
    fn default() -> Self {
        StaticConfig {
            mode: SelectionMode::DynamicFootprints,
            max_width: usize::MAX,
            max_cycles: 100_000,
            rule_cost: HashMap::new(),
        }
    }
}

/// Result of a static-parallel run.
#[derive(Clone, Debug)]
pub struct StaticReport {
    /// Cycles executed.
    pub cycles: usize,
    /// Total productions committed.
    pub commits: usize,
    /// Batch width per cycle.
    pub batch_sizes: Vec<usize>,
    /// Analytic serial time: Σ cost over all commits.
    pub serial_time: u64,
    /// Analytic parallel time: Σ over cycles of the batch's max cost.
    pub parallel_time: u64,
    /// The commit sequence (batch members recorded in application order,
    /// which is a witnessing serial order).
    pub trace: Trace,
    /// `true` if the run ended by `halt`.
    pub halted: bool,
}

impl StaticReport {
    /// Analytic speed-up (serial / parallel time).
    pub fn speedup(&self) -> f64 {
        if self.parallel_time == 0 {
            1.0
        } else {
            self.serial_time as f64 / self.parallel_time as f64
        }
    }
}

/// The static-approach engine. See the module docs.
pub struct StaticParallelEngine {
    rules: RuleSet,
    accesses: Vec<RuleAccess>,
    world: World,
    config: StaticConfig,
    refracted: HashSet<InstKey>,
    trace: Trace,
    halted: bool,
    /// Optional observability sink (batch-apply latency + per-rule table).
    obs: Option<Arc<Recorder>>,
}

impl StaticParallelEngine {
    /// Creates the engine.
    pub fn new(rules: &RuleSet, wm: WorkingMemory, config: StaticConfig) -> Self {
        let matcher = Rete::new(rules, &wm);
        let accesses = rules.rules().iter().map(rule_access).collect();
        StaticParallelEngine {
            rules: rules.clone(),
            accesses,
            world: World { wm, matcher },
            config,
            refracted: HashSet::new(),
            trace: Trace::default(),
            halted: false,
            obs: None,
        }
    }

    /// Attaches (or detaches) an observability recorder; each batch then
    /// contributes `lhs_eval` (candidate preparation + independent-set
    /// selection) and `commit` (batch apply) latency samples plus
    /// per-rule firing rows.
    pub fn set_observer(&mut self, obs: Option<Arc<Recorder>>) {
        self.obs = obs;
    }

    /// The current working memory.
    pub fn wm(&self) -> &WorkingMemory {
        &self.world.wm
    }

    fn cost(&self, name: &Atom) -> u64 {
        self.config.rule_cost.get(name).copied().unwrap_or(1)
    }

    /// Selects one batch of mutually non-interfering instantiations and
    /// fires it. Returns the batch size (0 = quiescent).
    fn cycle(&mut self) -> usize {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        // Candidate instantiations, deterministic order.
        let candidates: Vec<Instantiation> = self
            .world
            .matcher
            .conflict_set()
            .iter()
            .filter(|i| !self.refracted.contains(&i.key()))
            .cloned()
            .collect();
        if candidates.is_empty() {
            return 0;
        }

        // Pre-compute deltas (needed for footprints and for execution).
        let mut prepared: Vec<(Instantiation, DeltaSet, bool, Footprint)> = Vec::new();
        for inst in candidates {
            let rule = self.rules.get(inst.rule).expect("known rule");
            let Ok((delta, halt)) = instantiate_actions(rule, &inst.bindings, &inst.wmes) else {
                continue; // runtime eval error (e.g. div by zero): skip
            };
            let fp = Footprint::of(rule, &inst, &delta);
            prepared.push((inst, delta, halt, fp));
        }

        // Greedy maximal independent set.
        let mut batch: Vec<usize> = Vec::new();
        for i in 0..prepared.len() {
            if batch.len() >= self.config.max_width {
                break;
            }
            let ok = batch.iter().all(|&j| {
                let (a, b) = (&prepared[i], &prepared[j]);
                match self.config.mode {
                    SelectionMode::DynamicFootprints => !a.3.conflicts(&b.3),
                    SelectionMode::StaticRules(g) => {
                        let (ra, rb) = (
                            &self.accesses[a.0.rule.0 as usize],
                            &self.accesses[b.0.rule.0 as usize],
                        );
                        !interferes(ra, rb, g)
                    }
                }
            });
            if ok {
                batch.push(i);
            }
        }

        let t1 = match (&self.obs, t0) {
            (Some(obs), Some(t)) => {
                obs.phase(Phase::LhsEval, t.elapsed());
                Some(Instant::now())
            }
            _ => None,
        };

        // "Parallel" firing: the members are non-interfering, so applying
        // them in batch order is equivalent to every other order
        // (Theorem 1); the recorded order is the witnessing serial one.
        let mut max_cost = 0;
        for &i in &batch {
            let (inst, delta, halt, _) = &prepared[i];
            let rule_name = self.rules.get(inst.rule).expect("known").name.clone();
            max_cost = max_cost.max(self.cost(&rule_name));
            if let Some(obs) = &self.obs {
                obs.rule_fired(rule_name.as_str());
            }
            self.world.commit(
                &mut self.refracted,
                &mut self.trace,
                Firing {
                    rule: inst.rule,
                    rule_name: rule_name.clone(),
                    key: inst.key(),
                    delta: delta.clone(),
                    halt: *halt,
                    external: false,
                },
            );
            // Batch members are degenerate transactions; emit the same
            // Begin/Commit/Fire triple the dynamic engine produces so
            // static-mode histories feed the analysis pipeline (txn id
            // = 0-based trace position of the firing).
            if let Some(obs) = &self.obs {
                let seq = (self.trace.len() - 1) as u64;
                let rule_id = obs.intern_rule(rule_name.as_str());
                obs.record(seq, EventKind::Begin);
                obs.record(seq, EventKind::Commit);
                obs.record(seq, EventKind::Fire { rule: rule_id, seq });
            }
            if *halt {
                self.halted = true;
                break;
            }
        }
        self.world.gc_refracted(&mut self.refracted, 1024);
        if let (Some(obs), Some(t)) = (&self.obs, t1) {
            obs.phase(Phase::Commit, t.elapsed());
        }
        batch.len()
    }

    /// Runs to quiescence (or `halt` / cycle cap) and reports.
    pub fn run(&mut self) -> StaticReport {
        let mut batch_sizes = Vec::new();
        let mut parallel_time = 0;
        for _ in 0..self.config.max_cycles {
            let before = self.trace.len();
            let n = self.cycle();
            if n == 0 {
                break;
            }
            batch_sizes.push(n);
            let batch_max = self.trace.firings[before..]
                .iter()
                .map(|f| self.cost(&f.rule_name))
                .max()
                .unwrap_or(0);
            parallel_time += batch_max;
            if self.halted {
                break;
            }
        }
        let serial_time = self
            .trace
            .firings
            .iter()
            .map(|f| self.cost(&f.rule_name))
            .sum();
        StaticReport {
            cycles: batch_sizes.len(),
            commits: self.trace.len(),
            batch_sizes,
            serial_time,
            parallel_time,
            trace: self.trace.clone(),
            halted: self.halted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::validate_trace;
    use dps_wm::WmeData;

    /// N independent counters: fully parallelisable.
    fn independent(n: i64) -> (RuleSet, WorkingMemory) {
        let rules =
            RuleSet::parse("(p bump (cell ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))").unwrap();
        let mut wm = WorkingMemory::new();
        for _ in 0..n {
            wm.insert(WmeData::new("cell").with("n", 1i64));
        }
        (rules, wm)
    }

    #[test]
    fn independent_instantiations_fire_in_one_cycle() {
        let (rules, wm) = independent(8);
        let initial = wm.clone();
        let mut e = StaticParallelEngine::new(&rules, wm, StaticConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 8);
        assert_eq!(r.cycles, 1, "all 8 are pairwise non-interfering");
        assert_eq!(r.batch_sizes, vec![8]);
        assert!(validate_trace(&rules, &initial, &r.trace).is_ok());
    }

    #[test]
    fn static_rule_mode_is_conservative() {
        // Same rule fires on disjoint cells; rule-level analysis sees the
        // rule self-interfering (writes cell.n, reads cell.n) and
        // serialises — the paper's 'false interference'.
        let (rules, wm) = independent(4);
        let mut e = StaticParallelEngine::new(
            &rules,
            wm,
            StaticConfig {
                mode: SelectionMode::StaticRules(Granularity::ClassAttribute),
                ..Default::default()
            },
        );
        let r = e.run();
        assert_eq!(r.commits, 4);
        assert_eq!(r.cycles, 4, "one at a time under static analysis");
        assert!(r.speedup() <= 1.0 + f64::EPSILON);
    }

    #[test]
    fn dynamic_footprints_beat_static_on_speedup() {
        let (rules, wm) = independent(6);
        let run = |mode| {
            let mut e = StaticParallelEngine::new(
                &rules,
                wm.clone(),
                StaticConfig {
                    mode,
                    ..Default::default()
                },
            );
            e.run().speedup()
        };
        let dynamic = run(SelectionMode::DynamicFootprints);
        let static_ = run(SelectionMode::StaticRules(Granularity::Class));
        assert!(dynamic > static_, "dynamic {dynamic} vs static {static_}");
    }

    #[test]
    fn max_width_caps_batches() {
        let (rules, wm) = independent(9);
        let mut e = StaticParallelEngine::new(
            &rules,
            wm,
            StaticConfig {
                max_width: 3,
                ..Default::default()
            },
        );
        let r = e.run();
        assert_eq!(r.commits, 9);
        assert_eq!(r.cycles, 3);
        assert!(r.batch_sizes.iter().all(|&b| b <= 3));
    }

    #[test]
    fn conflicting_instantiations_are_split_across_cycles() {
        // Two rules both modify the same WME: they must serialise.
        let rules = RuleSet::parse(
            "(p inc (cell ^n <n>) (go) --> (modify 1 ^n (+ <n> 1)) (remove 2))
             (p dec (cell ^n <n>) (og) --> (modify 1 ^n (- <n> 1)) (remove 2))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("cell").with("n", 0i64));
        wm.insert(WmeData::new("go"));
        wm.insert(WmeData::new("og"));
        let initial = wm.clone();
        let mut e = StaticParallelEngine::new(&rules, wm, StaticConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 2);
        assert_eq!(r.cycles, 2, "write-write on the cell forbids batching");
        assert!(validate_trace(&rules, &initial, &r.trace).is_ok());
        let cell = e.wm().class_iter("cell").next().unwrap();
        assert_eq!(cell.get("n"), Some(&dps_wm::Value::Int(0)), "+1 then -1");
    }

    #[test]
    fn negated_reader_is_not_batched_with_maker() {
        let rules = RuleSet::parse(
            "(p quiet (go) -(alarm) --> (remove 1))
             (p raise (trigger) --> (make alarm) (remove 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("go"));
        wm.insert(WmeData::new("trigger"));
        let initial = wm.clone();
        let mut e = StaticParallelEngine::new(&rules, wm, StaticConfig::default());
        let r = e.run();
        // Whatever fires first, the trace must replay single-threadedly.
        assert!(validate_trace(&rules, &initial, &r.trace).is_ok());
        assert!(
            r.batch_sizes.iter().all(|&b| b == 1),
            "make(alarm) conflicts with -(alarm)"
        );
    }

    #[test]
    fn cost_model_feeds_speedup() {
        let (rules, wm) = independent(4);
        let mut cost = HashMap::new();
        cost.insert(Atom::from("bump"), 5);
        let mut e = StaticParallelEngine::new(
            &rules,
            wm,
            StaticConfig {
                rule_cost: cost,
                ..Default::default()
            },
        );
        let r = e.run();
        assert_eq!(r.serial_time, 20);
        assert_eq!(r.parallel_time, 5);
        assert!((r.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn halt_inside_batch_stops_run() {
        let rules = RuleSet::parse(
            "(p a (x) --> (remove 1) (halt))
             (p b (y) --> (remove 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("x"));
        wm.insert(WmeData::new("y"));
        let mut e = StaticParallelEngine::new(&rules, wm, StaticConfig::default());
        let r = e.run();
        assert!(r.halted);
    }
}
