//! Multi-threaded stress tests for the *sharded* lock manager: many
//! threads hammer the striped lock table with randomized lock streams,
//! commits and aborts, and we assert the global invariants that a lost
//! wakeup, a leaked queue entry or a double-count would violate:
//!
//! * **accounting** — every transaction that begins ends exactly once:
//!   `stats.commits + stats.aborts == begins`;
//! * **drainage** — after the storm, a probe transaction can immediately
//!   `X`-lock every resource (`try_lock` succeeds), i.e. no holder or
//!   waiter entry survived its transaction;
//! * **progress** — the whole run terminates (no thread parks forever),
//!   with deadlock detection and the timeout backstop breaking cycles.
//!
//! The manager is dependency-free, so the test carries its own tiny
//! SplitMix64 generator — deterministic per seed, so failures reproduce.

use std::sync::Arc;
use std::time::Duration;

use dps_lock::{ConflictPolicy, LockError, LockManager, LockMode, ResourceId};

/// Minimal SplitMix64 (the lock crate has no deps; keep the test
/// self-contained and deterministic).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0BAD_5EED_0BAD_5EED)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

const TUPLES: u64 = 24;
const RELATIONS: u32 = 4;

fn resource(rng: &mut Rng) -> ResourceId {
    if rng.chance(15) {
        ResourceId::Relation((rng.next() % RELATIONS as u64) as u32)
    } else {
        ResourceId::Tuple(rng.next() % TUPLES)
    }
}

/// One randomized transaction: lock a handful of resources (blocking or
/// probing), then commit or abort. Returns `true` on commit.
fn run_txn(mgr: &LockManager, rng: &mut Rng) -> bool {
    let txn = mgr.begin();
    let two_phase = rng.chance(50);
    let n_locks = 1 + rng.index(4);
    for _ in 0..n_locks {
        let res = resource(rng);
        let mode = if two_phase {
            [LockMode::S, LockMode::X][rng.index(2)]
        } else {
            [LockMode::Rc, LockMode::Ra, LockMode::Wa][rng.index(3)]
        };
        let result = if rng.chance(20) {
            // Non-blocking probe; a refusal is not an error.
            match mgr.try_lock(txn, res, mode) {
                Ok(_) => Ok(()),
                Err(e) => Err(e),
            }
        } else {
            mgr.lock(txn, res, mode)
        };
        match result {
            Ok(()) => {}
            Err(LockError::Timeout(_)) => {
                // Still active: the caller owns the abort.
                mgr.abort(txn).expect("timed-out txn is still abortable");
                return false;
            }
            Err(_) => return false, // doomed/deadlock: auto-aborted
        }
    }
    if rng.chance(70) {
        // An Err here is a doom at the last instant: auto-aborted.
        mgr.commit(txn).is_ok()
    } else {
        mgr.abort(txn).expect("live txn aborts cleanly");
        false
    }
}

/// After a storm, every resource must be immediately X-lockable: any
/// holder or waiter left behind (lost wakeup, leaked entry) fails this.
fn assert_table_drained(mgr: &LockManager) {
    let probe = mgr.begin();
    for t in 0..TUPLES {
        assert_eq!(
            mgr.try_lock(probe, ResourceId::Tuple(t), LockMode::X),
            Ok(true),
            "tuple {t} still held after all txns ended"
        );
    }
    for r in 0..RELATIONS {
        assert_eq!(
            mgr.try_lock(probe, ResourceId::Relation(r), LockMode::X),
            Ok(true),
            "relation {r} still held after all txns ended"
        );
    }
    mgr.commit(probe).unwrap();
}

fn storm(mgr: Arc<LockManager>, threads: usize, txns_per_thread: usize, seed: u64) {
    let commits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    let mut rng = Rng::new(seed.wrapping_add(i as u64));
                    let mut local = 0u64;
                    for _ in 0..txns_per_thread {
                        if run_txn(&mgr, &mut rng) {
                            local += 1;
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let begins = (threads * txns_per_thread) as u64;
    let stats = mgr.stats();
    assert_eq!(
        stats.commits + stats.aborts,
        begins,
        "every begun txn ends exactly once: {stats:?}"
    );
    assert_eq!(
        stats.commits, commits,
        "manager's commit counter agrees with the callers'"
    );
    assert_table_drained(&mgr);
}

#[test]
fn randomized_mixed_protocol_storm_abort_readers() {
    let mgr = Arc::new(LockManager::with_timeout(
        ConflictPolicy::AbortReaders,
        Duration::from_millis(200),
    ));
    storm(mgr, 12, 40, 0x00A1_1CE5);
}

#[test]
fn randomized_mixed_protocol_storm_revalidate() {
    let mgr = Arc::new(LockManager::with_timeout(
        ConflictPolicy::Revalidate,
        Duration::from_millis(200),
    ));
    storm(mgr, 12, 40, 0xB0B5);
}

#[test]
fn single_shard_storm_matches_invariants() {
    // shards = 1 collapses to the old centralised layout; the same
    // invariants must hold so the striping is behaviour-preserving.
    let mgr = Arc::new(LockManager::with_shards(ConflictPolicy::AbortReaders, 1));
    let commits_and_aborts_before = {
        let s = mgr.stats();
        s.commits + s.aborts
    };
    assert_eq!(commits_and_aborts_before, 0);
    storm(mgr, 8, 25, 42);
}

#[test]
fn hot_spot_storm_makes_progress() {
    // Every transaction X-locks the same tuple: maximal queueing. A
    // single lost wakeup deadlocks this test (caught by the harness
    // timeout); FIFO queues guarantee each waiter eventually runs.
    let mgr = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
    let threads = 8usize;
    let per = 20usize;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let mgr = Arc::clone(&mgr);
            scope.spawn(move || {
                for _ in 0..per {
                    let txn = mgr.begin();
                    mgr.lock(txn, ResourceId::Tuple(7), LockMode::X).unwrap();
                    mgr.commit(txn).unwrap();
                }
            });
        }
    });
    let stats = mgr.stats();
    assert_eq!(stats.commits, (threads * per) as u64);
    assert_eq!(stats.aborts, 0, "pure queueing, no conflicts to abort");
    assert_table_drained(&mgr);
}

#[test]
fn deadlock_storm_resolves() {
    // Pairs of resources locked in opposite orders: a deadlock factory.
    // Detection (plus the timeout backstop) must keep the run live and
    // the accounting exact.
    let mgr = Arc::new(LockManager::with_timeout(
        ConflictPolicy::AbortReaders,
        Duration::from_millis(500),
    ));
    let threads = 8usize;
    let per = 15usize;
    let commits: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    let mut rng = Rng::new(0xDEAD_10CC ^ i as u64);
                    let mut local = 0u64;
                    for _ in 0..per {
                        let txn = mgr.begin();
                        // Two tuples from a tiny pool, random order: ~50%
                        // of pairs invert some other thread's order.
                        let a = rng.next() % 4;
                        let b = rng.next() % 4;
                        let ok = mgr.lock(txn, ResourceId::Tuple(a), LockMode::X).is_ok()
                            && mgr.lock(txn, ResourceId::Tuple(b), LockMode::X).is_ok();
                        if ok {
                            if mgr.commit(txn).is_ok() {
                                local += 1;
                            }
                        } else if mgr.is_active(txn) {
                            // Timeout path: manual abort.
                            mgr.abort(txn).unwrap();
                        }
                        // Deadlock/doom path: already auto-aborted.
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let stats = mgr.stats();
    assert_eq!(stats.commits + stats.aborts, (threads * per) as u64);
    assert_eq!(stats.commits, commits);
    assert!(
        commits > 0,
        "at least the deadlock survivors make progress"
    );
    assert_table_drained(&mgr);
}
