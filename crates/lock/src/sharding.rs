//! The striped lock table.
//!
//! Resources hash to one of N independent shards; each shard is a
//! `Mutex<HashMap<ResourceId, Entry>>`. Two transactions touching
//! resources in different shards never contend on a manager-level lock —
//! this is the refactor that removes the former process-wide
//! `Mutex<State>` from every `lock`/`try_lock` call.
//!
//! Per-resource FIFO waiter queues are preserved inside each [`Entry`],
//! so the fairness guarantees of the old centralised design (no reader
//! overtakes a queued writer) carry over shard-locally — and since a
//! queue is per *resource*, shard-local FIFO is exactly resource FIFO.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Mutex;

use crate::{compatible, LockMode, ResourceId, TxnId};

/// Default number of stripes. Small enough to stay cache-friendly,
/// large enough that 8–16 workers on disjoint data rarely collide.
pub const DEFAULT_SHARDS: usize = 16;

/// Lock-table entry for one resource: current holders and the FIFO
/// queue of waiters.
#[derive(Debug, Default)]
pub(crate) struct Entry {
    pub holders: BTreeMap<TxnId, BTreeSet<LockMode>>,
    pub waiters: VecDeque<(TxnId, LockMode)>,
}

impl Entry {
    /// Is `mode` grantable to `txn` on this resource right now?
    ///
    /// Byte-for-byte the predicate of the old centralised manager:
    /// no conflicting holder (other than `txn` itself), and — FIFO
    /// fairness — no earlier waiter we conflict with in either
    /// direction (prevents writer starvation).
    pub fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        for (&holder, modes) in &self.holders {
            if holder == txn {
                continue;
            }
            if modes.iter().any(|&held| !compatible(held, mode)) {
                return false;
            }
        }
        for &(waiter, wmode) in &self.waiters {
            if waiter == txn {
                break;
            }
            if !compatible(wmode, mode) || !compatible(mode, wmode) {
                return false;
            }
        }
        true
    }

    /// Transactions currently blocking `txn`'s pending request for
    /// `mode`: conflicting holders plus earlier conflicting waiters.
    pub fn blockers_of(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        for (&holder, modes) in &self.holders {
            if holder != txn && modes.iter().any(|&held| !compatible(held, mode)) {
                out.push(holder);
            }
        }
        for &(waiter, wmode) in &self.waiters {
            if waiter == txn {
                break;
            }
            if !compatible(wmode, mode) || !compatible(mode, wmode) {
                out.push(waiter);
            }
        }
        out
    }

    /// Removes `txn` from the waiter queue (no-op if absent).
    pub fn remove_waiter(&mut self, txn: TxnId) {
        self.waiters.retain(|&(t, _)| t != txn);
    }

    /// Waiter ids other than `except` (for post-mutation wakeups).
    pub fn waiter_ids(&self, except: TxnId) -> Vec<TxnId> {
        self.waiters
            .iter()
            .filter(|&&(t, _)| t != except)
            .map(|&(t, _)| t)
            .collect()
    }

    /// `true` once nobody holds or waits — the entry can be dropped.
    pub fn is_vacant(&self) -> bool {
        self.holders.is_empty() && self.waiters.is_empty()
    }
}

/// One stripe of the lock table.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub table: Mutex<HashMap<ResourceId, Entry>>,
}

/// Maps a resource to its shard index (SplitMix64-style finalizer so
/// consecutive tuple ids spread across stripes).
pub(crate) fn shard_of(res: ResourceId, shards: usize) -> usize {
    let raw = match res {
        ResourceId::Tuple(t) => t,
        // Relations live in a disjoint key space.
        ResourceId::Relation(r) => (1u64 << 63) | u64::from(r),
    };
    let mut z = raw.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockMode::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1usize, 2, 16, 64] {
            for k in 0..200u64 {
                let s1 = shard_of(ResourceId::Tuple(k), n);
                let s2 = shard_of(ResourceId::Tuple(k), n);
                assert_eq!(s1, s2);
                assert!(s1 < n);
                assert!(shard_of(ResourceId::Relation(k as u32), n) < n);
            }
        }
    }

    #[test]
    fn tuple_and_relation_keyspaces_are_disjoint() {
        // Same raw number, different resource kind → (usually) different
        // shard; at minimum they are distinct map keys, but check the
        // hash actually mixes the tag bit for a few values.
        let n = 64;
        let differing = (0..32u64)
            .filter(|&k| {
                shard_of(ResourceId::Tuple(k), n) != shard_of(ResourceId::Relation(k as u32), n)
            })
            .count();
        assert!(differing > 0, "tag bit must influence the hash");
    }

    #[test]
    fn consecutive_tuples_spread_over_shards() {
        let n = 16;
        let mut seen = vec![false; n];
        for k in 0..64u64 {
            seen[shard_of(ResourceId::Tuple(k), n)] = true;
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= n / 2,
            "64 consecutive ids should hit at least half the stripes"
        );
    }

    #[test]
    fn entry_grantable_respects_fifo() {
        let mut e = Entry::default();
        let (a, b, c) = (TxnId(0), TxnId(1), TxnId(2));
        e.holders.entry(a).or_default().insert(S);
        // Writer b queues behind holder a.
        e.waiters.push_back((b, X));
        // Reader c is FIFO-blocked by waiting writer b...
        assert!(!e.grantable(c, S));
        // ...but b itself sees only the holder conflict.
        assert_eq!(e.blockers_of(b, X), vec![a]);
        e.remove_waiter(b);
        assert!(e.grantable(c, S));
    }
}
