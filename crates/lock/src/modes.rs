//! Lock modes, the Table 4.1 compatibility matrix, and lockable
//! resources.

use std::fmt;

/// A lock mode. `S`/`X` form the conventional 2PL baseline; `Rc`/`Ra`/`Wa`
/// are the paper's production-system modes (§4.3):
///
/// > (i) LHS of a production must be executed before its RHS.
/// > (ii) Data access in LHS is read only.
/// > (iii) Data access in RHS is read-write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Shared read (conventional 2PL).
    S,
    /// Exclusive write (conventional 2PL).
    X,
    /// Read lock for condition (LHS) evaluation.
    Rc,
    /// Read lock for action (RHS) execution.
    Ra,
    /// Write lock for action (RHS) execution.
    Wa,
}

impl LockMode {
    /// All modes, in display order.
    pub const ALL: [LockMode; 5] = [
        LockMode::S,
        LockMode::X,
        LockMode::Rc,
        LockMode::Ra,
        LockMode::Wa,
    ];

    /// The production-protocol modes of Table 4.1, in the paper's order.
    pub const TABLE_4_1: [LockMode; 3] = [LockMode::Rc, LockMode::Ra, LockMode::Wa];

    /// `true` for read modes.
    pub fn is_read(self) -> bool {
        matches!(self, LockMode::S | LockMode::Rc | LockMode::Ra)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::S => "S",
            LockMode::X => "X",
            LockMode::Rc => "Rc",
            LockMode::Ra => "Ra",
            LockMode::Wa => "Wa",
        };
        f.write_str(s)
    }
}

/// The compatibility function: may `requested` be granted while another
/// transaction holds `held`?
///
/// For the production modes this is exactly Table 4.1 of the paper —
/// note the deliberate **asymmetry**: `compatible(held = Rc, requested =
/// Wa)` is `true` (the enhanced-parallelism case) while
/// `compatible(held = Wa, requested = Rc)` is `false` (a condition may
/// not begin reading under an in-flight writer).
///
/// Mixing the `S`/`X` baseline with the production modes is not
/// meaningful within one protocol; for safety any such mix is treated as
/// incompatible except read/read.
pub fn compatible(held: LockMode, requested: LockMode) -> bool {
    use LockMode::*;
    match (held, requested) {
        // Conventional 2PL.
        (S, S) => true,
        (S, X) | (X, S) | (X, X) => false,
        // Table 4.1 (held is the row, requested the column).
        (Rc, Rc) | (Rc, Ra) => true,
        (Rc, Wa) => true, // the paper's key relaxation
        (Ra, Rc) | (Ra, Ra) => true,
        (Ra, Wa) => false,
        (Wa, Rc) | (Wa, Ra) | (Wa, Wa) => false,
        // Cross-protocol mixes: only read/read passes.
        (a, b) => a.is_read() && b.is_read(),
    }
}

/// Renders Table 4.1 ("The New Lock Compatibility Matrix") as the paper
/// prints it: rows = lock held by `P_i`, columns = lock requested by
/// `P_j`, `Y`/`N` cells.
pub fn compatibility_table() -> String {
    let modes = LockMode::TABLE_4_1;
    let mut out = String::from("held\\req |");
    for m in modes {
        out.push_str(&format!(" {m:>3}"));
    }
    out.push('\n');
    out.push_str("---------+------------\n");
    for held in modes {
        out.push_str(&format!("{held:>8} |"));
        for req in modes {
            out.push_str(&format!(
                " {:>3}",
                if compatible(held, req) { "Y" } else { "N" }
            ));
        }
        out.push('\n');
    }
    out
}

/// A lockable resource: a tuple (WME) or a whole relation (class).
///
/// Relation-granularity locks implement the paper's escalation story for
/// negative dependence: "In this case a lock can be placed at the
/// relation level. Such a lock is equivalent to locking the appropriate
/// tuple in the 'SYSTEM-CATALOG' relation."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceId {
    /// One working-memory element, by id.
    Tuple(u64),
    /// A whole relation (class), by catalogue id.
    Relation(u32),
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Tuple(t) => write!(f, "t{t}"),
            ResourceId::Relation(r) => write!(f, "R{r}"),
        }
    }
}

/// Which locking protocol a parallel engine runs (Figures 4.1 vs 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Conventional 2PL: `S` for condition and action reads, `X` for
    /// writes (Figure 4.1 / Theorem 2).
    TwoPhase,
    /// The improved scheme: `Rc` for condition reads, `Ra`/`Wa` for the
    /// RHS (Figure 4.2 / §4.3).
    RcRaWa,
}

impl Protocol {
    /// Mode used while evaluating the LHS.
    pub fn condition_read(self) -> LockMode {
        match self {
            Protocol::TwoPhase => LockMode::S,
            Protocol::RcRaWa => LockMode::Rc,
        }
    }

    /// Mode used for RHS reads.
    pub fn action_read(self) -> LockMode {
        match self {
            Protocol::TwoPhase => LockMode::S,
            Protocol::RcRaWa => LockMode::Ra,
        }
    }

    /// Mode used for RHS writes.
    pub fn action_write(self) -> LockMode {
        match self {
            Protocol::TwoPhase => LockMode::X,
            Protocol::RcRaWa => LockMode::Wa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn table_4_1_exactly() {
        // Paper's Table 4.1, row = held, column = requested.
        let expected = [
            (Rc, Rc, true),
            (Rc, Ra, true),
            (Rc, Wa, true), // the enhanced-parallelism cell
            (Ra, Rc, true),
            (Ra, Ra, true),
            (Ra, Wa, false),
            (Wa, Rc, false),
            (Wa, Ra, false),
            (Wa, Wa, false),
        ];
        for (held, req, ok) in expected {
            assert_eq!(compatible(held, req), ok, "held={held} requested={req}");
        }
    }

    #[test]
    fn two_phase_baseline() {
        assert!(compatible(S, S));
        assert!(!compatible(S, X));
        assert!(!compatible(X, S));
        assert!(!compatible(X, X));
    }

    #[test]
    fn asymmetry_is_the_point() {
        assert!(compatible(Rc, Wa));
        assert!(!compatible(Wa, Rc));
    }

    #[test]
    fn cross_protocol_mixes_are_conservative() {
        assert!(compatible(S, Rc), "read/read passes");
        assert!(!compatible(S, Wa));
        assert!(!compatible(X, Rc));
        assert!(!compatible(Wa, S));
    }

    #[test]
    fn table_renders_paper_shape() {
        let t = compatibility_table();
        assert!(t.contains("Rc"));
        // Row Wa is all N.
        let wa_row = t.lines().last().unwrap();
        assert_eq!(wa_row.matches('N').count(), 3);
        // Row Rc is all Y.
        let rc_row = t
            .lines()
            .find(|l| l.trim_start().starts_with("Rc"))
            .unwrap();
        assert_eq!(rc_row.matches('Y').count(), 3);
    }

    #[test]
    fn protocol_mode_mapping() {
        assert_eq!(Protocol::TwoPhase.condition_read(), S);
        assert_eq!(Protocol::TwoPhase.action_write(), X);
        assert_eq!(Protocol::RcRaWa.condition_read(), Rc);
        assert_eq!(Protocol::RcRaWa.action_read(), Ra);
        assert_eq!(Protocol::RcRaWa.action_write(), Wa);
    }

    #[test]
    fn resource_display() {
        assert_eq!(ResourceId::Tuple(4).to_string(), "t4");
        assert_eq!(ResourceId::Relation(2).to_string(), "R2");
    }
}
