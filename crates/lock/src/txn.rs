//! Per-transaction state for the sharded lock manager.
//!
//! Each transaction owns one [`TxnState`]: a small mutex-guarded record
//! (status, held locks, the at-most-one resource it waits for) plus a
//! [`WaitSlot`] the transaction parks on while blocked. Decoupling this
//! from the lock table is what lets the table itself be striped — a
//! waiter can be woken (or doomed) by touching only its own slot, never
//! a global lock.
//!
//! Lock ordering discipline (see `manager.rs` for the full picture):
//! a shard lock may be taken before a `TxnState::inner` lock, never the
//! reverse; the `WaitSlot` mutex is a leaf and may be taken under
//! anything.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::{LockMode, ResourceId};

/// Transaction identifier. Monotonically increasing: a larger id means a
/// *younger* transaction (deadlock victims are the youngest in the cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lifecycle of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Live; may acquire locks.
    Active,
    /// Marked for death (`by` = committing writer, `None` = deadlock
    /// victim); its next operation auto-aborts it.
    Doomed { by: Option<TxnId> },
    /// Reached its commit point (Figure 4.3's linearization instant).
    Committed,
    /// Rolled back.
    Aborted,
}

/// The mutex-guarded core of a transaction's state.
#[derive(Debug)]
pub(crate) struct TxnInner {
    pub status: Status,
    /// Locks held, mirrored from the shard entries for O(1) release.
    pub held: BTreeMap<ResourceId, BTreeSet<LockMode>>,
    /// The single resource this transaction currently waits for, if any.
    pub waiting_on: Option<(ResourceId, LockMode)>,
}

/// A transaction: guarded core + parking slot.
#[derive(Debug)]
pub(crate) struct TxnState {
    pub inner: Mutex<TxnInner>,
    pub slot: WaitSlot,
}

impl TxnState {
    pub fn new() -> Self {
        TxnState {
            inner: Mutex::new(TxnInner {
                status: Status::Active,
                held: BTreeMap::new(),
                waiting_on: None,
            }),
            slot: WaitSlot::new(),
        }
    }
}

/// A one-shot parking slot with a re-armable flag.
///
/// The lost-wakeup-free protocol: the waiter calls [`WaitSlot::arm`]
/// *while still holding the shard lock* in which it enqueued itself;
/// every waker mutates the shard entry under that same shard lock and
/// only then calls [`WaitSlot::signal`]. Any mutation therefore either
/// happened before the waiter's (failed) grantable check — the waiter
/// saw it — or after its enqueue+arm, in which case the signal lands on
/// the armed flag and [`WaitSlot::park`] returns immediately.
#[derive(Debug)]
pub(crate) struct WaitSlot {
    signaled: Mutex<bool>,
    cv: Condvar,
}

impl WaitSlot {
    pub fn new() -> Self {
        WaitSlot {
            signaled: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Clears the flag; subsequent `park` blocks until the next `signal`.
    pub fn arm(&self) {
        *self.signaled.lock().unwrap() = false;
    }

    /// Sets the flag and wakes the parked owner (idempotent).
    pub fn signal(&self) {
        let mut s = self.signaled.lock().unwrap();
        *s = true;
        self.cv.notify_all();
    }

    /// Blocks until signalled (or until a signal already landed).
    pub fn park(&self) {
        let mut s = self.signaled.lock().unwrap();
        while !*s {
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Blocks until signalled or `deadline`; `true` means timed out.
    pub fn park_until(&self, deadline: Instant) -> bool {
        let mut s = self.signaled.lock().unwrap();
        loop {
            if *s {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, _timeout) = self.cv.wait_timeout(s, deadline - now).unwrap();
            s = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn signal_before_park_returns_immediately() {
        let slot = WaitSlot::new();
        slot.arm();
        slot.signal();
        slot.park(); // must not block
    }

    #[test]
    fn park_until_times_out() {
        let slot = WaitSlot::new();
        slot.arm();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert!(slot.park_until(deadline));
    }

    #[test]
    fn cross_thread_wakeup() {
        let slot = Arc::new(WaitSlot::new());
        slot.arm();
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s2.signal();
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        assert!(!slot.park_until(deadline), "woken, not timed out");
        h.join().unwrap();
    }
}
