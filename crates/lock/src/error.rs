//! Lock-manager errors.

use std::fmt;

use crate::manager::TxnId;

/// Why a lock request or commit failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockError {
    /// The transaction was chosen as a deadlock victim.
    Deadlock(TxnId),
    /// The transaction was doomed by a committing `Wa` holder whose write
    /// overlapped one of its `Rc` locks (Figure 4.3(b)).
    DoomedByWriter {
        /// The doomed reader.
        txn: TxnId,
        /// The committing writer that doomed it.
        by: TxnId,
    },
    /// The request waited longer than the configured timeout.
    Timeout(TxnId),
    /// The transaction was force-aborted by the chaos fault injector
    /// (see [`crate::fault`]). Never occurs outside fault-injected
    /// runs; kept distinct so injected failures cannot masquerade as
    /// organic dooms or deadlocks in the abort accounting.
    Injected(TxnId),
    /// Operation on a transaction id that is not active (never begun,
    /// already committed or already aborted).
    NotActive(TxnId),
}

impl LockError {
    /// The transaction the error concerns.
    pub fn txn(&self) -> TxnId {
        match *self {
            LockError::Deadlock(t)
            | LockError::DoomedByWriter { txn: t, .. }
            | LockError::Timeout(t)
            | LockError::Injected(t)
            | LockError::NotActive(t) => t,
        }
    }

    /// `true` for errors that mean "abort and retry" (deadlock victim,
    /// doomed reader or injected fault) rather than a programming error.
    pub fn is_abort(&self) -> bool {
        matches!(
            self,
            LockError::Deadlock(_) | LockError::DoomedByWriter { .. } | LockError::Injected(_)
        )
    }
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock(t) => write!(f, "transaction {t} aborted: deadlock victim"),
            LockError::DoomedByWriter { txn, by } => {
                write!(
                    f,
                    "transaction {txn} aborted: Rc lock invalidated by committing writer {by}"
                )
            }
            LockError::Timeout(t) => write!(f, "transaction {t}: lock wait timed out"),
            LockError::Injected(t) => {
                write!(f, "transaction {t} aborted: fault injector forced abort")
            }
            LockError::NotActive(t) => write!(f, "transaction {t} is not active"),
        }
    }
}

impl std::error::Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = LockError::DoomedByWriter {
            txn: TxnId(3),
            by: TxnId(4),
        };
        assert_eq!(e.txn(), TxnId(3));
        assert!(e.is_abort());
        assert!(LockError::Deadlock(TxnId(1)).is_abort());
        assert!(LockError::Injected(TxnId(1)).is_abort());
        assert!(!LockError::Timeout(TxnId(1)).is_abort());
        assert!(!LockError::NotActive(TxnId(1)).is_abort());
        assert_eq!(LockError::Injected(TxnId(5)).txn(), TxnId(5));
    }

    #[test]
    fn display() {
        assert!(LockError::Deadlock(TxnId(2))
            .to_string()
            .contains("deadlock"));
        assert!(LockError::Timeout(TxnId(2))
            .to_string()
            .contains("timed out"));
    }
}
