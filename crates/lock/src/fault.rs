//! Deterministic, seeded fault injection — the chaos layer.
//!
//! The paper's semantic-consistency condition (`ES_M ⊆ ES_single`,
//! Theorem 2) must hold under *adversarial* schedules, not just
//! happy-path ones. This module manufactures those schedules: a
//! [`FaultPlan`] describes a reproducible storm of grant delays,
//! spurious wakeups, forced aborts, mid-RHS stalls and timeout storms,
//! and a [`FaultInjector`] threads it through the lock manager's and
//! engine's seams. The chaos gate (`dps-bench`'s `chaos` bin) then
//! requires every surviving trace to replay consistently through the
//! single-thread oracle.
//!
//! ## Determinism model
//!
//! Every injection decision is a **pure function** of
//! `(plan.seed, site, txn id, salt)` — hashed through the same
//! SplitMix64 finalizer the lock table uses for sharding — so:
//!
//! * the decision stream carries **no shared mutable state** (no RNG
//!   stream to race on): two threads asking concurrently perturb
//!   nothing;
//! * a single-worker run is **bit-reproducible** from its seed;
//! * a multi-worker run draws its faults from a distribution fixed
//!   entirely by the seed (the OS schedule still decides transaction
//!   interleaving and id assignment — no user-space layer can pin
//!   that — but re-running a seed replays the same per-decision odds
//!   at every site).
//!
//! Probabilities are expressed in **per-mille** (`0..=1000`) so plans
//! stay integer-only, like the rest of the dependency-free workspace.
//!
//! Injected faults are accounted three ways: the injector's own
//! [`FaultStats`] atomics, first-class [`dps_obs::EventKind::Fault`]
//! events (when a recorder is attached), and — for forced aborts — the
//! dedicated [`crate::LockError::Injected`] /
//! [`dps_obs::AbortCause::Injected`] cause, so chaos never pollutes the
//! organic abort taxonomy.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use dps_obs::{EventKind as ObsEvent, Recorder};

use crate::txn::TxnId;

/// SplitMix64 finalizer (same mixer as the lock-table's `shard_of`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fault-site tags (salt the hash so the same txn draws independent
/// decisions at different seams).
mod site {
    pub const GRANT_DELAY: u64 = 0x01;
    pub const SPURIOUS: u64 = 0x02;
    pub const FORCED_ABORT: u64 = 0x03;
    pub const RHS_STALL: u64 = 0x04;
    pub const TIMEOUT_STORM: u64 = 0x05;
    pub const DROP_MID_CLAIM: u64 = 0x06;
    pub const DROP_MID_RHS: u64 = 0x07;
    pub const SLOWLORIS: u64 = 0x08;
    pub const RHS_PANIC: u64 = 0x09;
}

/// A reproducible chaos schedule: per-mille odds and magnitudes for
/// every fault kind, plus the seed that fixes all decisions.
///
/// `Default` is the all-quiet plan (every probability 0) — attaching it
/// injects nothing, which the zero-cost tests rely on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed fixing every injection decision (see the module docs).
    pub seed: u64,
    /// Per-mille odds that a successful grant is held up by
    /// [`FaultPlan::grant_delay_us`] *before* the requester proceeds
    /// (the lock is already held, so the delay amplifies contention).
    pub grant_delay_pm: u32,
    /// Grant-delay magnitude, microseconds.
    pub grant_delay_us: u64,
    /// Per-mille odds, per blocked wait round, that a parked waiter
    /// wakes spuriously and re-runs the grant loop without a signal.
    pub spurious_wakeup_pm: u32,
    /// Per-mille odds that a lock request force-aborts its transaction
    /// with [`crate::LockError::Injected`].
    pub forced_abort_pm: u32,
    /// Per-mille odds, per doomed-poll, that the engine's RHS loop
    /// stalls for [`FaultPlan::rhs_stall_us`] mid-action (widening the
    /// window in which a committing writer can doom the worker).
    pub rhs_stall_pm: u32,
    /// RHS-stall magnitude, microseconds.
    pub rhs_stall_us: u64,
    /// Per-mille odds that a blocked wait's deadline is slashed to
    /// [`FaultPlan::timeout_storm_us`] — a timeout storm (fires even on
    /// managers configured with no timeout at all).
    pub timeout_storm_pm: u32,
    /// Stormed deadline, microseconds.
    pub timeout_storm_us: u64,
    /// Deterministic stall (µs, no probability) inserted between a
    /// wait timing out and the waiter cancelling itself — widens the
    /// doom-vs-timeout race window so the cause-priority rule (doom
    /// wins) is testable. 0 = off.
    pub timeout_race_stall_us: u64,
    /// Corrupt the engine's `Fire.seq` commit-sequence records
    /// (`seq ^ 1`) — the falsifiability knob: a corrupted ordering
    /// **must** be rejected by the §3 checker, proving the chaos gate
    /// can actually fail.
    pub corrupt_fire_seq: bool,
    /// Per-mille odds that a server session is torn down right after
    /// its transaction claims (locks held, nothing executed) — the
    /// `drop_mid_claim` disconnect site. The server observes the
    /// decision and severs the connection; the disconnect-safety path
    /// must then release every lock and pin.
    pub drop_mid_claim_pm: u32,
    /// Per-mille odds that a server session is torn down mid-RHS
    /// (locks + snapshot pin held, delta half-built) — the
    /// `drop_mid_rhs` disconnect site.
    pub drop_mid_rhs_pm: u32,
    /// Per-mille odds that a session goes half-open (stops reading and
    /// writing but keeps the connection up) for
    /// [`FaultPlan::slowloris_us`] — the `slowloris` site. The server's
    /// per-session read timeout must reap it.
    pub slowloris_pm: u32,
    /// Slowloris stall magnitude, microseconds.
    pub slowloris_us: u64,
    /// Per-mille odds that the engine's RHS evaluation *panics*
    /// mid-action — the leak-regression knob: every lock and snapshot
    /// pin must still be released by drop-guards as the unwind passes
    /// through the worker.
    pub rhs_panic_pm: u32,
    /// Kill the WAL writer at exactly this commit sequence number
    /// (0 = off). Deterministic rather than probabilistic: a crash
    /// point is a *place*, and the recovery gate sweeps places.
    pub wal_kill_commit: u64,
    /// Where, relative to the doomed commit, the "process" dies.
    pub wal_kill_site: WalKillSite,
}

/// Kill-point placement for [`FaultPlan::wal_kill_commit`] — which
/// durability seam the simulated process death lands on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalKillSite {
    /// Die after the commit publishes to the delta log but before its
    /// WAL record is fsynced — the batch is visible to the run but
    /// must NOT survive recovery (it was never durable).
    #[default]
    AfterPublish,
    /// Die mid-write: the tail WAL record reaches disk torn (a strict
    /// prefix of its frame), exercising the torn-tail truncation rule.
    TornTail,
    /// Die right after the commit's fsync — the batch is durable and
    /// recovery must reproduce exactly this prefix.
    AfterSync,
}

impl WalKillSite {
    /// Short static label (report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            WalKillSite::AfterPublish => "after_publish",
            WalKillSite::TornTail => "torn_tail",
            WalKillSite::AfterSync => "after_sync",
        }
    }

    /// Every kill site, for sweeps.
    pub const ALL: [WalKillSite; 3] = [
        WalKillSite::AfterPublish,
        WalKillSite::TornTail,
        WalKillSite::AfterSync,
    ];
}

impl FaultPlan {
    /// Named plan: no faults at all (baseline for overhead comparison).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// Named plan: grant delays only — schedule perturbation without
    /// any induced aborts.
    pub fn delays(seed: u64) -> Self {
        FaultPlan {
            seed,
            grant_delay_pm: 150,
            grant_delay_us: 300,
            spurious_wakeup_pm: 100,
            ..Default::default()
        }
    }

    /// Named plan: doom storm — forced aborts and RHS stalls drive the
    /// abort rate high enough to trip the governor's storm detector.
    pub fn doom_storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            forced_abort_pm: 250,
            rhs_stall_pm: 200,
            rhs_stall_us: 400,
            grant_delay_pm: 100,
            grant_delay_us: 200,
            ..Default::default()
        }
    }

    /// Named plan: timeout storm — blocked waits keep getting slashed
    /// deadlines, exercising the timeout/doom race paths.
    pub fn timeout_storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout_storm_pm: 300,
            timeout_storm_us: 200,
            spurious_wakeup_pm: 150,
            timeout_race_stall_us: 50,
            ..Default::default()
        }
    }

    /// Named plan: everything at once.
    pub fn mixed(seed: u64) -> Self {
        FaultPlan {
            seed,
            grant_delay_pm: 100,
            grant_delay_us: 200,
            spurious_wakeup_pm: 100,
            forced_abort_pm: 120,
            rhs_stall_pm: 120,
            rhs_stall_us: 300,
            timeout_storm_pm: 120,
            timeout_storm_us: 300,
            timeout_race_stall_us: 30,
            ..Default::default()
        }
    }

    /// Named plan: session carnage — mid-claim and mid-RHS disconnects
    /// plus half-open stalls, the server's disconnect-safety diet. Not
    /// part of [`FaultPlan::NAMED`] (the engine-level chaos sweep);
    /// `loadgen` and the server tests drive it directly.
    pub fn disconnects(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_mid_claim_pm: 120,
            drop_mid_rhs_pm: 120,
            slowloris_pm: 60,
            slowloris_us: 2_000,
            ..Default::default()
        }
    }

    /// The named CI sweep: `(label, constructor)` for every plan the
    /// chaos gate runs.
    #[allow(clippy::type_complexity)]
    pub const NAMED: [(&'static str, fn(u64) -> FaultPlan); 5] = [
        ("quiet", FaultPlan::quiet),
        ("delays", FaultPlan::delays),
        ("doom_storm", FaultPlan::doom_storm),
        ("timeout_storm", FaultPlan::timeout_storm),
        ("mixed", FaultPlan::mixed),
    ];

    /// Looks a named plan up by label.
    pub fn by_name(name: &str, seed: u64) -> Option<FaultPlan> {
        FaultPlan::NAMED
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ctor)| ctor(seed))
    }
}

/// Injection counters (all relaxed atomics; snapshot via
/// [`FaultInjector::stats`]).
#[derive(Debug, Default)]
struct FaultCounters {
    grant_delays: AtomicU64,
    spurious_wakeups: AtomicU64,
    forced_aborts: AtomicU64,
    rhs_stalls: AtomicU64,
    timeout_storms: AtomicU64,
    timeout_race_stalls: AtomicU64,
    wal_kills: AtomicU64,
    drop_mid_claims: AtomicU64,
    drop_mid_rhs: AtomicU64,
    slowloris: AtomicU64,
    rhs_panics: AtomicU64,
}

/// Point-in-time snapshot of every injection counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Grants held up by an injected delay.
    pub grant_delays: u64,
    /// Parked waits woken without a signal.
    pub spurious_wakeups: u64,
    /// Transactions force-aborted ([`crate::LockError::Injected`]).
    pub forced_aborts: u64,
    /// Mid-RHS stalls injected at the doomed-poll seam.
    pub rhs_stalls: u64,
    /// Blocked waits whose deadline was slashed *and then fired*.
    pub timeout_storms: u64,
    /// Deterministic timeout-race stalls taken.
    pub timeout_race_stalls: u64,
    /// WAL kill points that fired (at most 1 per run — the process is
    /// dead afterwards).
    pub wal_kills: u64,
    /// Sessions disconnected right after claiming.
    pub drop_mid_claims: u64,
    /// Sessions disconnected mid-RHS.
    pub drop_mid_rhs: u64,
    /// Half-open (slowloris) stalls injected.
    pub slowloris: u64,
    /// RHS evaluations made to panic.
    pub rhs_panics: u64,
}

impl FaultStats {
    /// Sum over every fault kind.
    pub fn total(&self) -> u64 {
        self.grant_delays
            + self.spurious_wakeups
            + self.forced_aborts
            + self.rhs_stalls
            + self.timeout_storms
            + self.timeout_race_stalls
            + self.wal_kills
            + self.drop_mid_claims
            + self.drop_mid_rhs
            + self.slowloris
            + self.rhs_panics
    }
}

/// The injector: a [`FaultPlan`] plus counters. Share behind an `Arc`;
/// every method takes `&self` and is lock-free (counters are relaxed
/// atomics, decisions are pure hashes).
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, counters: FaultCounters::default() }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            grant_delays: self.counters.grant_delays.load(Relaxed),
            spurious_wakeups: self.counters.spurious_wakeups.load(Relaxed),
            forced_aborts: self.counters.forced_aborts.load(Relaxed),
            rhs_stalls: self.counters.rhs_stalls.load(Relaxed),
            timeout_storms: self.counters.timeout_storms.load(Relaxed),
            timeout_race_stalls: self.counters.timeout_race_stalls.load(Relaxed),
            wal_kills: self.counters.wal_kills.load(Relaxed),
            drop_mid_claims: self.counters.drop_mid_claims.load(Relaxed),
            drop_mid_rhs: self.counters.drop_mid_rhs.load(Relaxed),
            slowloris: self.counters.slowloris.load(Relaxed),
            rhs_panics: self.counters.rhs_panics.load(Relaxed),
        }
    }

    /// The pure decision hash: true with probability `pm`/1000.
    fn hit(&self, site_tag: u64, txn: TxnId, salt: u64, pm: u32) -> bool {
        if pm == 0 {
            return false;
        }
        let h = mix(self
            .plan
            .seed
            .wrapping_add(mix(site_tag))
            ^ mix(txn.0).rotate_left(17)
            ^ mix(salt).rotate_left(31));
        (h % 1000) < u64::from(pm)
    }

    fn emit(obs: Option<&Recorder>, txn: TxnId, kind: &'static str) {
        if let Some(obs) = obs {
            obs.record(txn.0, ObsEvent::Fault { kind });
        }
    }

    /// Grant seam: maybe stall the requester *after* its grant (lock
    /// already held, so the delay stretches the hold time).
    pub(crate) fn grant_delay(&self, txn: TxnId, res: u64, obs: Option<&Recorder>) {
        if self.hit(site::GRANT_DELAY, txn, res, self.plan.grant_delay_pm) {
            self.counters.grant_delays.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "grant_delay");
            std::thread::sleep(Duration::from_micros(self.plan.grant_delay_us));
        }
    }

    /// Park seam: should this wait round wake spuriously (skip the
    /// park and re-run the grant loop)? `round` salts the hash so a
    /// request that loops draws fresh odds each time — hashing only
    /// `(txn, res)` would return the same answer forever and livelock.
    pub(crate) fn spurious_wakeup(
        &self,
        txn: TxnId,
        res: u64,
        round: u64,
        obs: Option<&Recorder>,
    ) -> bool {
        let hit = self.hit(
            site::SPURIOUS,
            txn,
            res ^ mix(round),
            self.plan.spurious_wakeup_pm,
        );
        if hit {
            self.counters.spurious_wakeups.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "spurious_wakeup");
        }
        hit
    }

    /// Request seam: force-abort this transaction's lock request?
    /// (The manager performs the actual abort and emits the event.)
    pub(crate) fn forced_abort(&self, txn: TxnId, res: u64) -> bool {
        self.hit(site::FORCED_ABORT, txn, res, self.plan.forced_abort_pm)
    }

    /// Counts a forced abort the manager actually carried out (the
    /// decision in [`Self::forced_abort`] may be vetoed by a
    /// concurrent organic doom, which takes priority).
    pub(crate) fn count_forced_abort(&self, txn: TxnId, obs: Option<&Recorder>) {
        self.counters.forced_aborts.fetch_add(1, Relaxed);
        Self::emit(obs, txn, "forced_abort");
    }

    /// Engine seam: maybe stall between RHS steps. `step` salts the
    /// hash per poll. Public because the engine (not the manager)
    /// owns the RHS loop.
    pub fn rhs_stall(&self, txn: TxnId, step: u64, obs: Option<&Recorder>) {
        if self.hit(site::RHS_STALL, txn, step, self.plan.rhs_stall_pm) {
            self.counters.rhs_stalls.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "rhs_stall");
            std::thread::sleep(Duration::from_micros(self.plan.rhs_stall_us));
        }
    }

    /// Block seam: slash this request's wait deadline? Decided once
    /// per `lock` call, before the first park.
    pub(crate) fn storm_deadline(&self, txn: TxnId, res: u64) -> Option<Duration> {
        if self.hit(site::TIMEOUT_STORM, txn, res, self.plan.timeout_storm_pm) {
            Some(Duration::from_micros(self.plan.timeout_storm_us))
        } else {
            None
        }
    }

    /// Counts a stormed deadline that actually fired (recorded at the
    /// timeout, not at the slashing, so the counter means "aborts the
    /// storm caused", not "deadlines it touched").
    pub(crate) fn count_timeout_storm(&self, txn: TxnId, obs: Option<&Recorder>) {
        self.counters.timeout_storms.fetch_add(1, Relaxed);
        Self::emit(obs, txn, "timeout_storm");
    }

    /// Timeout seam: deterministic stall between `park_until` expiring
    /// and the waiter cancelling itself — widens the doom-vs-timeout
    /// race window for the cause-priority test.
    pub(crate) fn timeout_race_stall(&self, txn: TxnId, obs: Option<&Recorder>) {
        if self.plan.timeout_race_stall_us > 0 {
            self.counters.timeout_race_stalls.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "timeout_race_stall");
            std::thread::sleep(Duration::from_micros(self.plan.timeout_race_stall_us));
        }
    }

    /// Durability seam: does the WAL kill point fire at this commit
    /// sequence number? Deterministic — exactly the configured commit,
    /// independent of thread interleaving (seq numbers are allocated
    /// under the engine's base mutex). The engine performs the actual
    /// kill; this just decides and tells it where to die. Public
    /// because the engine (not the lock manager) owns the commit path.
    pub fn wal_kill(&self, seq: u64) -> Option<WalKillSite> {
        if self.plan.wal_kill_commit != 0 && seq == self.plan.wal_kill_commit {
            Some(self.plan.wal_kill_site)
        } else {
            None
        }
    }

    /// Counts a WAL kill the engine actually carried out, with its
    /// first-class fault event.
    pub fn count_wal_kill(&self, txn: TxnId, obs: Option<&Recorder>) {
        self.counters.wal_kills.fetch_add(1, Relaxed);
        Self::emit(obs, txn, "wal_kill");
    }

    /// Server seam: tear this session's connection down right after
    /// its transaction claimed (locks held)? `salt` is the session's
    /// request ordinal so one session draws fresh odds per request.
    /// Public because the server (not the manager) owns the session
    /// loop.
    pub fn drop_mid_claim(&self, txn: TxnId, salt: u64, obs: Option<&Recorder>) -> bool {
        let hit = self.hit(site::DROP_MID_CLAIM, txn, salt, self.plan.drop_mid_claim_pm);
        if hit {
            self.counters.drop_mid_claims.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "drop_mid_claim");
        }
        hit
    }

    /// Server seam: tear this session's connection down mid-RHS (locks
    /// and snapshot pin held, delta half-built)?
    pub fn drop_mid_rhs(&self, txn: TxnId, salt: u64, obs: Option<&Recorder>) -> bool {
        let hit = self.hit(site::DROP_MID_RHS, txn, salt, self.plan.drop_mid_rhs_pm);
        if hit {
            self.counters.drop_mid_rhs.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "drop_mid_rhs");
        }
        hit
    }

    /// Server seam: should this session go half-open (stop talking but
    /// keep the connection up)? Returns the stall to inject; the
    /// server's read timeout must reap the session.
    pub fn slowloris(&self, txn: TxnId, salt: u64, obs: Option<&Recorder>) -> Option<Duration> {
        if self.hit(site::SLOWLORIS, txn, salt, self.plan.slowloris_pm) {
            self.counters.slowloris.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "slowloris");
            Some(Duration::from_micros(self.plan.slowloris_us))
        } else {
            None
        }
    }

    /// Engine seam: should this RHS evaluation panic mid-action? The
    /// leak-regression knob — drop-guards must release every lock and
    /// pin as the unwind passes through. Public because the engine
    /// owns the RHS loop.
    pub fn rhs_panic(&self, txn: TxnId, step: u64, obs: Option<&Recorder>) -> bool {
        let hit = self.hit(site::RHS_PANIC, txn, step, self.plan.rhs_panic_pm);
        if hit {
            self.counters.rhs_panics.fetch_add(1, Relaxed);
            Self::emit(obs, txn, "rhs_panic");
        }
        hit
    }

    /// Falsifiability seam: corrupt a commit-sequence number. The §3
    /// checker must reject the resulting trace — `chaos` and
    /// `tests/chaos.rs` prove the oracle can actually fail.
    pub fn corrupt_seq(&self, seq: u64) -> u64 {
        if self.plan.corrupt_fire_seq {
            seq ^ 1
        } else {
            seq
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::quiet(42));
        for i in 0..2000 {
            assert!(!inj.forced_abort(TxnId(i), i));
            assert!(!inj.spurious_wakeup(TxnId(i), i, 0, None));
            assert!(inj.storm_deadline(TxnId(i), i).is_none());
            inj.grant_delay(TxnId(i), i, None);
            inj.rhs_stall(TxnId(i), i, None);
            assert_eq!(inj.corrupt_seq(i), i);
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = FaultInjector::new(FaultPlan::mixed(7));
        let b = FaultInjector::new(FaultPlan::mixed(7));
        let c = FaultInjector::new(FaultPlan::mixed(8));
        let mut diverged = false;
        for i in 0..500 {
            assert_eq!(a.forced_abort(TxnId(i), i), b.forced_abort(TxnId(i), i));
            assert_eq!(
                a.storm_deadline(TxnId(i), i).is_some(),
                b.storm_deadline(TxnId(i), i).is_some()
            );
            if a.forced_abort(TxnId(i), i) != c.forced_abort(TxnId(i), i) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds draw different faults");
    }

    #[test]
    fn hit_rate_tracks_per_mille() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 3,
            forced_abort_pm: 250,
            ..Default::default()
        });
        let hits = (0..4000).filter(|&i| inj.forced_abort(TxnId(i), i)).count();
        // 250‰ of 4000 = 1000 expected; allow a generous band.
        assert!((700..1300).contains(&hits), "hit rate {hits}/4000 off 250‰");
    }

    #[test]
    fn spurious_rounds_draw_fresh_odds() {
        // With round-salted hashing, a request that keeps looping must
        // eventually draw a miss (no livelock).
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            spurious_wakeup_pm: 500,
            ..Default::default()
        });
        let miss = (0..64).position(|round| !inj.spurious_wakeup(TxnId(1), 1, round, None));
        assert!(miss.is_some(), "all 64 rounds hit — round salt ignored?");
    }

    #[test]
    fn corrupt_seq_flips_the_low_bit() {
        let inj = FaultInjector::new(FaultPlan {
            corrupt_fire_seq: true,
            ..Default::default()
        });
        assert_eq!(inj.corrupt_seq(0), 1);
        assert_eq!(inj.corrupt_seq(1), 0);
        assert_eq!(inj.corrupt_seq(6), 7);
    }

    #[test]
    fn named_plans_resolve() {
        for (name, _) in FaultPlan::NAMED {
            let plan = FaultPlan::by_name(name, 11).unwrap();
            assert_eq!(plan.seed, 11);
        }
        assert!(FaultPlan::by_name("nope", 0).is_none());
        assert_eq!(FaultPlan::by_name("quiet", 5), Some(FaultPlan::quiet(5)));
    }

    #[test]
    fn wal_kill_fires_exactly_at_its_commit() {
        let quiet = FaultInjector::new(FaultPlan::quiet(1));
        for seq in 0..100 {
            assert!(quiet.wal_kill(seq).is_none(), "quiet plan kills nothing");
        }
        let inj = FaultInjector::new(FaultPlan {
            wal_kill_commit: 7,
            wal_kill_site: WalKillSite::TornTail,
            ..Default::default()
        });
        for seq in 0..100 {
            let hit = inj.wal_kill(seq);
            if seq == 7 {
                assert_eq!(hit, Some(WalKillSite::TornTail));
            } else {
                assert!(hit.is_none(), "seq {seq}");
            }
        }
        inj.count_wal_kill(TxnId(3), None);
        assert_eq!(inj.stats().wal_kills, 1);
        assert_eq!(inj.stats().total(), 1);
        for site in WalKillSite::ALL {
            assert!(!site.name().is_empty());
        }
    }

    #[test]
    fn disconnect_sites_draw_and_count() {
        let quiet = FaultInjector::new(FaultPlan::quiet(3));
        for i in 0..500 {
            assert!(!quiet.drop_mid_claim(TxnId(i), i, None));
            assert!(!quiet.drop_mid_rhs(TxnId(i), i, None));
            assert!(quiet.slowloris(TxnId(i), i, None).is_none());
            assert!(!quiet.rhs_panic(TxnId(i), i, None));
        }
        assert_eq!(quiet.stats().total(), 0);

        let inj = FaultInjector::new(FaultPlan {
            seed: 5,
            drop_mid_claim_pm: 500,
            drop_mid_rhs_pm: 500,
            slowloris_pm: 500,
            slowloris_us: 1,
            rhs_panic_pm: 500,
            ..Default::default()
        });
        let mut claims = 0;
        let mut rhs = 0;
        let mut slow = 0;
        let mut panics = 0;
        for i in 0..400 {
            claims += u64::from(inj.drop_mid_claim(TxnId(i), i, None));
            rhs += u64::from(inj.drop_mid_rhs(TxnId(i), i, None));
            slow += u64::from(inj.slowloris(TxnId(i), i, None).is_some());
            panics += u64::from(inj.rhs_panic(TxnId(i), i, None));
        }
        let s = inj.stats();
        assert_eq!(s.drop_mid_claims, claims);
        assert_eq!(s.drop_mid_rhs, rhs);
        assert_eq!(s.slowloris, slow);
        assert_eq!(s.rhs_panics, panics);
        for n in [claims, rhs, slow, panics] {
            assert!((100..300).contains(&n), "hit rate {n}/400 off 500‰");
        }
        // The sites are salted independently: identical (txn, salt)
        // pairs must not force identical decisions across sites.
        let agree = (0..400)
            .filter(|&i| inj.drop_mid_claim(TxnId(i), i, None) == inj.drop_mid_rhs(TxnId(i), i, None))
            .count();
        assert!(agree < 400, "sites share a decision stream");
        assert_eq!(FaultPlan::disconnects(9).seed, 9);
        assert!(FaultPlan::disconnects(9).drop_mid_claim_pm > 0);
    }

    #[test]
    fn stats_snapshot_counts() {
        let inj = FaultInjector::new(FaultPlan {
            timeout_race_stall_us: 1,
            ..Default::default()
        });
        inj.timeout_race_stall(TxnId(0), None);
        inj.count_forced_abort(TxnId(1), None);
        inj.count_timeout_storm(TxnId(2), None);
        let s = inj.stats();
        assert_eq!(s.timeout_race_stalls, 1);
        assert_eq!(s.forced_aborts, 1);
        assert_eq!(s.timeout_storms, 1);
        assert_eq!(s.total(), 3);
    }
}
