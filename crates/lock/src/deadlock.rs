//! Cross-shard waits-for deadlock detection.
//!
//! With the lock table striped there is no single mutex under which a
//! globally consistent waits-for graph exists, so detection walks the
//! graph edge by edge: the `blockers` closure reads one transaction's
//! `waiting_on` (its own mutex) and then that one resource's entry (its
//! shard's mutex) — never holding two shard locks at once.
//!
//! The snapshot is therefore *fuzzy*: an edge may be stale by the time
//! the next one is read. The consequences are benign — a genuinely
//! deadlocked cycle is stable (none of its members can make progress,
//! so its edges cannot change until a victim is doomed) and will be
//! found by the last transaction to block; a phantom cycle can at worst
//! doom a transaction that would have proceeded, which is
//! indistinguishable from an ordinary abort-and-retry to the engine.
//! The paper's §4.3 remark applies: the new `Rc` mode "does not
//! introduce new kinds of deadlocks", so the standard machinery —
//! DFS plus youngest-victim selection — carries over unchanged.

use crate::TxnId;

/// Depth cap for the DFS (cycles in practice involve a handful of
/// transactions; this bounds pathological walks over stale edges).
const MAX_DEPTH: usize = 64;

/// Looks for a waits-for cycle through `start`; returns the members.
///
/// `blockers(t)` must return the transactions `t` currently waits for
/// (conflicting holders and earlier conflicting waiters of the resource
/// `t` is blocked on).
pub(crate) fn find_cycle(
    start: TxnId,
    blockers: &dyn Fn(TxnId) -> Vec<TxnId>,
) -> Option<Vec<TxnId>> {
    fn dfs(
        node: TxnId,
        start: TxnId,
        path: &mut Vec<TxnId>,
        depth: usize,
        blockers: &dyn Fn(TxnId) -> Vec<TxnId>,
    ) -> bool {
        if depth > 0 && node == start {
            return true;
        }
        if depth > MAX_DEPTH || path.contains(&node) {
            return false;
        }
        path.push(node);
        for b in blockers(node) {
            if dfs(b, start, path, depth + 1, blockers) {
                return true;
            }
        }
        path.pop();
        false
    }
    let mut path: Vec<TxnId> = Vec::new();
    if dfs(start, start, &mut path, 0, blockers) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn graph(edges: &[(u64, u64)]) -> impl Fn(TxnId) -> Vec<TxnId> + '_ {
        let mut map: HashMap<u64, Vec<TxnId>> = HashMap::new();
        for &(a, b) in edges {
            map.entry(a).or_default().push(TxnId(b));
        }
        move |t: TxnId| map.get(&t.0).cloned().unwrap_or_default()
    }

    #[test]
    fn two_cycle_found() {
        let g = graph(&[(0, 1), (1, 0)]);
        let cycle = find_cycle(TxnId(0), &g).expect("cycle");
        assert!(cycle.contains(&TxnId(0)) && cycle.contains(&TxnId(1)));
    }

    #[test]
    fn three_cycle_found_from_any_member() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)]);
        for s in 0..3 {
            let cycle = find_cycle(TxnId(s), &g).expect("cycle");
            assert_eq!(cycle.len(), 3);
        }
    }

    #[test]
    fn chain_has_no_cycle() {
        let g = graph(&[(0, 1), (1, 2), (2, 3)]);
        assert!(find_cycle(TxnId(0), &g).is_none());
    }

    #[test]
    fn side_branch_does_not_confuse_dfs() {
        // 0 → {1, 2}; only the 2-branch loops back.
        let g = graph(&[(0, 1), (0, 2), (2, 0)]);
        let cycle = find_cycle(TxnId(0), &g).expect("cycle");
        assert!(cycle.contains(&TxnId(2)));
        assert!(!cycle.contains(&TxnId(1)), "dead branch popped");
    }

    #[test]
    fn self_loop_is_a_cycle() {
        // Cannot happen with real lock tables (a txn never blocks on
        // itself) but the walker must not diverge on it.
        let g = graph(&[(5, 5)]);
        let cycle = find_cycle(TxnId(5), &g).expect("cycle");
        assert_eq!(cycle, vec![TxnId(5)]);
    }
}
