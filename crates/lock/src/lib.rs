//! # `dps-lock` — the lock manager
//!
//! A centralised lock manager implementing both concurrency-control
//! schemes of *Parallelism in Database Production Systems* (ICDE 1990,
//! §4.2–4.3):
//!
//! * **Conventional two-phase locking** with shared/exclusive modes
//!   ([`LockMode::S`], [`LockMode::X`]) — the baseline whose semantic
//!   consistency the paper proves in Theorem 2 (Figure 4.1's protocol).
//! * **The improved three-mode protocol** with condition-read
//!   ([`LockMode::Rc`]), action-read ([`LockMode::Ra`]) and action-write
//!   ([`LockMode::Wa`]) locks, per Table 4.1. Its signature property: a
//!   `Wa` lock **is granted even while other productions hold `Rc`** on
//!   the same object ("allowing Rc–Wa conflict to exist!"), and
//!   consistency is restored at commit time — when a `Wa` holder commits
//!   first, every live overlapped `Rc` holder is either aborted
//!   ([`ConflictPolicy::AbortReaders`], the paper's rule (ii)) or handed
//!   back for condition re-evaluation ([`ConflictPolicy::Revalidate`],
//!   the paper's stated alternative).
//!
//! The manager also provides what the paper's §4.3 closing remarks call
//! for: waits-for-graph **deadlock detection** with youngest-victim
//! selection (the new `Rc` mode "does not introduce new kinds of
//! deadlocks", so the standard machinery applies) and **lock escalation**
//! hooks via relation-granularity resources ([`ResourceId::Relation`]),
//! "equivalent to locking the appropriate tuple in the SYSTEM-CATALOG
//! relation".
//!
//! ```
//! use dps_lock::{LockManager, LockMode, ResourceId, ConflictPolicy};
//!
//! let mgr = LockManager::new(ConflictPolicy::AbortReaders);
//! let reader = mgr.begin();
//! let writer = mgr.begin();
//! let q = ResourceId::Tuple(1);
//!
//! mgr.lock(reader, q, LockMode::Rc).unwrap();
//! // The novelty: Wa is granted *despite* the outstanding Rc.
//! mgr.lock(writer, q, LockMode::Wa).unwrap();
//! // Writer commits first → the reader is doomed (Figure 4.3(b)).
//! let outcome = mgr.commit(writer).unwrap();
//! assert_eq!(outcome.doomed_readers, vec![reader]);
//! assert!(mgr.commit(reader).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deadlock;
mod error;
pub mod fault;
mod manager;
mod modes;
mod sharding;
mod txn;

pub use error::LockError;
pub use fault::{FaultInjector, FaultPlan, FaultStats, WalKillSite};
pub use manager::{
    res_key, res_of_key, CommitOutcome, ConflictPolicy, LockEvent, LockManager,
    LockManagerBuilder, LockStats, TxnId,
};
pub use modes::{compatibility_table, compatible, LockMode, Protocol, ResourceId};
pub use sharding::DEFAULT_SHARDS;
