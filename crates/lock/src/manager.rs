//! The sharded lock manager.
//!
//! Formerly one global `Mutex<State>` through which every `begin`,
//! `lock`, `commit` and `abort` funnelled — the scalability killer this
//! refactor removes. The decomposition follows the coordination-
//! avoidance principle: coordinate only where the `Rc`/`Ra`/`Wa`
//! semantics demand it.
//!
//! * **Lock table** → striped into [`Shard`]s (hash of the
//!   [`ResourceId`]); two transactions on resources in different shards
//!   never contend. FIFO waiter queues live inside each per-resource
//!   entry, so fairness is unchanged.
//! * **Transaction state** → per-transaction [`TxnState`] with its own
//!   mutex and a [`WaitSlot`] to park on. Commit's `Rc`–`Wa` rule
//!   linearizes at the owner's `Active → Committed` status flip — the
//!   same race the old global lock serialised, now serialised by the
//!   one mutex that actually matters.
//! * **Counters / event log** → atomics and a dedicated mutex; hot
//!   paths no longer serialise on bookkeeping.
//! * **Deadlock detection** → a cross-shard waits-for walk
//!   (see [`crate::deadlock`]) run by the transaction that blocks.
//!
//! Lock ordering (deadlock-freedom of the manager itself): a shard
//! mutex may be taken before a transaction's `inner` mutex; `inner` is
//! never held while taking a shard; the txn registry read lock and the
//! `WaitSlot` mutex are leaves. At most one shard and one `inner` are
//! held at any time.
//!
//! The public API and the commit-time `Rc`–`Wa` semantics are
//! byte-for-byte those of the old centralised manager; the test suite
//! below is carried over unchanged.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use dps_obs::{EventKind as ObsEvent, Phase, Recorder, TickHist};

use crate::deadlock::find_cycle;
use crate::fault::FaultInjector;
use crate::sharding::{shard_of, Shard, DEFAULT_SHARDS};
use crate::txn::{Status, TxnState};
use crate::{LockError, LockMode, ResourceId};

pub use crate::txn::TxnId;

/// What to do with live `Rc` holders when an overlapping `Wa` holder
/// commits first (paper §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Rule (ii): "if `P_i` reaches the commit point first, `P_j` must be
    /// forced to abort." The manager dooms the readers; their next
    /// operation fails with [`LockError::DoomedByWriter`].
    AbortReaders,
    /// The paper's alternative: "reevaluate `P_j`'s condition to see if
    /// abort is necessary, at the expense of increased overhead." The
    /// manager does not doom anybody; [`CommitOutcome::needs_revalidation`]
    /// lists the affected readers and the *engine* re-evaluates their
    /// conditions, aborting only those whose LHS no longer holds.
    Revalidate,
    /// MVCC snapshot reads: condition reads take **no locks at all** —
    /// the engine evaluates conditions against a versioned working
    /// memory pinned at a commit sequence number and self-validates at
    /// its own commit point, so there are no live `Rc` holders to doom
    /// or revalidate. The commit rule degenerates to a no-op (only
    /// `R_a`/`W_a` action locks pass through the manager); the `Rc`
    /// machinery stays intact behind the other two policies so
    /// stock-vs-MVCC runs remain A/B-comparable.
    MvccSnapshot,
}

/// Result of a successful commit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Readers force-aborted by this commit (policy `AbortReaders`).
    pub doomed_readers: Vec<TxnId>,
    /// Readers the engine must re-validate (policy `Revalidate`).
    pub needs_revalidation: Vec<TxnId>,
}

/// Aggregate lock-manager statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (all causes).
    pub aborts: u64,
    /// Lock grants (including re-grants of held modes are excluded).
    pub grants: u64,
    /// Requests that had to wait at least once.
    pub blocks: u64,
    /// Readers doomed by committing writers.
    pub dooms: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
    /// Lock acquisitions *skipped* by the coordination-avoidance fast
    /// path ([`LockManager::elide`]) — each would have been a grant (or
    /// worse, a block) under the full §4 protocol. Kept on the manager
    /// so elided traffic stays attributable next to the traffic that
    /// did go through the table.
    pub elided: u64,
}

/// An entry in the manager's event log (recording is off by default).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockEvent {
    /// Transaction began.
    Begin(TxnId),
    /// Lock granted.
    Grant(TxnId, ResourceId, LockMode),
    /// Request blocked, waiting.
    Block(TxnId, ResourceId, LockMode),
    /// Transaction doomed (`by` is the committing writer, `None` for a
    /// deadlock victim).
    Doom(TxnId, Option<TxnId>),
    /// Transaction committed.
    Commit(TxnId),
    /// Transaction aborted.
    Abort(TxnId),
}

/// Monotonic event counters, updated lock-free on the hot paths.
#[derive(Debug, Default)]
struct StatCounters {
    commits: AtomicU64,
    aborts: AtomicU64,
    grants: AtomicU64,
    blocks: AtomicU64,
    dooms: AtomicU64,
    deadlocks: AtomicU64,
    elided: AtomicU64,
}

/// Encodes a [`ResourceId`] into the opaque `u64` resource key used by
/// `dps-obs` events: tuple ids go in the even space, relation ids in
/// the odd space, so the two granularities never collide. Public so
/// the analysis layer can decode contention tables back into
/// tuple/relation ids (see [`res_of_key`]).
pub fn res_key(res: ResourceId) -> u64 {
    match res {
        ResourceId::Tuple(id) => id << 1,
        ResourceId::Relation(r) => (u64::from(r) << 1) | 1,
    }
}

/// Decodes an obs resource key back into a [`ResourceId`] (inverse of
/// [`res_key`]).
pub fn res_of_key(key: u64) -> ResourceId {
    if key & 1 == 0 {
        ResourceId::Tuple(key >> 1)
    } else {
        ResourceId::Relation((key >> 1) as u32)
    }
}

/// Static mode name for obs events (matches [`LockMode`]'s `Display`).
fn mode_name(mode: LockMode) -> &'static str {
    match mode {
        LockMode::S => "S",
        LockMode::X => "X",
        LockMode::Rc => "Rc",
        LockMode::Ra => "Ra",
        LockMode::Wa => "Wa",
    }
}

/// Composable constructor for [`LockManager`] (the `new` /
/// `with_shards` / `with_timeout` constructors could not be combined —
/// this builder replaces them; they remain as thin wrappers).
///
/// ```
/// use dps_lock::{ConflictPolicy, LockManager};
/// use std::time::Duration;
///
/// let mgr = LockManager::builder()
///     .policy(ConflictPolicy::Revalidate)
///     .shards(4)
///     .timeout(Duration::from_millis(50))
///     .build();
/// assert_eq!(mgr.policy(), ConflictPolicy::Revalidate);
/// ```
#[derive(Debug, Default)]
pub struct LockManagerBuilder {
    policy: Option<ConflictPolicy>,
    shards: Option<usize>,
    timeout: Option<Duration>,
    obs: Option<Arc<Recorder>>,
    fault: Option<Arc<FaultInjector>>,
    wait_hist: Option<Arc<TickHist>>,
}

impl LockManagerBuilder {
    /// Sets the `Rc`–`Wa` conflict policy (default
    /// [`ConflictPolicy::AbortReaders`]).
    pub fn policy(mut self, policy: ConflictPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the lock-table stripe count (default [`DEFAULT_SHARDS`],
    /// min 1; `shards(1)` collapses to centralised behaviour).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Sets a wait timeout for blocked requests (default: none —
    /// deadlocks are handled by detection alone).
    pub fn timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.timeout = timeout.into();
        self
    }

    /// Attaches an observability recorder; the manager then emits
    /// `Begin` / `Grant` / `Block` / `Doom` / `Deadlock` / `Commit`
    /// events and the lock-wait latency histogram into it.
    pub fn obs(mut self, obs: impl Into<Option<Arc<Recorder>>>) -> Self {
        self.obs = obs.into();
        self
    }

    /// Attaches a chaos fault injector (see [`crate::fault`]). Absent
    /// by default; when absent, every seam is one branch on a `None`.
    pub fn fault(mut self, fault: impl Into<Option<Arc<FaultInjector>>>) -> Self {
        self.fault = fault.into();
        self
    }

    /// Attaches a live-telemetry per-tick histogram fed with every lock
    /// wait's total blocked duration (the `lock.wait.*` series). Absent
    /// by default — one branch on a `None` per wait, nothing per
    /// uncontended grant.
    pub fn wait_hist(mut self, hist: impl Into<Option<Arc<TickHist>>>) -> Self {
        self.wait_hist = hist.into();
        self
    }

    /// Builds the manager.
    pub fn build(self) -> LockManager {
        let n = self.shards.unwrap_or(DEFAULT_SHARDS).max(1);
        LockManager {
            shards: (0..n).map(|_| Shard::default()).collect(),
            txns: RwLock::new(std::collections::HashMap::new()),
            next: AtomicU64::new(0),
            stats: StatCounters::default(),
            record: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            policy: self.policy.unwrap_or(ConflictPolicy::AbortReaders),
            timeout: self.timeout,
            obs: self.obs,
            fault: self.fault,
            wait_hist: self.wait_hist,
        }
    }
}

/// Outcome of one attempt inside the [`LockManager::lock`] loop.
enum Attempt {
    /// Mode already held — no-op re-grant.
    AlreadyHeld,
    /// Granted now; wake these (formerly FIFO-blocked-by-us) waiters.
    Granted { wake: Vec<TxnId> },
    /// Not grantable; enqueued (`newly` = first time for this request)
    /// and the wait slot is armed. `holder` names one transaction the
    /// request waits for (the first conflicting holder / earlier
    /// waiter, captured inside the shard critical section so it is an
    /// actual wait-for edge at block time), for the obs `Block` event.
    Enqueued { newly: bool, holder: Option<TxnId> },
}

/// The lock manager. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct LockManager {
    shards: Box<[Shard]>,
    txns: RwLock<std::collections::HashMap<TxnId, Arc<TxnState>>>,
    next: AtomicU64,
    stats: StatCounters,
    record: AtomicBool,
    events: Mutex<Vec<LockEvent>>,
    policy: ConflictPolicy,
    timeout: Option<Duration>,
    obs: Option<Arc<Recorder>>,
    fault: Option<Arc<FaultInjector>>,
    wait_hist: Option<Arc<TickHist>>,
}

impl LockManager {
    /// Returns a composable builder (policy / shards / timeout / obs).
    pub fn builder() -> LockManagerBuilder {
        LockManagerBuilder::default()
    }

    /// Creates a manager with the given `Rc`–`Wa` conflict policy and no
    /// wait timeout (deadlocks are handled by detection). Thin wrapper
    /// over [`LockManager::builder`].
    pub fn new(policy: ConflictPolicy) -> Self {
        LockManager::builder().policy(policy).build()
    }

    /// Creates a manager with an explicit stripe count (min 1). Useful
    /// for tests that want to force cross-shard paths (`shards = 1`
    /// collapses to the old centralised behaviour). Thin wrapper over
    /// [`LockManager::builder`].
    pub fn with_shards(policy: ConflictPolicy, shards: usize) -> Self {
        LockManager::builder().policy(policy).shards(shards).build()
    }

    /// Creates a manager whose blocked requests additionally time out.
    /// Thin wrapper over [`LockManager::builder`].
    pub fn with_timeout(policy: ConflictPolicy, timeout: Duration) -> Self {
        LockManager::builder().policy(policy).timeout(timeout).build()
    }

    /// The attached observability recorder, if any.
    pub fn observer(&self) -> Option<&Arc<Recorder>> {
        self.obs.as_ref()
    }

    /// The attached chaos fault injector, if any (the engine shares it
    /// for the RHS-stall seam).
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// The configured conflict policy.
    pub fn policy(&self) -> ConflictPolicy {
        self.policy
    }

    /// Turns event recording on or off (off by default).
    pub fn set_recording(&self, on: bool) {
        self.record.store(on, Relaxed);
    }

    /// Drains the recorded event log.
    pub fn take_events(&self) -> Vec<LockEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// `(commits, aborts)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.stats.commits.load(Relaxed),
            self.stats.aborts.load(Relaxed),
        )
    }

    /// Full aggregate statistics.
    pub fn stats(&self) -> LockStats {
        LockStats {
            commits: self.stats.commits.load(Relaxed),
            aborts: self.stats.aborts.load(Relaxed),
            grants: self.stats.grants.load(Relaxed),
            blocks: self.stats.blocks.load(Relaxed),
            dooms: self.stats.dooms.load(Relaxed),
            deadlocks: self.stats.deadlocks.load(Relaxed),
            elided: self.stats.elided.load(Relaxed),
        }
    }

    /// Number of locks currently held across every shard (one per
    /// `(resource, holder)` pair). Quiescence invariant: after a run
    /// drains — every transaction committed or aborted — this must be
    /// zero; the leak-audit `debug_assert`s and the disconnect-chaos
    /// gate check it. Takes each shard mutex in turn, so call it only
    /// when the table is quiet (or accept a fuzzy snapshot).
    pub fn held_locks(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.table
                    .lock()
                    .unwrap()
                    .values()
                    .map(|e| e.holders.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    fn log(&self, e: LockEvent) {
        if self.record.load(Relaxed) {
            self.events.lock().unwrap().push(e);
        }
    }

    fn txn_state(&self, txn: TxnId) -> Option<Arc<TxnState>> {
        self.txns.read().unwrap().get(&txn).cloned()
    }

    fn shard(&self, res: ResourceId) -> &Shard {
        &self.shards[shard_of(res, self.shards.len())]
    }

    /// Wakes the given transactions' wait slots.
    fn signal_all(&self, ids: &[TxnId]) {
        if ids.is_empty() {
            return;
        }
        let reg = self.txns.read().unwrap();
        for id in ids {
            if let Some(ts) = reg.get(id) {
                ts.slot.signal();
            }
        }
    }

    /// Starts a transaction.
    pub fn begin(&self) -> TxnId {
        let id = TxnId(self.next.fetch_add(1, Relaxed));
        self.txns
            .write()
            .unwrap()
            .insert(id, Arc::new(TxnState::new()));
        self.log(LockEvent::Begin(id));
        if let Some(obs) = &self.obs {
            obs.record(id.0, ObsEvent::Begin);
        }
        id
    }

    /// `true` while the transaction is live (neither doomed, committed
    /// nor aborted).
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.txn_state(txn)
            .is_some_and(|ts| matches!(ts.inner.lock().unwrap().status, Status::Active))
    }

    /// Checks for a pending doom without acquiring anything — engines
    /// poll this between RHS steps so a doomed production stops early.
    /// On doom the transaction is auto-aborted and the error returned.
    pub fn check(&self, txn: TxnId) -> Result<(), LockError> {
        match self.txn_state(txn) {
            Some(ts) => self.check_doomed(txn, &ts),
            None => Ok(()),
        }
    }

    /// Chaos seam for lock-free read paths: draws exactly the
    /// forced-abort decision a lock request on `res` would draw —
    /// same site, same `(seed, txn, resource)` inputs — without
    /// acquiring anything. [`ConflictPolicy::MvccSnapshot`] condition
    /// reads call this per matched resource, so fault-injected A/B
    /// comparisons against the lock-based modes stay honest: skipping
    /// the `R_c` locks must not also skip the chaos the locks would
    /// have been exposed to. A no-op without an attached injector.
    pub fn inject_read(&self, txn: TxnId, res: ResourceId) -> Result<(), LockError> {
        let Some(inj) = &self.fault else {
            return Ok(());
        };
        let Some(ts) = self.txn_state(txn) else {
            return Err(LockError::NotActive(txn));
        };
        if inj.forced_abort(txn, res_key(res)) {
            self.force_abort_injected(txn, &ts, inj)?;
        }
        Ok(())
    }

    /// Coordination-avoidance seam: books one *elided* acquisition —
    /// the lock the §4 protocol would have taken on `res` but the
    /// commutativity proof lets the engine skip — and draws exactly the
    /// forced-abort decision that lock request would have drawn (same
    /// site, same `(seed, txn, resource)` inputs as
    /// [`LockManager::inject_read`]), so chaos A/B runs stay honest.
    /// Touches no lock table shard: the whole point is that the
    /// resource's queue is never entered.
    pub fn elide(&self, txn: TxnId, res: ResourceId) -> Result<(), LockError> {
        self.stats.elided.fetch_add(1, Relaxed);
        let Some(inj) = &self.fault else {
            return Ok(());
        };
        let Some(ts) = self.txn_state(txn) else {
            return Err(LockError::NotActive(txn));
        };
        if inj.forced_abort(txn, res_key(res)) {
            self.force_abort_injected(txn, &ts, inj)?;
        }
        Ok(())
    }

    /// Acquires `mode` on `res` for `txn`, blocking until granted.
    pub fn lock(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> Result<(), LockError> {
        let mut wait_from: Option<Instant> = None;
        let result = self.lock_inner(txn, res, mode, &mut wait_from);
        if let Some(from) = wait_from {
            let waited = from.elapsed();
            if let Some(obs) = &self.obs {
                obs.phase(Phase::LockWait, waited);
            }
            if let Some(hist) = &self.wait_hist {
                hist.record(waited);
            }
        }
        result
    }

    /// The `lock` loop proper. Sets `*wait_from` the first time the
    /// request enqueues so the wrapper can record the total wait (which
    /// may span several wake/retry rounds) as one `LockWait` sample.
    fn lock_inner(
        &self,
        txn: TxnId,
        res: ResourceId,
        mode: LockMode,
        wait_from: &mut Option<Instant>,
    ) -> Result<(), LockError> {
        let Some(ts) = self.txn_state(txn) else {
            return Err(LockError::NotActive(txn));
        };
        // Chaos seams: forced abort (decided once per request) and a
        // possibly-stormed wait deadline. Both are pure functions of
        // (seed, txn, resource) — see `crate::fault`.
        if let Some(inj) = &self.fault {
            if inj.forced_abort(txn, res_key(res)) {
                self.force_abort_injected(txn, &ts, inj)?;
            }
        }
        let mut stormed = false;
        let deadline = {
            let mut d = self.timeout.map(|t| Instant::now() + t);
            if let Some(storm) = self
                .fault
                .as_ref()
                .and_then(|inj| inj.storm_deadline(txn, res_key(res)))
            {
                let sd = Instant::now() + storm;
                d = Some(d.map_or(sd, |existing| existing.min(sd)));
                stormed = true;
            }
            d
        };
        let mut round: u64 = 0;
        loop {
            self.check_doomed(txn, &ts)?;
            let attempt = {
                let mut table = self.shard(res).table.lock().unwrap();
                let mut inner = ts.inner.lock().unwrap();
                match inner.status {
                    Status::Active => {}
                    // Doomed: loop back so check_doomed surfaces it.
                    Status::Doomed { .. } => continue,
                    _ => return Err(LockError::NotActive(txn)),
                }
                if inner.held.get(&res).is_some_and(|m| m.contains(&mode)) {
                    Attempt::AlreadyHeld
                } else if table.get(&res).is_none_or(|e| e.grantable(txn, mode)) {
                    let entry = table.entry(res).or_default();
                    let wake = if inner.waiting_on.take().is_some() {
                        entry.remove_waiter(txn);
                        // Waiters FIFO-blocked only by our queue entry
                        // may now be grantable.
                        entry.waiter_ids(txn)
                    } else {
                        Vec::new()
                    };
                    entry.holders.entry(txn).or_default().insert(mode);
                    inner.held.entry(res).or_default().insert(mode);
                    Attempt::Granted { wake }
                } else {
                    let newly = inner.waiting_on != Some((res, mode));
                    let mut holder = None;
                    if newly {
                        let entry = table.entry(res).or_default();
                        entry.remove_waiter(txn);
                        entry.waiters.push_back((txn, mode));
                        inner.waiting_on = Some((res, mode));
                        // Name the wait-for edge target while the shard
                        // is still locked (blockers_of stops at our own
                        // queue entry, so pushing first is safe).
                        holder = entry.blockers_of(txn, mode).first().copied();
                    }
                    // Arm while still inside the shard critical section:
                    // every waker mutates under this shard lock first and
                    // signals after, so no wakeup can be lost.
                    ts.slot.arm();
                    Attempt::Enqueued { newly, holder }
                }
            };
            match attempt {
                Attempt::AlreadyHeld => return Ok(()),
                Attempt::Granted { wake } => {
                    self.stats.grants.fetch_add(1, Relaxed);
                    self.log(LockEvent::Grant(txn, res, mode));
                    if let Some(obs) = &self.obs {
                        obs.record(
                            txn.0,
                            ObsEvent::Grant {
                                resource: res_key(res),
                                mode: mode_name(mode),
                            },
                        );
                    }
                    self.signal_all(&wake);
                    if let Some(inj) = &self.fault {
                        inj.grant_delay(txn, res_key(res), self.obs.as_deref());
                    }
                    return Ok(());
                }
                Attempt::Enqueued { newly, holder } => {
                    if newly {
                        self.stats.blocks.fetch_add(1, Relaxed);
                        self.log(LockEvent::Block(txn, res, mode));
                        if wait_from.is_none() {
                            *wait_from = Some(Instant::now());
                        }
                        if let Some(obs) = &self.obs {
                            obs.record(
                                txn.0,
                                ObsEvent::Block {
                                    resource: res_key(res),
                                    mode: mode_name(mode),
                                    holder: holder.map(|h| h.0),
                                },
                            );
                        }
                    }
                    // Deadlock detection runs with no shard lock held.
                    if let Some(cycle) = find_cycle(txn, &|t| self.blockers_of(t)) {
                        let victim = *cycle.iter().max().expect("cycle is non-empty");
                        self.doom_deadlock_victim(victim);
                        if victim == txn {
                            self.check_doomed(txn, &ts)?;
                        }
                    }
                    // A doom whose signal landed *before* our arm would be
                    // erased by it — but such a doom set our status before
                    // signalling, so this re-check catches it. Dooms after
                    // the arm land on the flag and park returns at once.
                    if matches!(ts.inner.lock().unwrap().status, Status::Doomed { .. }) {
                        self.check_doomed(txn, &ts)?;
                    }
                    // Chaos seam: a spurious wakeup skips the park and
                    // re-runs the grant loop with no signal (round-
                    // salted so a looping request draws fresh odds).
                    round += 1;
                    if self.fault.as_ref().is_some_and(|inj| {
                        inj.spurious_wakeup(txn, res_key(res), round, self.obs.as_deref())
                    }) {
                        continue;
                    }
                    match deadline {
                        Some(d) => {
                            if ts.slot.park_until(d) {
                                // Chaos seam: widen the window between
                                // the timeout and the cancellation so
                                // the doom-priority rule below is
                                // exercisable under test.
                                if let Some(inj) = &self.fault {
                                    inj.timeout_race_stall(txn, self.obs.as_deref());
                                }
                                self.cancel_wait(txn, &ts, res);
                                // A doom posted concurrently with the
                                // timeout must win: it is the higher-
                                // priority cause and its auto-abort
                                // accounts the abort exactly once.
                                // Returning Timeout here would let the
                                // caller abort a transaction the
                                // committer already doomed — the cause
                                // taxonomy would misattribute it (and
                                // the doom would vanish from the
                                // blocking graph's terminal causes).
                                self.check_doomed(txn, &ts)?;
                                if stormed {
                                    if let Some(inj) = &self.fault {
                                        inj.count_timeout_storm(txn, self.obs.as_deref());
                                    }
                                }
                                return Err(LockError::Timeout(txn));
                            }
                        }
                        None => ts.slot.park(),
                    }
                }
            }
        }
    }

    /// Non-blocking acquire: `Ok(true)` granted, `Ok(false)` would block.
    pub fn try_lock(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> Result<bool, LockError> {
        let Some(ts) = self.txn_state(txn) else {
            return Err(LockError::NotActive(txn));
        };
        self.check_doomed(txn, &ts)?;
        let granted = {
            let mut table = self.shard(res).table.lock().unwrap();
            let mut inner = ts.inner.lock().unwrap();
            match inner.status {
                Status::Active => {}
                Status::Doomed { .. } => {
                    drop(inner);
                    drop(table);
                    self.check_doomed(txn, &ts)?;
                    unreachable!("doomed status must surface as an error");
                }
                _ => return Err(LockError::NotActive(txn)),
            }
            if inner.held.get(&res).is_some_and(|m| m.contains(&mode)) {
                return Ok(true);
            }
            if table.get(&res).is_none_or(|e| e.grantable(txn, mode)) {
                table
                    .entry(res)
                    .or_default()
                    .holders
                    .entry(txn)
                    .or_default()
                    .insert(mode);
                inner.held.entry(res).or_default().insert(mode);
                true
            } else {
                false
            }
        };
        if granted {
            self.stats.grants.fetch_add(1, Relaxed);
            self.log(LockEvent::Grant(txn, res, mode));
            if let Some(obs) = &self.obs {
                obs.record(
                    txn.0,
                    ObsEvent::Grant {
                        resource: res_key(res),
                        mode: mode_name(mode),
                    },
                );
            }
        }
        Ok(granted)
    }

    /// Commits the transaction: applies the `Rc`–`Wa` commit rule, then
    /// releases every lock.
    pub fn commit(&self, txn: TxnId) -> Result<CommitOutcome, LockError> {
        let Some(ts) = self.txn_state(txn) else {
            return Err(LockError::NotActive(txn));
        };
        // The linearization point: doom-check and Active → Committed flip
        // are one critical section on our own mutex, so a concurrently
        // committing writer either dooms us first (we abort here) or sees
        // us Committed and skips us (Figure 4.3(a), reader-first order).
        let taken = {
            let mut inner = ts.inner.lock().unwrap();
            match inner.status {
                Status::Doomed { .. } => None,
                Status::Active => {
                    inner.status = Status::Committed;
                    Some((std::mem::take(&mut inner.held), inner.waiting_on.take()))
                }
                _ => return Err(LockError::NotActive(txn)),
            }
        };
        let Some((held, waiting)) = taken else {
            self.check_doomed(txn, &ts)?;
            unreachable!("doomed status must surface as an error");
        };
        // Find live Rc holders overlapped by our Wa locks (they could
        // only have acquired Rc *before* our Wa was granted — Table 4.1
        // forbids the reverse order). We still hold the shard entries, so
        // no new Rc can slip in before release below.
        let wa: Vec<ResourceId> = held
            .iter()
            .filter(|(_, modes)| modes.contains(&LockMode::Wa))
            .map(|(r, _)| *r)
            .collect();
        let mut affected: Vec<TxnId> = Vec::new();
        for (si, ress) in group_by_shard(&wa, self.shards.len()) {
            let table = self.shards[si].table.lock().unwrap();
            for res in ress {
                if let Some(entry) = table.get(&res) {
                    for (&holder, modes) in &entry.holders {
                        if holder != txn
                            && modes.contains(&LockMode::Rc)
                            && !affected.contains(&holder)
                        {
                            affected.push(holder);
                        }
                    }
                }
            }
        }
        let mut outcome = CommitOutcome::default();
        match self.policy {
            ConflictPolicy::AbortReaders => {
                for reader in affected {
                    let Some(rts) = self.txn_state(reader) else {
                        continue;
                    };
                    // Doom only if still Active at this instant — a reader
                    // that already committed won (legal serial order) and
                    // one that already aborted needs nothing. The obs
                    // timestamp is taken *inside* the critical section:
                    // the victim records its own Abort only after it can
                    // observe the doom (under this same mutex), so the
                    // per-transaction event order stays monotone.
                    let doomed = {
                        let mut ri = rts.inner.lock().unwrap();
                        if matches!(ri.status, Status::Active) {
                            ri.status = Status::Doomed { by: Some(txn) };
                            Some(self.obs.as_ref().map(|o| o.now()))
                        } else {
                            None
                        }
                    };
                    if let Some(ts) = doomed {
                        self.stats.dooms.fetch_add(1, Relaxed);
                        self.log(LockEvent::Doom(reader, Some(txn)));
                        if let (Some(obs), Some(ts)) = (&self.obs, ts) {
                            obs.record_at(ts, reader.0, ObsEvent::Doom { by: txn.0 });
                        }
                        outcome.doomed_readers.push(reader);
                        rts.slot.signal(); // it may be parked
                    }
                }
            }
            ConflictPolicy::Revalidate => {
                for reader in affected {
                    let still_active = self
                        .txn_state(reader)
                        .is_some_and(|rts| matches!(rts.inner.lock().unwrap().status, Status::Active));
                    if still_active {
                        outcome.needs_revalidation.push(reader);
                    }
                }
            }
            // MVCC: nobody holds Rc (condition reads are snapshot
            // reads), so there is nothing to doom or revalidate. If a
            // misconfigured caller *did* take Rc under this policy, the
            // reader is left alone — commit-time self-validation in the
            // engine is the correctness backstop.
            ConflictPolicy::MvccSnapshot => {}
        }
        self.release_held(txn, held, waiting);
        self.stats.commits.fetch_add(1, Relaxed);
        self.log(LockEvent::Commit(txn));
        if let Some(obs) = &self.obs {
            obs.record(txn.0, ObsEvent::Commit);
        }
        Ok(outcome)
    }

    /// Aborts the transaction, releasing everything it holds.
    pub fn abort(&self, txn: TxnId) -> Result<(), LockError> {
        let Some(ts) = self.txn_state(txn) else {
            return Err(LockError::NotActive(txn));
        };
        let taken = {
            let mut inner = ts.inner.lock().unwrap();
            match inner.status {
                Status::Active | Status::Doomed { .. } => {
                    inner.status = Status::Aborted;
                    (std::mem::take(&mut inner.held), inner.waiting_on.take())
                }
                _ => return Err(LockError::NotActive(txn)),
            }
        };
        self.release_held(txn, taken.0, taken.1);
        self.stats.aborts.fetch_add(1, Relaxed);
        self.log(LockEvent::Abort(txn));
        Ok(())
    }

    /// If `txn` is doomed: auto-abort it and surface the reason. The
    /// `Doomed → Aborted` flip happens in one critical section so the
    /// abort accounting runs exactly once even under concurrent polls.
    fn check_doomed(&self, txn: TxnId, ts: &Arc<TxnState>) -> Result<(), LockError> {
        let doomed = {
            let mut inner = ts.inner.lock().unwrap();
            match inner.status {
                Status::Doomed { by } => {
                    inner.status = Status::Aborted;
                    Some((by, std::mem::take(&mut inner.held), inner.waiting_on.take()))
                }
                _ => None,
            }
        };
        let Some((by, held, waiting)) = doomed else {
            return Ok(());
        };
        self.release_held(txn, held, waiting);
        self.stats.aborts.fetch_add(1, Relaxed);
        self.log(LockEvent::Abort(txn));
        Err(match by {
            Some(writer) => LockError::DoomedByWriter { txn, by: writer },
            None => LockError::Deadlock(txn),
        })
    }

    /// Carries out a fault-injected forced abort: `Active → Aborted`
    /// in one critical section (mirroring [`LockManager::check_doomed`]
    /// so the abort is accounted exactly once), then releases every
    /// lock. An organic doom that raced in first takes priority — the
    /// injector must never steal a `Doomed`/`Deadlock` cause — and a
    /// finished transaction falls through to the normal `NotActive`
    /// path untouched.
    fn force_abort_injected(
        &self,
        txn: TxnId,
        ts: &Arc<TxnState>,
        inj: &FaultInjector,
    ) -> Result<(), LockError> {
        let taken = {
            let mut inner = ts.inner.lock().unwrap();
            match inner.status {
                Status::Active => {
                    inner.status = Status::Aborted;
                    Some((std::mem::take(&mut inner.held), inner.waiting_on.take()))
                }
                Status::Doomed { .. } => None, // organic cause wins
                _ => return Ok(()),
            }
        };
        match taken {
            Some((held, waiting)) => {
                self.release_held(txn, held, waiting);
                self.stats.aborts.fetch_add(1, Relaxed);
                self.log(LockEvent::Abort(txn));
                inj.count_forced_abort(txn, self.obs.as_deref());
                Err(LockError::Injected(txn))
            }
            None => self.check_doomed(txn, ts),
        }
    }

    /// Transactions currently blocking `t`'s pending request. Reads
    /// `t`'s own mutex, drops it, then reads the one shard of the
    /// resource `t` waits for — never two locks at once.
    fn blockers_of(&self, t: TxnId) -> Vec<TxnId> {
        let Some(ts) = self.txn_state(t) else {
            return Vec::new();
        };
        let waiting = ts.inner.lock().unwrap().waiting_on;
        let Some((res, mode)) = waiting else {
            return Vec::new();
        };
        let table = self.shard(res).table.lock().unwrap();
        match table.get(&res) {
            Some(entry) => entry.blockers_of(t, mode),
            None => Vec::new(),
        }
    }

    /// Marks `victim` doomed as a deadlock victim (if still active) and
    /// wakes it so its parked `lock` call can observe the doom.
    fn doom_deadlock_victim(&self, victim: TxnId) {
        let Some(vts) = self.txn_state(victim) else {
            return;
        };
        let doomed = {
            let mut inner = vts.inner.lock().unwrap();
            if matches!(inner.status, Status::Active) {
                inner.status = Status::Doomed { by: None };
                // Timestamp inside the critical section — see the
                // matching comment in `commit`.
                Some(self.obs.as_ref().map(|o| o.now()))
            } else {
                None
            }
        };
        if let Some(ts) = doomed {
            self.stats.deadlocks.fetch_add(1, Relaxed);
            self.log(LockEvent::Doom(victim, None));
            if let (Some(obs), Some(ts)) = (&self.obs, ts) {
                obs.record_at(ts, victim.0, ObsEvent::Deadlock);
            }
        }
        vts.slot.signal();
    }

    /// Removes `txn` from the waiter queue of `res` after a timed-out
    /// wait, waking waiters that queued behind it.
    fn cancel_wait(&self, txn: TxnId, ts: &Arc<TxnState>, res: ResourceId) {
        let wake = {
            let mut table = self.shard(res).table.lock().unwrap();
            let mut inner = ts.inner.lock().unwrap();
            inner.waiting_on = None;
            match table.get_mut(&res) {
                Some(entry) => {
                    entry.remove_waiter(txn);
                    let wake = entry.waiter_ids(txn);
                    if entry.is_vacant() {
                        table.remove(&res);
                    }
                    wake
                }
                None => Vec::new(),
            }
        };
        self.signal_all(&wake);
    }

    /// Releases every held lock (and any stale waiter entry), shard by
    /// shard, then wakes the waiters of the entries we touched.
    fn release_held(
        &self,
        txn: TxnId,
        held: BTreeMap<ResourceId, std::collections::BTreeSet<LockMode>>,
        waiting: Option<(ResourceId, LockMode)>,
    ) {
        let mut resources: Vec<ResourceId> = held.keys().copied().collect();
        if let Some((res, _)) = waiting {
            if !resources.contains(&res) {
                resources.push(res);
            }
        }
        let mut wake: Vec<TxnId> = Vec::new();
        for (si, ress) in group_by_shard(&resources, self.shards.len()) {
            let mut table = self.shards[si].table.lock().unwrap();
            for res in ress {
                if let Some(entry) = table.get_mut(&res) {
                    entry.holders.remove(&txn);
                    entry.remove_waiter(txn);
                    wake.extend(entry.waiter_ids(txn));
                    if entry.is_vacant() {
                        table.remove(&res);
                    }
                }
            }
        }
        wake.sort_unstable();
        wake.dedup();
        self.signal_all(&wake);
    }
}

/// Groups resources by their shard index (so each shard mutex is taken
/// once, and shards are visited in ascending order).
fn group_by_shard(resources: &[ResourceId], shards: usize) -> BTreeMap<usize, Vec<ResourceId>> {
    let mut by_shard: BTreeMap<usize, Vec<ResourceId>> = BTreeMap::new();
    for &res in resources {
        by_shard.entry(shard_of(res, shards)).or_default().push(res);
    }
    by_shard
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("policy", &self.policy)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use crate::LockMode::*;

    fn t(n: u64) -> ResourceId {
        ResourceId::Tuple(n)
    }

    #[test]
    fn shared_reads_coexist() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), Rc).unwrap();
        m.lock(b, t(1), Rc).unwrap();
        m.lock(b, t(1), Ra).unwrap();
        assert!(m.commit(a).unwrap().doomed_readers.is_empty());
        assert!(m.commit(b).is_ok());
    }

    #[test]
    fn wa_granted_over_rc_but_not_vice_versa() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (r, w, late) = (m.begin(), m.begin(), m.begin());
        m.lock(r, t(1), Rc).unwrap();
        assert_eq!(m.try_lock(w, t(1), Wa), Ok(true), "Rc ∥ Wa (Table 4.1)");
        assert_eq!(
            m.try_lock(late, t(1), Rc),
            Ok(false),
            "no Rc under a live Wa"
        );
    }

    #[test]
    fn reader_commits_first_both_commit() {
        // Figure 4.3(a): serial order Pj Pi.
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        let o = m.commit(pj).unwrap();
        assert!(o.doomed_readers.is_empty());
        let o = m.commit(pi).unwrap();
        assert!(o.doomed_readers.is_empty(), "reader already gone");
    }

    #[test]
    fn writer_commits_first_reader_aborts() {
        // Figure 4.3(b): Pi commits → Pj forced to abort.
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        let o = m.commit(pi).unwrap();
        assert_eq!(o.doomed_readers, vec![pj]);
        let e = m.commit(pj).unwrap_err();
        assert_eq!(e, LockError::DoomedByWriter { txn: pj, by: pi });
        assert!(!m.is_active(pj));
    }

    #[test]
    fn revalidate_policy_does_not_doom() {
        let m = LockManager::new(ConflictPolicy::Revalidate);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        let o = m.commit(pi).unwrap();
        assert!(o.doomed_readers.is_empty());
        assert_eq!(o.needs_revalidation, vec![pj]);
        // Engine decides: here revalidation passes, reader commits.
        assert!(m.commit(pj).is_ok());
    }

    #[test]
    fn circular_conflict_exactly_one_commits() {
        // Figure 4.4: Pi holds Rc(q), Wa(r); Pj holds Rc(r), Wa(q).
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pi, pj) = (m.begin(), m.begin());
        let (q, r) = (t(1), t(2));
        m.lock(pi, q, Rc).unwrap();
        m.lock(pj, r, Rc).unwrap();
        m.lock(pi, r, Wa).unwrap();
        m.lock(pj, q, Wa).unwrap();
        // Whichever commits first dooms the other.
        let o = m.commit(pi).unwrap();
        assert_eq!(o.doomed_readers, vec![pj]);
        assert!(m.commit(pj).unwrap_err().is_abort());
    }

    #[test]
    fn two_phase_baseline_blocks_writer() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (r, w) = (m.begin(), m.begin());
        m.lock(r, t(1), S).unwrap();
        assert_eq!(m.try_lock(w, t(1), X), Ok(false), "2PL: X waits for S");
    }

    #[test]
    fn blocking_wait_is_woken_by_release() {
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(b, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        m.commit(a).unwrap();
        h.join().unwrap().unwrap();
        m.commit(b).unwrap();
    }

    #[test]
    fn deadlock_detected_and_youngest_aborted() {
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let older = m.begin();
        let younger = m.begin();
        m.lock(older, t(1), X).unwrap();
        m.lock(younger, t(2), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            // younger waits for t1 (held by older)...
            m2.lock(younger, t(1), X)
        });
        std::thread::sleep(Duration::from_millis(30));
        // ...and older now waits for t2 (held by younger) → cycle.
        let res_older = m.lock(older, t(2), X);
        let res_younger = h.join().unwrap();
        // The younger transaction is the victim; the older proceeds.
        assert!(res_older.is_ok(), "older survives: {res_older:?}");
        assert_eq!(res_younger.unwrap_err(), LockError::Deadlock(younger));
        m.commit(older).unwrap();
    }

    #[test]
    fn timeout_fires_when_configured() {
        let m = LockManager::with_timeout(ConflictPolicy::AbortReaders, Duration::from_millis(20));
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        assert_eq!(m.lock(b, t(1), X), Err(LockError::Timeout(b)));
    }

    #[test]
    fn builder_composes_timeout_with_shards_and_policy() {
        // The old constructors could not express this combination.
        let m = LockManager::builder()
            .policy(ConflictPolicy::Revalidate)
            .shards(4)
            .timeout(Duration::from_millis(20))
            .build();
        assert_eq!(m.policy(), ConflictPolicy::Revalidate);
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        assert_eq!(m.lock(b, t(1), X), Err(LockError::Timeout(b)));
    }

    #[test]
    fn builder_defaults_match_new() {
        let m = LockManager::builder().build();
        assert_eq!(m.policy(), ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.lock(a, t(1), Rc).unwrap();
        m.commit(a).unwrap();
    }

    #[test]
    fn obs_recorder_sees_lock_lifecycle() {
        use dps_obs::EventKind;

        let rec = Arc::new(Recorder::default());
        let m = LockManager::builder().obs(Arc::clone(&rec)).build();
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), Rc).unwrap();
        m.lock(b, t(1), Wa).unwrap();
        m.commit(b).unwrap(); // dooms `a`
        let history = rec.history();
        let kinds_a: Vec<_> = history.iter().filter(|e| e.txn == a.0).map(|e| e.kind).collect();
        assert!(kinds_a.contains(&EventKind::Begin));
        assert!(kinds_a.contains(&EventKind::Grant {
            resource: res_key(t(1)),
            mode: "Rc"
        }));
        assert!(kinds_a.contains(&EventKind::Doom { by: b.0 }));
        let kinds_b: Vec<_> = history.iter().filter(|e| e.txn == b.0).map(|e| e.kind).collect();
        assert_eq!(kinds_b.last(), Some(&EventKind::Commit));
        let rep = rec.report();
        assert_eq!(rep.begins, 2);
        assert_eq!(rep.commits, 1);
        assert_eq!(rep.dooms, 1);
    }

    #[test]
    fn obs_lock_wait_histogram_counts_blocked_waits() {
        let rec = Arc::new(Recorder::default());
        let m = Arc::new(LockManager::builder().obs(Arc::clone(&rec)).build());
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(b, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        m.commit(a).unwrap();
        h.join().unwrap().unwrap();
        let snap = rec.phase_snapshot(Phase::LockWait);
        assert_eq!(snap.count, 1, "one blocked wait recorded");
        assert!(
            snap.max >= Duration::from_millis(20).as_nanos() as u64,
            "wait spanned the writer's hold time (max {} ns)",
            snap.max
        );
        m.commit(b).unwrap();
    }

    #[test]
    fn res_key_spaces_never_collide() {
        assert_ne!(res_key(ResourceId::Tuple(7)), res_key(ResourceId::Relation(7)));
        assert_eq!(res_key(ResourceId::Tuple(7)) & 1, 0);
        assert_eq!(res_key(ResourceId::Relation(7)) & 1, 1);
        for res in [ResourceId::Tuple(0), ResourceId::Tuple(41), ResourceId::Relation(9)] {
            assert_eq!(res_of_key(res_key(res)), res);
        }
    }

    #[test]
    fn obs_block_event_names_the_holder() {
        use dps_obs::EventKind;

        let rec = Arc::new(Recorder::default());
        let m = Arc::new(LockManager::builder().obs(Arc::clone(&rec)).build());
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(b, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        m.commit(a).unwrap();
        h.join().unwrap().unwrap();
        m.commit(b).unwrap();
        let history = rec.history();
        let block = history
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("one Block event");
        assert_eq!(block.txn, b.0);
        assert_eq!(
            block.kind,
            EventKind::Block {
                resource: res_key(t(1)),
                mode: "X",
                holder: Some(a.0),
            },
            "the blocked writer names the holding writer as its wait-for target"
        );
    }

    #[test]
    fn fifo_fairness_prevents_reader_overtaking_writer() {
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let (r1, w, r2) = (m.begin(), m.begin(), m.begin());
        m.lock(r1, t(1), S).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(w, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        // r2 must queue behind the waiting writer.
        assert_eq!(m.try_lock(r2, t(1), S), Ok(false));
        m.commit(r1).unwrap();
        h.join().unwrap().unwrap();
        m.commit(w).unwrap();
    }

    #[test]
    fn relock_held_mode_is_noop() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.lock(a, t(1), Rc).unwrap();
        m.lock(a, t(1), Rc).unwrap();
        m.lock(a, t(1), Wa).unwrap(); // self-upgrade Rc→Wa
        m.commit(a).unwrap();
    }

    #[test]
    fn operations_on_finished_txn_fail() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.commit(a).unwrap();
        assert_eq!(m.lock(a, t(1), S), Err(LockError::NotActive(a)));
        assert_eq!(m.commit(a), Err(LockError::NotActive(a)));
        assert_eq!(m.abort(a), Err(LockError::NotActive(a)));
    }

    #[test]
    fn abort_releases_locks() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        m.abort(a).unwrap();
        assert_eq!(m.try_lock(b, t(1), X), Ok(true));
        let (commits, aborts) = m.counters();
        assert_eq!((commits, aborts), (0, 1));
    }

    #[test]
    fn doomed_reader_discovers_on_next_lock() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        m.commit(pi).unwrap();
        // The reader's next lock call surfaces the doom.
        let e = m.lock(pj, t(2), Rc).unwrap_err();
        assert_eq!(e, LockError::DoomedByWriter { txn: pj, by: pi });
    }

    #[test]
    fn event_log_records_protocol() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        m.set_recording(true);
        let a = m.begin();
        m.lock(a, t(1), Rc).unwrap();
        m.commit(a).unwrap();
        let ev = m.take_events();
        assert_eq!(
            ev,
            vec![
                LockEvent::Begin(a),
                LockEvent::Grant(a, t(1), Rc),
                LockEvent::Commit(a)
            ]
        );
        assert!(m.take_events().is_empty(), "drained");
    }

    #[test]
    fn wa_then_commit_with_no_readers_dooms_nobody() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.lock(a, t(1), Wa).unwrap();
        let o = m.commit(a).unwrap();
        assert!(o.doomed_readers.is_empty());
        assert!(o.needs_revalidation.is_empty());
    }

    #[test]
    fn escalated_relation_lock_conflicts_like_any_resource() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (a, b) = (m.begin(), m.begin());
        let rel = ResourceId::Relation(7);
        m.lock(a, rel, Rc).unwrap();
        assert_eq!(
            m.try_lock(b, rel, Wa),
            Ok(true),
            "Rc ∥ Wa at relation level too"
        );
        m.commit(b).unwrap();
        assert!(m.commit(a).unwrap_err().is_abort());
    }

    #[test]
    fn timeout_racing_a_doom_counts_once_as_doomed() {
        // The §4.3 cause-priority rule: a wait that times out while a
        // doom is concurrently posted must surface as `DoomedByWriter`
        // (the higher-priority cause) and be accounted exactly once —
        // not race into a Timeout return plus a caller-side abort of
        // an already-doomed transaction. The injected
        // `timeout_race_stall` widens the window between `park_until`
        // expiring and the waiter cancelling itself so the doom
        // deterministically lands inside it.
        use crate::fault::{FaultInjector, FaultPlan};
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            timeout_race_stall_us: 100_000, // 100 ms
            ..Default::default()
        }));
        let m = Arc::new(
            LockManager::builder()
                .policy(ConflictPolicy::AbortReaders)
                .timeout(Duration::from_millis(30))
                .fault(Arc::clone(&inj))
                .build(),
        );
        let (pj, pi, holder) = (m.begin(), m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap(); // overlapped by pi's Wa below
        m.lock(pi, t(1), Wa).unwrap();
        m.lock(holder, t(2), X).unwrap(); // blocks pj's next request
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(pj, t(2), X));
        // Let pj park and time out (30 ms), then doom it mid-stall
        // (the stall holds the window open until 130 ms).
        std::thread::sleep(Duration::from_millis(60));
        let o = m.commit(pi).unwrap();
        assert_eq!(o.doomed_readers, vec![pj], "commit dooms the Rc holder");
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(
            err,
            LockError::DoomedByWriter { txn: pj, by: pi },
            "doom outranks the concurrent timeout"
        );
        // Accounted exactly once: the auto-abort already ran, so a
        // caller-side abort is the benign NotActive no-op.
        assert_eq!(m.abort(pj), Err(LockError::NotActive(pj)));
        let s = m.stats();
        assert_eq!((s.aborts, s.dooms, s.commits), (1, 1, 1));
        assert_eq!(inj.stats().timeout_race_stalls, 1);
        m.commit(holder).unwrap();
    }

    #[test]
    fn forced_abort_injects_once_with_its_own_cause() {
        use crate::fault::{FaultInjector, FaultPlan};
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            forced_abort_pm: 1000, // always
            ..Default::default()
        }));
        let m = LockManager::builder().fault(Arc::clone(&inj)).build();
        let a = m.begin();
        assert_eq!(m.lock(a, t(1), Rc), Err(LockError::Injected(a)));
        assert!(!m.is_active(a));
        // Single accounting: the injected abort already ran.
        assert_eq!(m.abort(a), Err(LockError::NotActive(a)));
        assert_eq!(m.stats().aborts, 1);
        assert_eq!(inj.stats().forced_aborts, 1);
        // The released table is clean for the next transaction.
        let b = m.begin();
        let _ = m.lock(b, t(1), Rc); // injected or granted, both legal
    }

    #[test]
    fn organic_doom_outranks_injected_abort() {
        use crate::fault::{FaultInjector, FaultPlan};
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            forced_abort_pm: 1000,
            ..Default::default()
        }));
        let m = LockManager::builder().fault(inj).build();
        let (pj, pi) = (m.begin(), m.begin());
        // pj acquires Rc *before* the injector plan can veto it? No —
        // forced_abort_pm: 1000 hits every request, so doom pj by hand
        // instead: flip its status via the commit rule with a manager
        // that dooms it first. Simplest deterministic route: doom via
        // deadlock-victim marking is internal, so use the commit rule
        // on a second manager-free path — here we just verify that a
        // doomed transaction's next request surfaces the doom, not the
        // injection. Build the overlap on a quiet manager first.
        let quiet = LockManager::new(ConflictPolicy::AbortReaders);
        let (qj, qi) = (quiet.begin(), quiet.begin());
        quiet.lock(qj, t(1), Rc).unwrap();
        quiet.lock(qi, t(1), Wa).unwrap();
        quiet.commit(qi).unwrap(); // dooms qj
        let err = quiet.lock(qj, t(2), Rc).unwrap_err();
        assert_eq!(err, LockError::DoomedByWriter { txn: qj, by: qi });
        // And on the always-inject manager, a *live* transaction gets
        // the injected cause — proving the two causes stay distinct.
        let err = m.lock(pj, t(1), Rc).unwrap_err();
        assert_eq!(err, LockError::Injected(pj));
        let err = m.lock(pi, t(2), Rc).unwrap_err();
        assert_eq!(err, LockError::Injected(pi));
    }

    #[test]
    fn quiet_fault_plan_changes_nothing() {
        use crate::fault::{FaultInjector, FaultPlan};
        let m = LockManager::builder()
            .fault(Arc::new(FaultInjector::new(FaultPlan::quiet(99))))
            .build();
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), Rc).unwrap();
        m.lock(b, t(1), Wa).unwrap();
        m.commit(b).unwrap();
        assert!(m.commit(a).unwrap_err().is_abort());
        assert_eq!(m.fault_injector().unwrap().stats().total(), 0);
    }

    #[test]
    fn spurious_wakeups_do_not_break_blocking_waits() {
        use crate::fault::{FaultInjector, FaultPlan};
        let m = Arc::new(
            LockManager::builder()
                .fault(Arc::new(FaultInjector::new(FaultPlan {
                    seed: 17,
                    spurious_wakeup_pm: 500,
                    grant_delay_pm: 500,
                    grant_delay_us: 50,
                    ..Default::default()
                })))
                .build(),
        );
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(b, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        m.commit(a).unwrap();
        h.join().unwrap().unwrap();
        m.commit(b).unwrap();
        assert_eq!(m.stats().commits, 2, "grant loop survives spurious rounds");
    }

    #[test]
    fn timeout_storm_fires_without_a_configured_timeout() {
        use crate::fault::{FaultInjector, FaultPlan};
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            timeout_storm_pm: 1000, // every blocked wait gets slashed
            timeout_storm_us: 5_000,
            ..Default::default()
        }));
        let m = LockManager::builder().fault(Arc::clone(&inj)).build();
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        // No manager timeout, but the storm slashes the deadline.
        assert_eq!(m.lock(b, t(1), X), Err(LockError::Timeout(b)));
        assert_eq!(inj.stats().timeout_storms, 1);
        m.commit(a).unwrap();
    }

    #[test]
    fn concurrent_stress_no_lost_state() {
        // Many threads lock/commit disjoint and overlapping resources;
        // at the end the table must be empty and counters consistent.
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut outcomes = (0u32, 0u32);
                    for k in 0..50u64 {
                        let txn = m.begin();
                        let res = t(k % 5);
                        let ok = (|| -> Result<(), LockError> {
                            m.lock(txn, res, Rc)?;
                            if (i + k) % 2 == 0 {
                                m.lock(txn, t(10 + (k % 3)), Wa)?;
                            }
                            m.commit(txn)?;
                            Ok(())
                        })();
                        match ok {
                            Ok(()) => outcomes.0 += 1,
                            Err(e) => {
                                if m.is_active(txn) || e.is_abort() {
                                    let _ = m.abort(txn);
                                }
                                outcomes.1 += 1;
                            }
                        }
                    }
                    outcomes
                })
            })
            .collect();
        let mut commits = 0;
        for h in threads {
            let (c, _a) = h.join().unwrap();
            commits += u64::from(c);
        }
        let (mc, _ma) = m.counters();
        assert_eq!(mc, commits);
        // Lock table fully drained.
        let fresh = m.begin();
        for k in 0..15 {
            assert_eq!(m.try_lock(fresh, t(k), X), Ok(true));
        }
    }
}
