//! The centralised lock manager.
//!
//! One global lock table guarded by a mutex, a condition variable for
//! blocking waits, FIFO-fair queues per resource, waits-for-graph
//! deadlock detection (youngest victim), and the paper's commit-time
//! `Rc`–`Wa` conflict resolution.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::{compatible, LockError, LockMode, ResourceId};

/// Transaction identifier. Monotonically increasing: a larger id means a
/// *younger* transaction (deadlock victims are the youngest in the cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// What to do with live `Rc` holders when an overlapping `Wa` holder
/// commits first (paper §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Rule (ii): "if `P_i` reaches the commit point first, `P_j` must be
    /// forced to abort." The manager dooms the readers; their next
    /// operation fails with [`LockError::DoomedByWriter`].
    AbortReaders,
    /// The paper's alternative: "reevaluate `P_j`'s condition to see if
    /// abort is necessary, at the expense of increased overhead." The
    /// manager does not doom anybody; [`CommitOutcome::needs_revalidation`]
    /// lists the affected readers and the *engine* re-evaluates their
    /// conditions, aborting only those whose LHS no longer holds.
    Revalidate,
}

/// Result of a successful commit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Readers force-aborted by this commit (policy `AbortReaders`).
    pub doomed_readers: Vec<TxnId>,
    /// Readers the engine must re-validate (policy `Revalidate`).
    pub needs_revalidation: Vec<TxnId>,
}

/// Aggregate lock-manager statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (all causes).
    pub aborts: u64,
    /// Lock grants (including re-grants of held modes are excluded).
    pub grants: u64,
    /// Requests that had to wait at least once.
    pub blocks: u64,
    /// Readers doomed by committing writers.
    pub dooms: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
}

/// An entry in the manager's event log (recording is off by default).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockEvent {
    /// Transaction began.
    Begin(TxnId),
    /// Lock granted.
    Grant(TxnId, ResourceId, LockMode),
    /// Request blocked, waiting.
    Block(TxnId, ResourceId, LockMode),
    /// Transaction doomed (`by` is the committing writer, `None` for a
    /// deadlock victim).
    Doom(TxnId, Option<TxnId>),
    /// Transaction committed.
    Commit(TxnId),
    /// Transaction aborted.
    Abort(TxnId),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Active,
    Doomed { by: Option<TxnId> },
    Committed,
    Aborted,
}

#[derive(Debug, Default)]
struct TxnInfo {
    status: Option<Status>,
    held: BTreeMap<ResourceId, BTreeSet<LockMode>>,
}

impl TxnInfo {
    fn status(&self) -> &Status {
        self.status.as_ref().expect("initialised at begin")
    }
}

#[derive(Debug, Default)]
struct Entry {
    holders: BTreeMap<TxnId, BTreeSet<LockMode>>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

#[derive(Debug, Default)]
struct State {
    next: u64,
    txns: HashMap<TxnId, TxnInfo>,
    table: HashMap<ResourceId, Entry>,
    /// txn → resource it is currently blocked on (at most one).
    waiting_on: HashMap<TxnId, (ResourceId, LockMode)>,
    events: Vec<LockEvent>,
    record: bool,
    aborts: u64,
    commits: u64,
    stats: LockStats,
}

impl State {
    fn log(&mut self, e: LockEvent) {
        if self.record {
            self.events.push(e);
        }
    }

    fn entry(&mut self, res: ResourceId) -> &mut Entry {
        self.table.entry(res).or_default()
    }

    /// Is `mode` grantable to `txn` on `res` right now?
    fn grantable(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> bool {
        let Some(entry) = self.table.get(&res) else {
            return true;
        };
        for (&holder, modes) in &entry.holders {
            if holder == txn {
                continue;
            }
            if modes.iter().any(|&held| !compatible(held, mode)) {
                return false;
            }
        }
        // FIFO fairness: do not jump over an earlier waiter we conflict
        // with (prevents writer starvation).
        for &(waiter, wmode) in &entry.waiters {
            if waiter == txn {
                break;
            }
            if !compatible(wmode, mode) || !compatible(mode, wmode) {
                return false;
            }
        }
        true
    }

    fn grant(&mut self, txn: TxnId, res: ResourceId, mode: LockMode) {
        self.entry(res).holders.entry(txn).or_default().insert(mode);
        self.txns
            .get_mut(&txn)
            .expect("active")
            .held
            .entry(res)
            .or_default()
            .insert(mode);
        self.stats.grants += 1;
        self.log(LockEvent::Grant(txn, res, mode));
    }

    fn dequeue_waiter(&mut self, txn: TxnId) {
        if let Some((res, _)) = self.waiting_on.remove(&txn) {
            if let Some(entry) = self.table.get_mut(&res) {
                entry.waiters.retain(|&(t, _)| t != txn);
            }
        }
    }

    fn release_all(&mut self, txn: TxnId) {
        let held = std::mem::take(&mut self.txns.get_mut(&txn).expect("known txn").held);
        for res in held.keys() {
            if let Some(entry) = self.table.get_mut(res) {
                entry.holders.remove(&txn);
                if entry.holders.is_empty() && entry.waiters.is_empty() {
                    self.table.remove(res);
                }
            }
        }
        self.dequeue_waiter(txn);
    }

    /// Transactions currently blocking `txn`'s pending request.
    fn blockers(&self, txn: TxnId) -> Vec<TxnId> {
        let Some(&(res, mode)) = self.waiting_on.get(&txn) else {
            return Vec::new();
        };
        let Some(entry) = self.table.get(&res) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (&holder, modes) in &entry.holders {
            if holder != txn && modes.iter().any(|&held| !compatible(held, mode)) {
                out.push(holder);
            }
        }
        for &(waiter, wmode) in &entry.waiters {
            if waiter == txn {
                break;
            }
            if !compatible(wmode, mode) || !compatible(mode, wmode) {
                out.push(waiter);
            }
        }
        out
    }

    /// Looks for a waits-for cycle through `start`; returns the members.
    fn find_cycle(&self, start: TxnId) -> Option<Vec<TxnId>> {
        fn dfs(
            state: &State,
            node: TxnId,
            start: TxnId,
            path: &mut Vec<TxnId>,
            depth: usize,
        ) -> bool {
            if depth > 0 && node == start {
                return true;
            }
            if depth > 64 || path.contains(&node) {
                return false;
            }
            path.push(node);
            for b in state.blockers(node) {
                if dfs(state, b, start, path, depth + 1) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut path: Vec<TxnId> = Vec::new();
        if dfs(self, start, start, &mut path, 0) {
            Some(path)
        } else {
            None
        }
    }
}

/// The lock manager. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    policy: ConflictPolicy,
    timeout: Option<Duration>,
}

impl LockManager {
    /// Creates a manager with the given `Rc`–`Wa` conflict policy and no
    /// wait timeout (deadlocks are handled by detection).
    pub fn new(policy: ConflictPolicy) -> Self {
        LockManager {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            policy,
            timeout: None,
        }
    }

    /// Creates a manager whose blocked requests additionally time out.
    pub fn with_timeout(policy: ConflictPolicy, timeout: Duration) -> Self {
        LockManager {
            timeout: Some(timeout),
            ..LockManager::new(policy)
        }
    }

    /// The configured conflict policy.
    pub fn policy(&self) -> ConflictPolicy {
        self.policy
    }

    /// Turns event recording on or off (off by default).
    pub fn set_recording(&self, on: bool) {
        self.state.lock().record = on;
    }

    /// Drains the recorded event log.
    pub fn take_events(&self) -> Vec<LockEvent> {
        std::mem::take(&mut self.state.lock().events)
    }

    /// `(commits, aborts)` counters.
    pub fn counters(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.commits, s.aborts)
    }

    /// Full aggregate statistics.
    pub fn stats(&self) -> LockStats {
        let s = self.state.lock();
        LockStats {
            commits: s.commits,
            aborts: s.aborts,
            ..s.stats
        }
    }

    /// Starts a transaction.
    pub fn begin(&self) -> TxnId {
        let mut s = self.state.lock();
        let id = TxnId(s.next);
        s.next += 1;
        s.txns.insert(
            id,
            TxnInfo {
                status: Some(Status::Active),
                held: BTreeMap::new(),
            },
        );
        s.log(LockEvent::Begin(id));
        id
    }

    /// `true` while the transaction is live (neither doomed, committed
    /// nor aborted).
    pub fn is_active(&self, txn: TxnId) -> bool {
        matches!(
            self.state
                .lock()
                .txns
                .get(&txn)
                .and_then(|t| t.status.as_ref()),
            Some(Status::Active)
        )
    }

    /// Checks for a pending doom without acquiring anything — engines
    /// poll this between RHS steps so a doomed production stops early.
    /// On doom the transaction is auto-aborted and the error returned.
    pub fn check(&self, txn: TxnId) -> Result<(), LockError> {
        let mut s = self.state.lock();
        self.check_doomed(&mut s, txn)
    }

    /// Acquires `mode` on `res` for `txn`, blocking until granted.
    pub fn lock(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> Result<(), LockError> {
        let mut s = self.state.lock();
        loop {
            self.check_doomed(&mut s, txn)?;
            match s.txns.get(&txn).map(TxnInfo::status) {
                Some(Status::Active) => {}
                _ => return Err(LockError::NotActive(txn)),
            }
            // Re-grant of an already held mode is a no-op.
            if s.txns[&txn]
                .held
                .get(&res)
                .is_some_and(|m| m.contains(&mode))
            {
                s.dequeue_waiter(txn);
                return Ok(());
            }
            if s.grantable(txn, res, mode) {
                s.dequeue_waiter(txn);
                s.grant(txn, res, mode);
                self.cv.notify_all();
                return Ok(());
            }
            // Enqueue and look for a deadlock.
            if s.waiting_on.get(&txn) != Some(&(res, mode)) {
                s.dequeue_waiter(txn);
                s.waiting_on.insert(txn, (res, mode));
                s.entry(res).waiters.push_back((txn, mode));
                s.stats.blocks += 1;
                s.log(LockEvent::Block(txn, res, mode));
            }
            if let Some(cycle) = s.find_cycle(txn) {
                let victim = cycle.iter().copied().max().expect("cycle is non-empty");
                if let Some(t) = s.txns.get_mut(&victim) {
                    if matches!(t.status(), Status::Active) {
                        t.status = Some(Status::Doomed { by: None });
                        s.stats.deadlocks += 1;
                        s.log(LockEvent::Doom(victim, None));
                    }
                }
                self.cv.notify_all();
                if victim == txn {
                    self.check_doomed(&mut s, txn)?;
                }
            }
            match self.timeout {
                Some(dur) => {
                    if self.cv.wait_for(&mut s, dur).timed_out() {
                        s.dequeue_waiter(txn);
                        return Err(LockError::Timeout(txn));
                    }
                }
                None => self.cv.wait(&mut s),
            }
        }
    }

    /// Non-blocking acquire: `Ok(true)` granted, `Ok(false)` would block.
    pub fn try_lock(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> Result<bool, LockError> {
        let mut s = self.state.lock();
        self.check_doomed(&mut s, txn)?;
        match s.txns.get(&txn).map(TxnInfo::status) {
            Some(Status::Active) => {}
            _ => return Err(LockError::NotActive(txn)),
        }
        if s.txns[&txn]
            .held
            .get(&res)
            .is_some_and(|m| m.contains(&mode))
        {
            return Ok(true);
        }
        if s.grantable(txn, res, mode) {
            s.grant(txn, res, mode);
            self.cv.notify_all();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Commits the transaction: applies the `Rc`–`Wa` commit rule, then
    /// releases every lock.
    pub fn commit(&self, txn: TxnId) -> Result<CommitOutcome, LockError> {
        let mut s = self.state.lock();
        self.check_doomed(&mut s, txn)?;
        match s.txns.get(&txn).map(TxnInfo::status) {
            Some(Status::Active) => {}
            _ => return Err(LockError::NotActive(txn)),
        }
        // Find live Rc holders overlapped by our Wa locks (they could
        // only have acquired Rc *before* our Wa was granted — Table 4.1
        // forbids the reverse order).
        let mut affected: Vec<TxnId> = Vec::new();
        let held: Vec<(ResourceId, bool)> = s.txns[&txn]
            .held
            .iter()
            .map(|(r, modes)| (*r, modes.contains(&LockMode::Wa)))
            .collect();
        for (res, has_wa) in held {
            if !has_wa {
                continue;
            }
            if let Some(entry) = s.table.get(&res) {
                for (&holder, modes) in &entry.holders {
                    if holder != txn
                        && modes.contains(&LockMode::Rc)
                        && matches!(s.txns[&holder].status(), Status::Active)
                        && !affected.contains(&holder)
                    {
                        affected.push(holder);
                    }
                }
            }
        }
        let mut outcome = CommitOutcome::default();
        match self.policy {
            ConflictPolicy::AbortReaders => {
                for reader in affected {
                    s.txns.get_mut(&reader).expect("known").status =
                        Some(Status::Doomed { by: Some(txn) });
                    s.stats.dooms += 1;
                    s.log(LockEvent::Doom(reader, Some(txn)));
                    outcome.doomed_readers.push(reader);
                }
            }
            ConflictPolicy::Revalidate => {
                outcome.needs_revalidation = affected;
            }
        }
        s.release_all(txn);
        s.txns.get_mut(&txn).expect("known").status = Some(Status::Committed);
        s.commits += 1;
        s.log(LockEvent::Commit(txn));
        self.cv.notify_all();
        Ok(outcome)
    }

    /// Aborts the transaction, releasing everything it holds.
    pub fn abort(&self, txn: TxnId) -> Result<(), LockError> {
        let mut s = self.state.lock();
        match s.txns.get(&txn).map(TxnInfo::status) {
            Some(Status::Active | Status::Doomed { .. }) => {}
            _ => return Err(LockError::NotActive(txn)),
        }
        s.release_all(txn);
        s.txns.get_mut(&txn).expect("known").status = Some(Status::Aborted);
        s.aborts += 1;
        s.log(LockEvent::Abort(txn));
        self.cv.notify_all();
        Ok(())
    }

    /// If `txn` is doomed: auto-abort it and surface the reason.
    fn check_doomed(&self, s: &mut State, txn: TxnId) -> Result<(), LockError> {
        let doom = match s.txns.get(&txn).and_then(|t| t.status.as_ref()) {
            Some(Status::Doomed { by }) => Some(*by),
            _ => None,
        };
        if let Some(by) = doom {
            s.release_all(txn);
            s.txns.get_mut(&txn).expect("known").status = Some(Status::Aborted);
            s.aborts += 1;
            s.log(LockEvent::Abort(txn));
            self.cv.notify_all();
            return Err(match by {
                Some(writer) => LockError::DoomedByWriter { txn, by: writer },
                None => LockError::Deadlock(txn),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use crate::LockMode::*;

    fn t(n: u64) -> ResourceId {
        ResourceId::Tuple(n)
    }

    #[test]
    fn shared_reads_coexist() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), Rc).unwrap();
        m.lock(b, t(1), Rc).unwrap();
        m.lock(b, t(1), Ra).unwrap();
        assert!(m.commit(a).unwrap().doomed_readers.is_empty());
        assert!(m.commit(b).is_ok());
    }

    #[test]
    fn wa_granted_over_rc_but_not_vice_versa() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (r, w, late) = (m.begin(), m.begin(), m.begin());
        m.lock(r, t(1), Rc).unwrap();
        assert_eq!(m.try_lock(w, t(1), Wa), Ok(true), "Rc ∥ Wa (Table 4.1)");
        assert_eq!(
            m.try_lock(late, t(1), Rc),
            Ok(false),
            "no Rc under a live Wa"
        );
    }

    #[test]
    fn reader_commits_first_both_commit() {
        // Figure 4.3(a): serial order Pj Pi.
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        let o = m.commit(pj).unwrap();
        assert!(o.doomed_readers.is_empty());
        let o = m.commit(pi).unwrap();
        assert!(o.doomed_readers.is_empty(), "reader already gone");
    }

    #[test]
    fn writer_commits_first_reader_aborts() {
        // Figure 4.3(b): Pi commits → Pj forced to abort.
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        let o = m.commit(pi).unwrap();
        assert_eq!(o.doomed_readers, vec![pj]);
        let e = m.commit(pj).unwrap_err();
        assert_eq!(e, LockError::DoomedByWriter { txn: pj, by: pi });
        assert!(!m.is_active(pj));
    }

    #[test]
    fn revalidate_policy_does_not_doom() {
        let m = LockManager::new(ConflictPolicy::Revalidate);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        let o = m.commit(pi).unwrap();
        assert!(o.doomed_readers.is_empty());
        assert_eq!(o.needs_revalidation, vec![pj]);
        // Engine decides: here revalidation passes, reader commits.
        assert!(m.commit(pj).is_ok());
    }

    #[test]
    fn circular_conflict_exactly_one_commits() {
        // Figure 4.4: Pi holds Rc(q), Wa(r); Pj holds Rc(r), Wa(q).
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pi, pj) = (m.begin(), m.begin());
        let (q, r) = (t(1), t(2));
        m.lock(pi, q, Rc).unwrap();
        m.lock(pj, r, Rc).unwrap();
        m.lock(pi, r, Wa).unwrap();
        m.lock(pj, q, Wa).unwrap();
        // Whichever commits first dooms the other.
        let o = m.commit(pi).unwrap();
        assert_eq!(o.doomed_readers, vec![pj]);
        assert!(m.commit(pj).unwrap_err().is_abort());
    }

    #[test]
    fn two_phase_baseline_blocks_writer() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (r, w) = (m.begin(), m.begin());
        m.lock(r, t(1), S).unwrap();
        assert_eq!(m.try_lock(w, t(1), X), Ok(false), "2PL: X waits for S");
    }

    #[test]
    fn blocking_wait_is_woken_by_release() {
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(b, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        m.commit(a).unwrap();
        h.join().unwrap().unwrap();
        m.commit(b).unwrap();
    }

    #[test]
    fn deadlock_detected_and_youngest_aborted() {
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let older = m.begin();
        let younger = m.begin();
        m.lock(older, t(1), X).unwrap();
        m.lock(younger, t(2), X).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            // younger waits for t1 (held by older)...
            m2.lock(younger, t(1), X)
        });
        std::thread::sleep(Duration::from_millis(30));
        // ...and older now waits for t2 (held by younger) → cycle.
        let res_older = m.lock(older, t(2), X);
        let res_younger = h.join().unwrap();
        // The younger transaction is the victim; the older proceeds.
        assert!(res_older.is_ok(), "older survives: {res_older:?}");
        assert_eq!(res_younger.unwrap_err(), LockError::Deadlock(younger));
        m.commit(older).unwrap();
    }

    #[test]
    fn timeout_fires_when_configured() {
        let m = LockManager::with_timeout(ConflictPolicy::AbortReaders, Duration::from_millis(20));
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        assert_eq!(m.lock(b, t(1), X), Err(LockError::Timeout(b)));
    }

    #[test]
    fn fifo_fairness_prevents_reader_overtaking_writer() {
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let (r1, w, r2) = (m.begin(), m.begin(), m.begin());
        m.lock(r1, t(1), S).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(w, t(1), X));
        std::thread::sleep(Duration::from_millis(30));
        // r2 must queue behind the waiting writer.
        assert_eq!(m.try_lock(r2, t(1), S), Ok(false));
        m.commit(r1).unwrap();
        h.join().unwrap().unwrap();
        m.commit(w).unwrap();
    }

    #[test]
    fn relock_held_mode_is_noop() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.lock(a, t(1), Rc).unwrap();
        m.lock(a, t(1), Rc).unwrap();
        m.lock(a, t(1), Wa).unwrap(); // self-upgrade Rc→Wa
        m.commit(a).unwrap();
    }

    #[test]
    fn operations_on_finished_txn_fail() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.commit(a).unwrap();
        assert_eq!(m.lock(a, t(1), S), Err(LockError::NotActive(a)));
        assert_eq!(m.commit(a), Err(LockError::NotActive(a)));
        assert_eq!(m.abort(a), Err(LockError::NotActive(a)));
    }

    #[test]
    fn abort_releases_locks() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (a, b) = (m.begin(), m.begin());
        m.lock(a, t(1), X).unwrap();
        m.abort(a).unwrap();
        assert_eq!(m.try_lock(b, t(1), X), Ok(true));
        let (commits, aborts) = m.counters();
        assert_eq!((commits, aborts), (0, 1));
    }

    #[test]
    fn doomed_reader_discovers_on_next_lock() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (m.begin(), m.begin());
        m.lock(pj, t(1), Rc).unwrap();
        m.lock(pi, t(1), Wa).unwrap();
        m.commit(pi).unwrap();
        // The reader's next lock call surfaces the doom.
        let e = m.lock(pj, t(2), Rc).unwrap_err();
        assert_eq!(e, LockError::DoomedByWriter { txn: pj, by: pi });
    }

    #[test]
    fn event_log_records_protocol() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        m.set_recording(true);
        let a = m.begin();
        m.lock(a, t(1), Rc).unwrap();
        m.commit(a).unwrap();
        let ev = m.take_events();
        assert_eq!(
            ev,
            vec![
                LockEvent::Begin(a),
                LockEvent::Grant(a, t(1), Rc),
                LockEvent::Commit(a)
            ]
        );
        assert!(m.take_events().is_empty(), "drained");
    }

    #[test]
    fn wa_then_commit_with_no_readers_dooms_nobody() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let a = m.begin();
        m.lock(a, t(1), Wa).unwrap();
        let o = m.commit(a).unwrap();
        assert!(o.doomed_readers.is_empty());
        assert!(o.needs_revalidation.is_empty());
    }

    #[test]
    fn escalated_relation_lock_conflicts_like_any_resource() {
        let m = LockManager::new(ConflictPolicy::AbortReaders);
        let (a, b) = (m.begin(), m.begin());
        let rel = ResourceId::Relation(7);
        m.lock(a, rel, Rc).unwrap();
        assert_eq!(
            m.try_lock(b, rel, Wa),
            Ok(true),
            "Rc ∥ Wa at relation level too"
        );
        m.commit(b).unwrap();
        assert!(m.commit(a).unwrap_err().is_abort());
    }

    #[test]
    fn concurrent_stress_no_lost_state() {
        // Many threads lock/commit disjoint and overlapping resources;
        // at the end the table must be empty and counters consistent.
        let m = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut outcomes = (0u32, 0u32);
                    for k in 0..50u64 {
                        let txn = m.begin();
                        let res = t(k % 5);
                        let ok = (|| -> Result<(), LockError> {
                            m.lock(txn, res, Rc)?;
                            if (i + k) % 2 == 0 {
                                m.lock(txn, t(10 + (k % 3)), Wa)?;
                            }
                            m.commit(txn)?;
                            Ok(())
                        })();
                        match ok {
                            Ok(()) => outcomes.0 += 1,
                            Err(e) => {
                                if m.is_active(txn) || e.is_abort() {
                                    let _ = m.abort(txn);
                                }
                                outcomes.1 += 1;
                            }
                        }
                    }
                    outcomes
                })
            })
            .collect();
        let mut commits = 0;
        for h in threads {
            let (c, _a) = h.join().unwrap();
            commits += u64::from(c);
        }
        let (mc, _ma) = m.counters();
        assert_eq!(mc, commits);
        // Lock table fully drained.
        let fresh = m.begin();
        for k in 0..15 {
            assert_eq!(m.try_lock(fresh, t(k), X), Ok(true));
        }
    }
}
