//! Parameter sweeps extending §5: the paper varies one factor at a time
//! through single examples; these sweeps trace the same three factors —
//! degree of conflict, number of processors, execution-time skew — over
//! randomized systems, averaged across seeds.

use crate::generator::{generate, GeneratorConfig};
use crate::{compare, single_thread_time};

/// One point of a sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// The varied parameter's value.
    pub x: f64,
    /// Mean speed-up over the seeds.
    pub speedup: f64,
    /// Mean fraction of multi-thread work wasted by aborts (the §5 `f`
    /// factor).
    pub wasted_fraction: f64,
}

fn mean_point(x: f64, base: &GeneratorConfig, processors: usize, seeds: u64) -> SweepPoint {
    let mut speedups = 0.0;
    let mut wasted = 0.0;
    for seed in 0..seeds {
        let sys = generate(&GeneratorConfig { seed, ..*base });
        let c = compare(&sys, processors);
        speedups += c.speedup();
        let committed = single_thread_time(&sys, &c.commit_seq) as f64;
        let total = committed + c.wasted as f64;
        wasted += if total > 0.0 {
            c.wasted as f64 / total
        } else {
            0.0
        };
    }
    SweepPoint {
        x,
        speedup: speedups / seeds as f64,
        wasted_fraction: wasted / seeds as f64,
    }
}

/// §5.1 — speed-up vs. degree of conflict (delete-set density), at fixed
/// `N_p` and times.
pub fn conflict_sweep(densities: &[f64], processors: usize, seeds: u64) -> Vec<SweepPoint> {
    densities
        .iter()
        .map(|&d| {
            let base = GeneratorConfig {
                conflict_density: d,
                ..Default::default()
            };
            mean_point(d, &base, processors, seeds)
        })
        .collect()
}

/// §5.3 — speed-up vs. number of processors, at fixed conflict density.
pub fn processor_sweep(processor_counts: &[usize], density: f64, seeds: u64) -> Vec<SweepPoint> {
    processor_counts
        .iter()
        .map(|&np| {
            let base = GeneratorConfig {
                conflict_density: density,
                ..Default::default()
            };
            mean_point(np as f64, &base, np, seeds)
        })
        .collect()
}

/// §5.2 — speed-up vs. execution-time spread: times drawn from
/// `(1, max_t)`; wider spread = more variance between productions.
pub fn time_skew_sweep(max_times: &[u64], processors: usize, seeds: u64) -> Vec<SweepPoint> {
    max_times
        .iter()
        .map(|&mt| {
            let base = GeneratorConfig {
                conflict_density: 0.05,
                time_range: (1, mt),
                ..Default::default()
            };
            mean_point(mt as f64, &base, processors, seeds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_conflict_means_less_speedup() {
        let pts = conflict_sweep(&[0.0, 0.6], 8, 12);
        assert!(
            pts[0].speedup > pts[1].speedup,
            "speed-up should fall with conflict: {} vs {}",
            pts[0].speedup,
            pts[1].speedup
        );
        assert!(pts[0].wasted_fraction <= pts[1].wasted_fraction + 1e-9);
    }

    #[test]
    fn more_processors_mean_more_speedup_without_conflict() {
        let pts = processor_sweep(&[1, 4, 16], 0.0, 8);
        assert!(pts[0].speedup <= pts[1].speedup + 1e-9);
        assert!(pts[1].speedup < pts[2].speedup);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9, "Np=1 is serial");
    }

    #[test]
    fn zero_conflict_wastes_nothing() {
        let pts = conflict_sweep(&[0.0], 8, 5);
        assert_eq!(pts[0].wasted_fraction, 0.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = conflict_sweep(&[0.2], 4, 6);
        let b = conflict_sweep(&[0.2], 4, 6);
        assert_eq!(a[0].speedup, b[0].speedup);
    }

    #[test]
    fn time_skew_sweep_runs() {
        let pts = time_skew_sweep(&[1, 20], 8, 6);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.speedup >= 1.0));
    }
}
