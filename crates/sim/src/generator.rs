//! Random abstract-system generation for the §5 parameter sweeps.

use dps_core::abstract_model::{AbstractProduction, AbstractSystem};
use dps_wm::rng::SmallRng;

/// Parameters of a random abstract production system.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Number of productions (all initially active).
    pub productions: usize,
    /// Probability that production `i` deletes production `j` (`i ≠ j`)
    /// — the *degree of conflict* knob of §5.1.
    pub conflict_density: f64,
    /// Probability that production `i` adds production `j` (`i ≠ j`).
    /// Kept small so systems terminate.
    pub add_density: f64,
    /// Execution times drawn uniformly from this inclusive range —
    /// widening it is the §5.2 execution-time-variation knob.
    pub time_range: (u64, u64),
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            productions: 16,
            conflict_density: 0.1,
            add_density: 0.0,
            time_range: (1, 10),
            seed: 0,
        }
    }
}

/// Generates a random abstract system.
pub fn generate(cfg: &GeneratorConfig) -> AbstractSystem {
    assert!(cfg.productions > 0, "need at least one production");
    assert!(
        cfg.time_range.0 >= 1 && cfg.time_range.0 <= cfg.time_range.1,
        "bad time range"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.productions;
    let mut prods = Vec::with_capacity(n);
    for i in 0..n {
        let mut dels = Vec::new();
        let mut adds = Vec::new();
        for j in 0..n {
            if i == j {
                continue;
            }
            if rng.random_bool(cfg.conflict_density.clamp(0.0, 1.0)) {
                dels.push(j);
            } else if rng.random_bool(cfg.add_density.clamp(0.0, 1.0)) {
                adds.push(j);
            }
        }
        let t = rng.range_u64(cfg.time_range.0, cfg.time_range.1);
        prods.push(AbstractProduction::new(adds, dels, t));
    }
    AbstractSystem::new(prods, 0..n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = GeneratorConfig {
            seed: 42,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GeneratorConfig {
            seed: 43,
            ..Default::default()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn zero_density_means_no_conflict() {
        let cfg = GeneratorConfig {
            conflict_density: 0.0,
            ..Default::default()
        };
        let sys = generate(&cfg);
        assert!(sys.productions.iter().all(|p| p.dels.is_empty()));
    }

    #[test]
    fn full_density_deletes_everything_else() {
        let cfg = GeneratorConfig {
            conflict_density: 1.0,
            productions: 5,
            ..Default::default()
        };
        let sys = generate(&cfg);
        assert!(sys.productions.iter().all(|p| p.dels.len() == 4));
    }

    #[test]
    fn times_respect_range() {
        let cfg = GeneratorConfig {
            time_range: (3, 7),
            ..Default::default()
        };
        let sys = generate(&cfg);
        assert!(sys
            .productions
            .iter()
            .all(|p| (3..=7).contains(&p.exec_time)));
    }

    #[test]
    fn add_density_produces_add_sets() {
        let cfg = GeneratorConfig {
            conflict_density: 0.0,
            add_density: 0.5,
            ..Default::default()
        };
        let sys = generate(&cfg);
        assert!(sys.productions.iter().any(|p| !p.adds.is_empty()));
        // Such systems may livelock; the capped simulator still handles
        // them (truncation flag set or quiescence reached).
        let m = crate::schedule::simulate_multi_capped(&sys, 4, 200);
        assert!(m.truncated || m.commit_seq.len() <= 200);
    }

    #[test]
    fn all_initially_active() {
        let sys = generate(&GeneratorConfig::default());
        assert_eq!(sys.initial.len(), 16);
    }
}
