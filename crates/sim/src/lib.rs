//! # `dps-sim` — the §5 discrete-event simulator
//!
//! *Parallelism in Database Production Systems* (ICDE 1990) evaluates its
//! multiple-execution-thread mechanism analytically, through worked
//! examples over abstract productions with execution times, add/delete
//! sets and `N_p` processors (Figures 5.1–5.4). This crate is a
//! deterministic discrete-event simulator of exactly that model:
//!
//! * [`simulate_multi`] — the multiple-thread schedule: every active
//!   production runs on a free processor; a commit updates the conflict
//!   set and **aborts** running productions in its delete set (their
//!   partial work is wasted — the paper's `f` factor);
//! * [`single_thread_time`] — `T_single(σ) = Σ T(P_j)` over the commit
//!   sequence;
//! * [`compare`] — both, plus the speed-up ratio the paper reports;
//! * [`scenario`] — the four paper figures with their expected values;
//! * [`generator`] / [`sweep`] — randomized abstract systems and the
//!   parameter sweeps (degree of conflict, processor count, execution-
//!   time skew) that §5 varies one at a time.
//!
//! ```
//! use dps_sim::{compare, scenario};
//!
//! // Figure 5.1: base case, 4 processors → speed-up 9/4 = 2.25.
//! let sys = dps_core::abstract_model::paper51_base();
//! let c = compare(&sys, 4);
//! assert_eq!((c.t_single, c.t_multi), (9, 4));
//! assert!((c.speedup() - 2.25).abs() < 1e-9);
//! assert_eq!(scenario::figure_5_1().paper_speedup, 2.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod scenario;
mod schedule;
pub mod sweep;

pub use schedule::{
    compare, simulate_multi, simulate_multi_capped, simulate_multi_uniprocessor, simulate_single,
    single_thread_time, Comparison, MultiReport, Outcome, Segment, UniReport,
};
