//! The paper's worked examples (Figures 5.1–5.4) as ready-made
//! reproductions with their published expected values.

use dps_core::abstract_model::{fmt_seq, paper51_base, paper52_conflict, AbstractSystem};

use crate::{compare, Comparison};

/// A reproduced figure: the simulated numbers next to the paper's.
#[derive(Clone, Debug)]
pub struct FigureRepro {
    /// Paper artefact id, e.g. `"Figure 5.1"`.
    pub id: &'static str,
    /// What the figure varies.
    pub what: &'static str,
    /// Processors used.
    pub processors: usize,
    /// The full comparison (σ, `T_single`, `T_multi`, wasted work).
    pub comparison: Comparison,
    /// The speed-up printed in the paper.
    pub paper_speedup: f64,
    /// The `T_single` printed in the paper.
    pub paper_t_single: u64,
    /// The `T_multi` printed in the paper.
    pub paper_t_multi: u64,
}

impl FigureRepro {
    /// `true` when the simulated values equal the paper's exactly.
    pub fn matches_paper(&self) -> bool {
        self.comparison.t_single == self.paper_t_single
            && self.comparison.t_multi == self.paper_t_multi
            && (self.comparison.speedup() - self.paper_speedup).abs() < 0.01
    }

    /// One table row: id, σ, T_single, T_multi, speed-ups (measured and
    /// paper).
    pub fn row(&self) -> String {
        format!(
            "{:<11} | {:<28} | Np={} | σ = {:<11} | T_single = {:>2} ({:>2}) | T_multi = {:>2} ({:>2}) | speedup = {:.2} ({:.2})",
            self.id,
            self.what,
            self.processors,
            fmt_seq(&self.comparison.commit_seq),
            self.comparison.t_single,
            self.paper_t_single,
            self.comparison.t_multi,
            self.paper_t_multi,
            self.comparison.speedup(),
            self.paper_speedup,
        )
    }
}

fn repro(
    id: &'static str,
    what: &'static str,
    sys: &AbstractSystem,
    processors: usize,
    paper: (u64, u64, f64),
) -> FigureRepro {
    FigureRepro {
        id,
        what,
        processors,
        comparison: compare(sys, processors),
        paper_t_single: paper.0,
        paper_t_multi: paper.1,
        paper_speedup: paper.2,
    }
}

/// Figure 5.1 — the base case: `P^A = {P1..P4}`, `T = (5,3,2,4)`,
/// `N_p = 4`; `P3`'s commit aborts `P1`. Paper: `9 / 4 = 2.25`.
pub fn figure_5_1() -> FigureRepro {
    repro("Figure 5.1", "base case", &paper51_base(), 4, (9, 4, 2.25))
}

/// Figure 5.2 — degree-of-conflict variation (Table 5.2 sets): `P3` also
/// kills `P4`. Paper: `5 / 3 = 1.67`.
pub fn figure_5_2() -> FigureRepro {
    repro(
        "Figure 5.2",
        "higher degree of conflict",
        &paper52_conflict(),
        4,
        (5, 3, 5.0 / 3.0),
    )
}

/// Figure 5.3 — execution-time variation: `T(P2)` raised from 3 to 4.
/// Paper: `10 / 4 = 2.5`.
pub fn figure_5_3() -> FigureRepro {
    repro(
        "Figure 5.3",
        "longer T(P2)",
        &paper51_base().with_time(1, 4),
        4,
        (10, 4, 2.5),
    )
}

/// Figure 5.4 — processor-count variation: `N_p = 3`. Paper: `9 / 6 =
/// 1.5`.
pub fn figure_5_4() -> FigureRepro {
    repro(
        "Figure 5.4",
        "only 3 processors",
        &paper51_base(),
        3,
        (9, 6, 1.5),
    )
}

/// All four figures.
pub fn all_figures() -> Vec<FigureRepro> {
    vec![figure_5_1(), figure_5_2(), figure_5_3(), figure_5_4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_matches_the_paper() {
        for fig in all_figures() {
            assert!(fig.matches_paper(), "{} diverged: {}", fig.id, fig.row());
        }
    }

    #[test]
    fn rows_render_both_measured_and_paper_values() {
        let r = figure_5_1().row();
        assert!(r.contains("2.25"));
        assert!(r.contains("p3 p2 p4"));
        assert!(r.contains("T_single =  9 ( 9)"));
    }

    #[test]
    fn figure_5_4_uses_fewer_processors() {
        assert_eq!(figure_5_4().processors, 3);
        assert_eq!(figure_5_1().processors, 4);
    }
}
