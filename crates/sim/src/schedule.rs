//! The discrete-event schedules of §5.

use dps_core::abstract_model::{AbstractSystem, ConflictState, PId};

/// How a production's stint on a processor ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion and committed.
    Committed,
    /// Aborted by a committing production whose delete set contained it
    /// (partial work wasted).
    Aborted,
}

/// One contiguous occupancy of a processor — a Gantt-chart bar, as drawn
/// in Figures 5.1–5.4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Processor index (0-based).
    pub processor: usize,
    /// The production.
    pub p: PId,
    /// Start time.
    pub start: u64,
    /// End time (commit or abort instant).
    pub end: u64,
    /// How the stint ended.
    pub outcome: Outcome,
}

/// Result of a multiple-thread simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiReport {
    /// Commit sequence (the σ the run realises).
    pub commit_seq: Vec<PId>,
    /// Completion time of the last commit (`T_multi`).
    pub makespan: u64,
    /// Full schedule.
    pub segments: Vec<Segment>,
    /// Partial work thrown away by aborts (time units).
    pub wasted: u64,
    /// `true` if the commit cap stopped a (livelock-capable) system.
    pub truncated: bool,
}

/// Deterministic multiple-thread schedule with `processors` processors.
///
/// Rules of the model (matching the paper's examples):
///
/// * every *active* production starts immediately on a free processor;
///   assignment is by production index, lowest free processor first;
/// * a production that runs to completion commits; simultaneous
///   completions commit in production-index order;
/// * a commit applies the add/delete sets; deleted productions that are
///   currently running are **aborted** on the spot (wasted work), and
///   deleted pending productions leave the conflict set;
/// * added productions become active (pending) and are scheduled as
///   processors free up.
pub fn simulate_multi(sys: &AbstractSystem, processors: usize) -> MultiReport {
    simulate_multi_capped(sys, processors, 100_000)
}

/// [`simulate_multi`] with an explicit commit cap.
pub fn simulate_multi_capped(
    sys: &AbstractSystem,
    processors: usize,
    max_commits: usize,
) -> MultiReport {
    assert!(processors > 0, "need at least one processor");
    let mut pending: ConflictState = sys.initial.clone();
    let mut running: Vec<Option<(PId, u64)>> = vec![None; processors];
    let mut report = MultiReport {
        commit_seq: Vec::new(),
        makespan: 0,
        segments: Vec::new(),
        wasted: 0,
        truncated: false,
    };
    let mut now = 0u64;

    loop {
        // Fill free processors in (production, processor) index order.
        let mut free: Vec<usize> = running
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        let starters: Vec<PId> = pending.iter().copied().take(free.len()).collect();
        for p in starters {
            pending.remove(&p);
            let proc = free.remove(0);
            running[proc] = Some((p, now));
        }

        // Next completion.
        let next = running
            .iter()
            .flatten()
            .map(|&(p, start)| start + sys.exec_time(p))
            .min();
        let Some(t) = next else {
            // Nothing running; either done or (pending non-empty with no
            // processors free) impossible since some are free here.
            break;
        };
        now = t;

        // All completions at time t, in production-index order.
        let mut completing: Vec<(usize, PId, u64)> = running
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(p, start)| (i, p, start)))
            .filter(|&(_, p, start)| start + sys.exec_time(p) == t)
            .collect();
        completing.sort_by_key(|&(_, p, _)| p);

        for (proc, p, start) in completing {
            // May have been aborted by an earlier commit at this instant.
            if running[proc] != Some((p, start)) {
                continue;
            }
            running[proc] = None;
            report.segments.push(Segment {
                processor: proc,
                p,
                start,
                end: t,
                outcome: Outcome::Committed,
            });
            report.commit_seq.push(p);
            report.makespan = t;
            if report.commit_seq.len() >= max_commits {
                report.truncated = true;
                return report;
            }
            let prod = &sys.productions[p.0];
            for d in &prod.dels {
                pending.remove(d);
                for (slot_proc, slot) in running.iter_mut().enumerate() {
                    if let Some((q, qstart)) = *slot {
                        if q == *d {
                            *slot = None;
                            report.wasted += t - qstart;
                            report.segments.push(Segment {
                                processor: slot_proc,
                                p: q,
                                start: qstart,
                                end: t,
                                outcome: Outcome::Aborted,
                            });
                        }
                    }
                }
            }
            for a in &prod.adds {
                // Re-activate unless already running.
                let is_running = running.iter().flatten().any(|&(q, _)| q == *a);
                if !is_running {
                    pending.insert(*a);
                }
            }
        }
    }
    report
}

/// Result of a **uniprocessor** multiple-thread simulation (Example
/// 5.1): all active productions time-share one processor round-robin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UniReport {
    /// Commit sequence realised.
    pub commit_seq: Vec<PId>,
    /// Total elapsed time (all useful + wasted work, serialised).
    pub makespan: u64,
    /// Work lost to aborted productions.
    pub wasted: u64,
}

/// Simulates the multiple-thread mechanism on a **uniprocessor** with
/// round-robin time slicing (quantum `q` time units) — the paper's
/// Example 5.1 scenario. Every active production accumulates progress a
/// quantum at a time; on completion it commits and applies its
/// add/delete sets; productions deleted mid-flight lose their partial
/// work (the `f · Σ T(P_k)` term).
///
/// The paper's inequality `T_single(σ) ≤ T_multi,uni(σ)` follows
/// directly: the makespan equals the committed work plus the wasted
/// partial work.
pub fn simulate_multi_uniprocessor(sys: &AbstractSystem, quantum: u64) -> UniReport {
    assert!(quantum > 0, "quantum must be positive");
    let mut active: Vec<(PId, u64)> = sys.initial.iter().map(|&p| (p, 0)).collect();
    let mut report = UniReport {
        commit_seq: Vec::new(),
        makespan: 0,
        wasted: 0,
    };
    let mut idx = 0;
    let mut steps = 0u64;
    while !active.is_empty() {
        steps += 1;
        if steps > 1_000_000 {
            break; // livelock guard
        }
        if idx >= active.len() {
            idx = 0;
        }
        let (p, progress) = active[idx];
        let need = sys.exec_time(p) - progress;
        let slice = quantum.min(need);
        report.makespan += slice;
        if slice == need {
            // Commit.
            active.remove(idx);
            report.commit_seq.push(p);
            let prod = &sys.productions[p.0];
            // Deletions: pending-progress productions lose their work.
            active.retain(|&(q, done)| {
                if prod.dels.contains(&q) {
                    report.wasted += done;
                    false
                } else {
                    true
                }
            });
            for &a in &prod.adds {
                if !active.iter().any(|&(q, _)| q == a) {
                    active.push((a, 0));
                }
            }
            if idx >= active.len() {
                idx = 0;
            }
        } else {
            active[idx].1 += slice;
            idx += 1;
        }
    }
    report
}

/// `T_single(σ)`: the single-thread execution time of a sequence — the
/// sum of the executed productions' times (§5, Example 5.1).
pub fn single_thread_time(sys: &AbstractSystem, seq: &[PId]) -> u64 {
    seq.iter().map(|&p| sys.exec_time(p)).sum()
}

/// A deterministic single-thread run: repeatedly fires the production
/// chosen by `select` until the conflict set empties (or `max_steps`).
/// Returns the sequence executed.
pub fn simulate_single(
    sys: &AbstractSystem,
    mut select: impl FnMut(&ConflictState) -> Option<PId>,
    max_steps: usize,
) -> Vec<PId> {
    let mut state = sys.initial.clone();
    let mut seq = Vec::new();
    while seq.len() < max_steps {
        let Some(p) = select(&state) else { break };
        let Some(next) = sys.fire(&state, p) else {
            break;
        };
        seq.push(p);
        state = next;
        if state.is_empty() {
            break;
        }
    }
    seq
}

/// The paper's headline comparison: run the multiple-thread schedule,
/// take its realised commit sequence σ, and compare against the
/// single-thread execution of the *same* σ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comparison {
    /// Processors used.
    pub processors: usize,
    /// The realised commit sequence.
    pub commit_seq: Vec<PId>,
    /// `T_single(σ)`.
    pub t_single: u64,
    /// `T_multi(σ)` — the makespan.
    pub t_multi: u64,
    /// Wasted (aborted) work.
    pub wasted: u64,
    /// Schedule detail.
    pub segments: Vec<Segment>,
}

impl Comparison {
    /// Speed-up = `T_single / T_multi` (§5: "Speedup is the ratio of the
    /// execution times of the single thread mechanism to that of the
    /// multiple thread mechanism").
    pub fn speedup(&self) -> f64 {
        if self.t_multi == 0 {
            1.0
        } else {
            self.t_single as f64 / self.t_multi as f64
        }
    }

    /// Multiple-thread time on a **uniprocessor** (Example 5.1):
    /// committed work plus wasted partial executions. Always ≥
    /// `t_single`, demonstrating the paper's claim that a uniprocessor
    /// gains nothing from multiple threads.
    pub fn t_multi_uniprocessor(&self) -> u64 {
        self.t_single + self.wasted
    }
}

/// Runs [`simulate_multi`] and derives the [`Comparison`].
pub fn compare(sys: &AbstractSystem, processors: usize) -> Comparison {
    let multi = simulate_multi(sys, processors);
    let t_single = single_thread_time(sys, &multi.commit_seq);
    Comparison {
        processors,
        t_single,
        t_multi: multi.makespan,
        wasted: multi.wasted,
        commit_seq: multi.commit_seq,
        segments: multi.segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::abstract_model::{
        fmt_seq, paper51_base, paper52_conflict, AbstractProduction, AbstractSystem,
    };
    use dps_core::semantics::validate_abstract_sequence;

    #[test]
    fn figure_5_1_base_case() {
        let sys = paper51_base();
        let c = compare(&sys, 4);
        assert_eq!(fmt_seq(&c.commit_seq), "p3 p2 p4");
        assert_eq!(c.t_single, 9);
        assert_eq!(c.t_multi, 4);
        assert!((c.speedup() - 2.25).abs() < 1e-9);
        assert_eq!(c.wasted, 2, "P1 aborted at t=2");
        assert_eq!(c.t_multi_uniprocessor(), 11);
        validate_abstract_sequence(&sys, &c.commit_seq).unwrap();
    }

    #[test]
    fn figure_5_2_higher_conflict() {
        let sys = paper52_conflict();
        let c = compare(&sys, 4);
        assert_eq!(fmt_seq(&c.commit_seq), "p3 p2");
        assert_eq!(c.t_single, 5);
        assert_eq!(c.t_multi, 3);
        assert!((c.speedup() - 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(c.wasted, 2 + 2, "P1 and P4 each lose 2 units at t=2");
    }

    #[test]
    fn figure_5_3_longer_execution_time() {
        let sys = paper51_base().with_time(1, 4); // T(P2): 3 → 4
        let c = compare(&sys, 4);
        assert_eq!(c.t_single, 10);
        assert_eq!(c.t_multi, 4);
        assert!((c.speedup() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn figure_5_4_three_processors() {
        let sys = paper51_base();
        let c = compare(&sys, 3);
        assert_eq!(fmt_seq(&c.commit_seq), "p3 p2 p4");
        assert_eq!(c.t_single, 9);
        assert_eq!(
            c.t_multi, 6,
            "P4 starts only when P3's commit frees a processor"
        );
        assert!((c.speedup() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn gantt_segments_match_figure_5_1() {
        let sys = paper51_base();
        let m = simulate_multi(&sys, 4);
        // P1 on proc 0 aborted at 2; P2 on 1 commits at 3; P3 on 2 at 2;
        // P4 on 3 at 4.
        let find = |p: usize| {
            m.segments
                .iter()
                .find(|s| s.p == PId(p))
                .copied()
                .unwrap_or_else(|| panic!("segment for p{}", p + 1))
        };
        assert_eq!(find(0).outcome, Outcome::Aborted);
        assert_eq!((find(0).start, find(0).end), (0, 2));
        assert_eq!(find(1).outcome, Outcome::Committed);
        assert_eq!(find(1).end, 3);
        assert_eq!(find(2).end, 2);
        assert_eq!(find(3).end, 4);
    }

    #[test]
    fn single_processor_multi_equals_serial_order() {
        let sys = paper51_base();
        let c = compare(&sys, 1);
        // One processor: P1 runs first (index order) and commits —
        // nothing can abort it while nothing else runs concurrently...
        // except commits of earlier-finished productions; with one
        // processor runs are strictly serial.
        assert_eq!(
            c.t_multi, c.t_single,
            "serial schedule: makespan equals sum"
        );
        assert_eq!(c.wasted, 0);
        assert!((c.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniprocessor_multithread_never_beats_single() {
        // The paper's Example 5.1 inequality, checked across processor
        // counts: T_single(σ) ≤ T_single(σ) + wasted.
        let sys = paper52_conflict();
        for np in 1..=6 {
            let c = compare(&sys, np);
            assert!(c.t_multi_uniprocessor() >= c.t_single);
        }
    }

    #[test]
    fn adds_schedule_new_work() {
        // P1 (t=2) adds P3; P2 (t=5) runs alongside. P3 starts at 2.
        let sys = AbstractSystem::new(
            vec![
                AbstractProduction::new([2], [], 2),
                AbstractProduction::new([], [], 5),
                AbstractProduction::new([], [], 4),
            ],
            [0, 1],
        );
        let c = compare(&sys, 2);
        assert_eq!(fmt_seq(&c.commit_seq), "p1 p2 p3");
        assert_eq!(c.t_multi, 6, "P3 runs 2→6 on the processor P1 freed");
        assert_eq!(c.t_single, 11);
    }

    #[test]
    fn commit_cap_stops_livelock() {
        let sys = AbstractSystem::new(
            vec![AbstractProduction::new([0], [], 1)], // self-regenerating
            [0],
        );
        let m = simulate_multi_capped(&sys, 2, 10);
        assert!(m.truncated);
        assert_eq!(m.commit_seq.len(), 10);
    }

    #[test]
    fn simultaneous_commits_are_ordered_by_index() {
        // P1 and P2 both take 3; P1's delete set contains P2 — at t=3
        // P1 commits first (index order) and aborts P2 at zero cost? No:
        // P2 completed but had not committed; it is aborted with 3 units
        // wasted.
        let sys = AbstractSystem::new(
            vec![
                AbstractProduction::new([], [1], 3),
                AbstractProduction::new([], [], 3),
            ],
            [0, 1],
        );
        let c = compare(&sys, 2);
        assert_eq!(fmt_seq(&c.commit_seq), "p1");
        assert_eq!(c.wasted, 3);
    }

    #[test]
    fn deleted_pending_production_never_runs() {
        // Np=1: P1 runs first and deletes P2 before it ever starts.
        let sys = AbstractSystem::new(
            vec![
                AbstractProduction::new([], [1], 1),
                AbstractProduction::new([], [], 9),
            ],
            [0, 1],
        );
        let c = compare(&sys, 1);
        assert_eq!(fmt_seq(&c.commit_seq), "p1");
        assert_eq!(c.wasted, 0, "P2 never started, so nothing is wasted");
        assert_eq!(c.t_multi, 1);
    }

    #[test]
    fn simulate_single_with_selector() {
        let sys = paper51_base();
        // Always pick the lowest-index active production.
        let seq = simulate_single(&sys, |s| s.iter().next().copied(), 100);
        assert_eq!(fmt_seq(&seq), "p1 p2 p3 p4");
        assert_eq!(single_thread_time(&sys, &seq), 14);
        validate_abstract_sequence(&sys, &seq).unwrap();
    }

    #[test]
    fn uniprocessor_multithread_is_never_faster_than_single() {
        // Example 5.1's inequality, across systems and quanta.
        for sys in [paper51_base(), paper52_conflict()] {
            for quantum in [1u64, 2, 5, 100] {
                let uni = simulate_multi_uniprocessor(&sys, quantum);
                let t_single = single_thread_time(&sys, &uni.commit_seq);
                assert_eq!(
                    uni.makespan,
                    t_single + uni.wasted,
                    "makespan decomposes into useful + wasted work"
                );
                assert!(uni.makespan >= t_single);
                validate_abstract_sequence(&sys, &uni.commit_seq).unwrap();
            }
        }
    }

    #[test]
    fn uniprocessor_large_quantum_is_serial() {
        // With a quantum larger than any T, the first production runs to
        // completion before others start: no interleaving, no waste from
        // half-done work beyond what delete sets cause at zero progress.
        let sys = paper51_base();
        let uni = simulate_multi_uniprocessor(&sys, 100);
        assert_eq!(uni.wasted, 0, "victims had not started yet");
        assert_eq!(uni.makespan, single_thread_time(&sys, &uni.commit_seq));
    }

    #[test]
    fn uniprocessor_fine_slicing_wastes_partial_work() {
        // quantum 1: all four run in lockstep; P3 finishes at t≈8 and
        // kills P1, which by then has ~2 units of progress → waste.
        let sys = paper51_base();
        let uni = simulate_multi_uniprocessor(&sys, 1);
        assert!(uni.wasted > 0, "interleaving creates abortable progress");
        assert_eq!(
            uni.makespan,
            single_thread_time(&sys, &uni.commit_seq) + uni.wasted
        );
    }

    #[test]
    fn empty_initial_state() {
        let sys = AbstractSystem::new(vec![AbstractProduction::new([], [], 1)], []);
        let m = simulate_multi(&sys, 2);
        assert!(m.commit_seq.is_empty());
        assert_eq!(m.makespan, 0);
    }
}
