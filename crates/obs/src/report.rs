//! The aggregate report: phase histograms, abort breakdown, event
//! counters and per-rule tables, with a human `Display` and a JSON
//! exporter.

use std::fmt;

use crate::event::AbortCause;
use crate::hist::{HistSnapshot, Phase};
use crate::json::Json;

/// One row of the per-rule firing/abort table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleRow {
    /// Rule name.
    pub name: String,
    /// Commits.
    pub fired: u64,
    /// Aborted attempts.
    pub aborted: u64,
}

/// Sharded-match fan-out tallies: how WM delta batches propagated to
/// the per-shard Rete networks. All-zero when the engine does not run
/// the sharded match pipeline (old-shape reports simply omit the
/// block; consumers must treat it as optional).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Published WM delta batches (one per commit).
    pub batches: u64,
    /// Shard×batch Rete applies actually performed.
    pub applies: u64,
    /// Shard epoch advances that skipped the apply because no alpha
    /// class of the shard intersected the batch.
    pub free_advances: u64,
    /// Applies performed by a worker other than the committing one
    /// (idle-worker catch-up stealing); subset of `applies`.
    pub steals: u64,
    /// Configured match-shard count (0 when the pipeline is off).
    pub shards: u64,
}

impl FanoutStats {
    /// `true` when nothing was recorded (pipeline off or unobserved).
    pub fn is_empty(&self) -> bool {
        *self == FanoutStats::default()
    }
}

/// Point-in-time aggregate snapshot of a [`crate::Recorder`].
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// Latency histograms per phase, in [`Phase::ALL`] order.
    pub phases: Vec<(Phase, HistSnapshot)>,
    /// Abort counts per cause, in [`AbortCause::ALL`] order.
    pub abort_causes: Vec<(AbortCause, u64)>,
    /// `Begin` events.
    pub begins: u64,
    /// `Grant` events.
    pub grants: u64,
    /// `Block` events.
    pub blocks: u64,
    /// `Doom` events (writer-doomed readers).
    pub dooms: u64,
    /// `Deadlock` events (deadlock-victim dooms).
    pub deadlocks: u64,
    /// `Commit` events.
    pub commits: u64,
    /// `Fire` events (commit-sequence records; equals `commits` on a
    /// healthy engine-instrumented run, 0 on lock-manager-only runs).
    pub fires: u64,
    /// `Abort` events.
    pub aborts: u64,
    /// `Anomaly` markers (should be 0 on a healthy run).
    pub anomalies: u64,
    /// `Fault` markers injected by the chaos layer (0 outside
    /// fault-injected runs).
    pub faults: u64,
    /// `Escalate` markers from the adaptive governor's degradation
    /// state machine (0 when the governor is off or never triggered).
    pub escalations: u64,
    /// `SnapshotPin` events (MVCC read-snapshot pins; 0 outside MVCC
    /// runs).
    pub snapshot_pins: u64,
    /// `VersionRead` events (MVCC versioned condition reads).
    pub version_reads: u64,
    /// `VersionWrite` events (MVCC version installs at commit).
    pub version_writes: u64,
    /// `WalSync` events (durability fsync completions; 0 when
    /// durability is off).
    pub wal_syncs: u64,
    /// `Checkpoint` events (durability checkpoint installs).
    pub checkpoints: u64,
    /// `ElidedCommit` events (lock-elision fast-path commits; 0 when
    /// elision is off or no rule proved commutative).
    pub elided_commits: u64,
    /// Events lost to ring overwrites (history incomplete if non-zero).
    pub dropped_events: u64,
    /// Sharded-match fan-out tallies (all zero when the sharded
    /// pipeline is not in use).
    pub fanout: FanoutStats,
    /// Per-rule firing/abort rows, sorted by rule name.
    pub rules: Vec<RuleRow>,
}

impl ObsReport {
    /// Sum of the per-cause abort counts. Equals [`ObsReport::aborts`]
    /// by construction (each `Abort` event carries exactly one cause).
    pub fn abort_cause_total(&self) -> u64 {
        self.abort_causes.iter().map(|(_, n)| n).sum()
    }

    /// The snapshot for one phase.
    pub fn phase(&self, phase: Phase) -> Option<&HistSnapshot> {
        self.phases.iter().find(|(p, _)| *p == phase).map(|(_, h)| h)
    }

    /// Exports the report as a JSON tree (hand the result to
    /// [`Json::to_string_pretty`] or embed it into a larger document).
    pub fn to_json(&self) -> Json {
        let phases = Json::Obj(
            self.phases
                .iter()
                .map(|(p, h)| {
                    (
                        p.name().to_owned(),
                        Json::Obj(vec![
                            ("count".into(), Json::u64(h.count)),
                            ("p50_ns".into(), Json::u64(h.p50())),
                            ("p95_ns".into(), Json::u64(h.p95())),
                            ("p99_ns".into(), Json::u64(h.p99())),
                            ("max_ns".into(), Json::u64(h.max)),
                            ("mean_ns".into(), Json::u64(h.mean())),
                            ("sum_ns".into(), Json::u64(h.sum)),
                        ]),
                    )
                })
                .collect(),
        );
        let causes = Json::Obj(
            self.abort_causes
                .iter()
                .map(|(c, n)| (c.name().to_owned(), Json::u64(*n)))
                .collect(),
        );
        let events = Json::Obj(vec![
            ("begins".into(), Json::u64(self.begins)),
            ("grants".into(), Json::u64(self.grants)),
            ("blocks".into(), Json::u64(self.blocks)),
            ("dooms".into(), Json::u64(self.dooms)),
            ("deadlocks".into(), Json::u64(self.deadlocks)),
            ("commits".into(), Json::u64(self.commits)),
            ("fires".into(), Json::u64(self.fires)),
            ("aborts".into(), Json::u64(self.aborts)),
            ("anomalies".into(), Json::u64(self.anomalies)),
            ("faults".into(), Json::u64(self.faults)),
            ("escalations".into(), Json::u64(self.escalations)),
            ("snapshot_pins".into(), Json::u64(self.snapshot_pins)),
            ("version_reads".into(), Json::u64(self.version_reads)),
            ("version_writes".into(), Json::u64(self.version_writes)),
            ("wal_syncs".into(), Json::u64(self.wal_syncs)),
            ("checkpoints".into(), Json::u64(self.checkpoints)),
            ("elided_commits".into(), Json::u64(self.elided_commits)),
            ("dropped".into(), Json::u64(self.dropped_events)),
        ]);
        let rules = Json::Arr(
            self.rules
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(r.name.clone())),
                        ("fired".into(), Json::u64(r.fired)),
                        ("aborted".into(), Json::u64(r.aborted)),
                    ])
                })
                .collect(),
        );
        let fanout = Json::Obj(vec![
            ("batches".into(), Json::u64(self.fanout.batches)),
            ("applies".into(), Json::u64(self.fanout.applies)),
            ("free_advances".into(), Json::u64(self.fanout.free_advances)),
            ("steals".into(), Json::u64(self.fanout.steals)),
            ("shards".into(), Json::u64(self.fanout.shards)),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::str("dps-obs-report-v1")),
            ("phases".into(), phases),
            ("abort_causes".into(), causes),
            ("events".into(), events),
            ("fanout".into(), fanout),
            ("rules".into(), rules),
        ])
    }
}

impl fmt::Display for ObsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "observability report")?;
        writeln!(
            f,
            "  events: {} begin, {} grant, {} block, {} doom, {} deadlock, {} commit, {} abort{}{}",
            self.begins,
            self.grants,
            self.blocks,
            self.dooms,
            self.deadlocks,
            self.commits,
            self.aborts,
            if self.anomalies > 0 {
                format!(", {} ANOMALIES", self.anomalies)
            } else {
                String::new()
            },
            if self.dropped_events > 0 {
                format!(" ({} dropped)", self.dropped_events)
            } else {
                String::new()
            },
        )?;
        if self.faults > 0 || self.escalations > 0 {
            writeln!(
                f,
                "  chaos: {} injected fault(s), {} governor escalation event(s)",
                self.faults, self.escalations
            )?;
        }
        if self.snapshot_pins > 0 {
            writeln!(
                f,
                "  mvcc: {} snapshot pin(s), {} version read(s), {} version write(s)",
                self.snapshot_pins, self.version_reads, self.version_writes
            )?;
        }
        if self.wal_syncs > 0 || self.checkpoints > 0 {
            writeln!(
                f,
                "  durability: {} wal sync(s), {} checkpoint(s)",
                self.wal_syncs, self.checkpoints
            )?;
        }
        if self.elided_commits > 0 {
            writeln!(
                f,
                "  coordination avoidance: {} lock-elided commit(s)",
                self.elided_commits
            )?;
        }
        writeln!(f, "  latency (per phase):")?;
        for (p, h) in &self.phases {
            writeln!(f, "    {:<9} {h}", p.name())?;
        }
        if !self.fanout.is_empty() {
            writeln!(
                f,
                "  match fan-out: {} shard(s), {} batch(es), {} applies ({} stolen), {} free advance(s)",
                self.fanout.shards,
                self.fanout.batches,
                self.fanout.applies,
                self.fanout.steals,
                self.fanout.free_advances,
            )?;
        }
        writeln!(f, "  aborts by cause (total {}):", self.abort_cause_total())?;
        for (c, n) in &self.abort_causes {
            if *n > 0 {
                writeln!(f, "    {:<12} {n}", c.name())?;
            }
        }
        if !self.rules.is_empty() {
            writeln!(f, "  per-rule:")?;
            writeln!(f, "    {:<24} {:>8} {:>8}", "rule", "fired", "aborted")?;
            for r in &self.rules {
                writeln!(f, "    {:<24} {:>8} {:>8}", r.name, r.fired, r.aborted)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Recorder;

    #[test]
    fn json_export_has_required_shape() {
        let r = Recorder::default();
        r.phase(Phase::LockWait, std::time::Duration::from_micros(3));
        r.phase(Phase::Commit, std::time::Duration::from_micros(7));
        r.record(
            0,
            crate::EventKind::Abort {
                cause: AbortCause::EvalError,
            },
        );
        r.rule_fired("bump");
        let rep = r.report();
        let parsed = json::parse(&rep.to_json().to_string_pretty()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("dps-obs-report-v1")
        );
        for phase in ["lock_wait", "lhs_eval", "rhs_act", "commit"] {
            for key in ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
                assert!(
                    parsed.at(&["phases", phase, key]).and_then(Json::as_u64).is_some(),
                    "missing phases.{phase}.{key}"
                );
            }
        }
        assert_eq!(
            parsed.at(&["abort_causes", "eval_error"]).and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(parsed.at(&["events", "aborts"]).and_then(Json::as_u64), Some(1));
        let rules = parsed.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(rules[0].get("name").and_then(Json::as_str), Some("bump"));
    }

    #[test]
    fn display_renders_all_sections() {
        let r = Recorder::default();
        r.record(0, crate::EventKind::Begin);
        r.record(0, crate::EventKind::Commit);
        r.rule_fired("bump");
        let text = r.report().to_string();
        for needle in ["events:", "latency", "lock_wait", "per-rule", "bump"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn fanout_round_trips_and_renders() {
        let r = Recorder::default();
        let rep = r.report();
        assert!(rep.fanout.is_empty());
        assert!(!rep.to_string().contains("match fan-out"), "empty stays silent");

        r.set_match_shards(4);
        r.fanout_batch(3);
        r.fanout_apply(false);
        r.fanout_apply(true);
        let rep = r.report();
        assert_eq!(
            rep.fanout,
            FanoutStats {
                batches: 1,
                applies: 2,
                free_advances: 3,
                steals: 1,
                shards: 4,
            }
        );
        let parsed = json::parse(&rep.to_json().to_string_pretty()).unwrap();
        for (key, want) in [
            ("batches", 1),
            ("applies", 2),
            ("free_advances", 3),
            ("steals", 1),
            ("shards", 4),
        ] {
            assert_eq!(
                parsed.at(&["fanout", key]).and_then(Json::as_u64),
                Some(want),
                "fanout.{key}"
            );
        }
        assert!(rep.to_string().contains("match fan-out"));
    }

    #[test]
    fn cause_total_matches_abort_events() {
        let r = Recorder::default();
        for cause in AbortCause::ALL {
            r.record(7, crate::EventKind::Abort { cause });
        }
        let rep = r.report();
        assert_eq!(rep.abort_cause_total(), rep.aborts);
        assert_eq!(rep.aborts, AbortCause::ALL.len() as u64);
    }
}
