//! The [`Recorder`]: the one object the whole stack reports into.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when absent.** Every instrumentation site holds
//!    an `Option<Arc<Recorder>>`; off means one branch on a `None`.
//! 2. **No cross-worker contention when on.** Events go into
//!    per-worker-slot rings (a thread-local slot index assigned on
//!    first use), histograms and counters are relaxed atomics, and the
//!    only map (the per-rule table) is touched once per commit/abort,
//!    not per lock operation.
//! 3. **Merge on demand.** [`Recorder::history`] collects every ring
//!    and sorts by timestamp; nothing global is maintained during the
//!    run.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::event::{AbortCause, Event, EventKind, Ring};
use crate::hist::{HistSnapshot, Histogram, Phase};
use crate::report::{FanoutStats, ObsReport, RuleRow};

/// Default number of ring slots (worker threads hash onto these; more
/// workers than slots just share).
pub const DEFAULT_SLOTS: usize = 16;

/// Default per-ring capacity in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Aggregate event counters (all relaxed atomics).
#[derive(Debug, Default)]
struct Counters {
    begins: AtomicU64,
    grants: AtomicU64,
    blocks: AtomicU64,
    dooms: AtomicU64,
    deadlocks: AtomicU64,
    commits: AtomicU64,
    fires: AtomicU64,
    aborts: AtomicU64,
    anomalies: AtomicU64,
    faults: AtomicU64,
    escalations: AtomicU64,
    snapshot_pins: AtomicU64,
    version_reads: AtomicU64,
    version_writes: AtomicU64,
    wal_syncs: AtomicU64,
    checkpoints: AtomicU64,
    elided_commits: AtomicU64,
}

/// Sharded-match fan-out tallies (relaxed atomics). All zero unless the
/// engine runs the sharded match pipeline and observation is on.
#[derive(Debug, Default)]
struct Fanout {
    batches: AtomicU64,
    applies: AtomicU64,
    free_advances: AtomicU64,
    steals: AtomicU64,
    shards: AtomicU64,
}

/// Per-rule firing/abort tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStat {
    /// Commits of this rule.
    pub fired: u64,
    /// Aborted attempts of this rule.
    pub aborted: u64,
}

/// The observability recorder. Cheap to share behind an `Arc`; every
/// method takes `&self` and is safe to call from any thread.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    rings: Box<[Mutex<Ring>]>,
    hists: [Histogram; 5],
    abort_causes: [AtomicU64; 9],
    counters: Counters,
    fanout: Fanout,
    dropped: AtomicU64,
    rules: Mutex<BTreeMap<String, RuleStat>>,
    /// Rule-name interner backing [`EventKind::Fire`]'s compact
    /// `rule: u32` id (events are `Copy`, so they cannot carry the
    /// name itself). Rule sets are small, so a linear scan suffices.
    rule_names: Mutex<Vec<String>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_capacity(DEFAULT_SLOTS, DEFAULT_RING_CAPACITY)
    }
}

/// Global slot allocator: each OS thread gets a stable slot number on
/// its first record, so a worker's events land in "its" ring.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| match s.get() {
        Some(n) => n,
        None => {
            let n = NEXT_SLOT.fetch_add(1, Relaxed);
            s.set(Some(n));
            n
        }
    })
}

impl Recorder {
    /// Creates a recorder with `slots` rings of `capacity` events each.
    pub fn with_capacity(slots: usize, capacity: usize) -> Self {
        Recorder {
            epoch: Instant::now(),
            rings: (0..slots.max(1)).map(|_| Mutex::new(Ring::new(capacity))).collect(),
            hists: std::array::from_fn(|_| Histogram::default()),
            abort_causes: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: Counters::default(),
            fanout: Fanout::default(),
            dropped: AtomicU64::new(0),
            rules: Mutex::new(BTreeMap::new()),
            rule_names: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since this recorder's epoch. Use with
    /// [`Recorder::record_at`] to capture a timestamp inside a critical
    /// section and record the event after releasing it (the lock
    /// manager's doom paths do this so per-transaction timestamp order
    /// matches the real happens-before order).
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Records an event stamped with the current time.
    pub fn record(&self, txn: u64, kind: EventKind) {
        let ts = self.now();
        self.record_at(ts, txn, kind);
    }

    /// Records an event with an explicit timestamp from [`Recorder::now`].
    pub fn record_at(&self, ts: u64, txn: u64, kind: EventKind) {
        match &kind {
            EventKind::Begin => self.counters.begins.fetch_add(1, Relaxed),
            EventKind::Grant { .. } => self.counters.grants.fetch_add(1, Relaxed),
            EventKind::Block { .. } => self.counters.blocks.fetch_add(1, Relaxed),
            EventKind::Doom { .. } => self.counters.dooms.fetch_add(1, Relaxed),
            EventKind::Deadlock => self.counters.deadlocks.fetch_add(1, Relaxed),
            EventKind::Commit => self.counters.commits.fetch_add(1, Relaxed),
            EventKind::Fire { .. } => self.counters.fires.fetch_add(1, Relaxed),
            EventKind::Abort { cause } => {
                self.abort_causes[cause.index()].fetch_add(1, Relaxed);
                self.counters.aborts.fetch_add(1, Relaxed)
            }
            EventKind::Anomaly { .. } => self.counters.anomalies.fetch_add(1, Relaxed),
            EventKind::Fault { .. } => self.counters.faults.fetch_add(1, Relaxed),
            EventKind::Escalate { .. } => self.counters.escalations.fetch_add(1, Relaxed),
            EventKind::SnapshotPin { .. } => self.counters.snapshot_pins.fetch_add(1, Relaxed),
            EventKind::VersionRead { .. } => self.counters.version_reads.fetch_add(1, Relaxed),
            EventKind::VersionWrite { .. } => self.counters.version_writes.fetch_add(1, Relaxed),
            EventKind::WalSync { .. } => self.counters.wal_syncs.fetch_add(1, Relaxed),
            EventKind::Checkpoint { .. } => self.counters.checkpoints.fetch_add(1, Relaxed),
            EventKind::ElidedCommit { .. } => {
                self.counters.elided_commits.fetch_add(1, Relaxed)
            }
        };
        let slot = thread_slot() % self.rings.len();
        let overwrote = self.rings[slot].lock().unwrap().push(Event { ts, txn, kind });
        if overwrote {
            self.dropped.fetch_add(1, Relaxed);
        }
    }

    /// Records a phase duration into its histogram.
    pub fn phase(&self, phase: Phase, d: Duration) {
        self.hists[phase.index()].record(d);
    }

    /// A snapshot of one phase histogram.
    pub fn phase_snapshot(&self, phase: Phase) -> HistSnapshot {
        self.hists[phase.index()].snapshot()
    }

    /// Notes the sharded pipeline's configured match-shard count (set
    /// once at engine start; the maximum wins if called twice).
    pub fn set_match_shards(&self, shards: u64) {
        self.fanout.shards.fetch_max(shards, Relaxed);
    }

    /// Counts one published WM delta batch; `free` is how many shards
    /// advanced for free because none of their alpha classes
    /// intersected the batch. (Real applies of the batch are counted
    /// per shard by [`Recorder::fanout_apply`] as they happen.)
    pub fn fanout_batch(&self, free: u64) {
        self.fanout.batches.fetch_add(1, Relaxed);
        self.fanout.free_advances.fetch_add(free, Relaxed);
    }

    /// Counts one shard×batch Rete apply. `stolen` marks applies done
    /// by a worker catching a shard up outside the committing worker's
    /// own fan-out (idle-worker work stealing).
    pub fn fanout_apply(&self, stolen: bool) {
        self.fanout.applies.fetch_add(1, Relaxed);
        if stolen {
            self.fanout.steals.fetch_add(1, Relaxed);
        }
    }

    /// Snapshot of the sharded-match fan-out tallies.
    pub fn fanout_snapshot(&self) -> FanoutStats {
        FanoutStats {
            batches: self.fanout.batches.load(Relaxed),
            applies: self.fanout.applies.load(Relaxed),
            free_advances: self.fanout.free_advances.load(Relaxed),
            steals: self.fanout.steals.load(Relaxed),
            shards: self.fanout.shards.load(Relaxed),
        }
    }

    /// Counts a committed firing of `rule`.
    pub fn rule_fired(&self, rule: &str) {
        let mut rules = self.rules.lock().unwrap();
        rules.entry(rule.to_owned()).or_default().fired += 1;
    }

    /// Counts an aborted attempt of `rule`.
    pub fn rule_aborted(&self, rule: &str) {
        let mut rules = self.rules.lock().unwrap();
        rules.entry(rule.to_owned()).or_default().aborted += 1;
    }

    /// Interns a rule name, returning the compact id to embed in
    /// [`EventKind::Fire`]. Idempotent: the same name always maps to
    /// the same id within one recorder.
    pub fn intern_rule(&self, name: &str) -> u32 {
        let mut names = self.rule_names.lock().unwrap();
        if let Some(i) = names.iter().position(|n| n == name) {
            return i as u32;
        }
        names.push(name.to_owned());
        (names.len() - 1) as u32
    }

    /// The interned rule-name table (index = the `rule` id carried by
    /// [`EventKind::Fire`] events).
    pub fn rule_names(&self) -> Vec<String> {
        self.rule_names.lock().unwrap().clone()
    }

    /// Looks up one interned rule name.
    pub fn rule_name(&self, id: u32) -> Option<String> {
        self.rule_names.lock().unwrap().get(id as usize).cloned()
    }

    /// Events dropped because a ring wrapped. A non-zero value means
    /// [`Recorder::history`] is incomplete (counters and histograms are
    /// unaffected — they never drop).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Abort count for one cause.
    pub fn aborts_by_cause(&self, cause: AbortCause) -> u64 {
        self.abort_causes[cause.index()].load(Relaxed)
    }

    /// Merges every per-worker ring into one global history, ordered by
    /// timestamp (ties broken by transaction id, then by event kind
    /// discriminant stability of the sort — `sort_by_key` is stable).
    pub fn history(&self) -> Vec<Event> {
        let mut all: Vec<Event> = Vec::new();
        for ring in self.rings.iter() {
            let ring = ring.lock().unwrap();
            all.extend(ring.iter_ordered().copied());
        }
        all.sort_by_key(|e| (e.ts, e.txn));
        all
    }

    /// Builds the aggregate [`ObsReport`] snapshot.
    pub fn report(&self) -> ObsReport {
        let rules = self.rules.lock().unwrap();
        ObsReport {
            phases: Phase::ALL
                .iter()
                .map(|&p| (p, self.hists[p.index()].snapshot()))
                .collect(),
            abort_causes: AbortCause::ALL
                .iter()
                .map(|&c| (c, self.abort_causes[c.index()].load(Relaxed)))
                .collect(),
            begins: self.counters.begins.load(Relaxed),
            grants: self.counters.grants.load(Relaxed),
            blocks: self.counters.blocks.load(Relaxed),
            dooms: self.counters.dooms.load(Relaxed),
            deadlocks: self.counters.deadlocks.load(Relaxed),
            commits: self.counters.commits.load(Relaxed),
            fires: self.counters.fires.load(Relaxed),
            aborts: self.counters.aborts.load(Relaxed),
            anomalies: self.counters.anomalies.load(Relaxed),
            faults: self.counters.faults.load(Relaxed),
            escalations: self.counters.escalations.load(Relaxed),
            snapshot_pins: self.counters.snapshot_pins.load(Relaxed),
            version_reads: self.counters.version_reads.load(Relaxed),
            version_writes: self.counters.version_writes.load(Relaxed),
            wal_syncs: self.counters.wal_syncs.load(Relaxed),
            checkpoints: self.counters.checkpoints.load(Relaxed),
            elided_commits: self.counters.elided_commits.load(Relaxed),
            dropped_events: self.dropped.load(Relaxed),
            fanout: self.fanout_snapshot(),
            rules: rules
                .iter()
                .map(|(name, stat)| RuleRow {
                    name: name.clone(),
                    fired: stat.fired,
                    aborted: stat.aborted,
                })
                .collect(),
        }
    }
}

/// Checks that a merged history is well-formed:
///
/// * every transaction with any event has exactly one `Begin`, and it
///   is its first event;
/// * every begun transaction ends in **exactly one** terminal
///   (`Commit` or `Abort`), with no events after it (`Anomaly` markers
///   excepted — they may trail an abort — and `Fire` /
///   `ElidedCommit` records, which legitimately trail the `Commit`
///   they describe because the engine only learns the sequence number
///   after the commit critical section);
/// * `Fire` never appears on a transaction that aborted;
/// * per-transaction timestamps are monotonically non-decreasing;
/// * durability sequencing: `Checkpoint` sequence numbers never go
///   backwards across the merged history, no `WalSync{seq}` reports a
///   durable horizon below the last installed `Checkpoint{seq}` (the
///   checkpoint's rotation already forced durability through its
///   sequence), and one commit records at most one of each;
/// * MVCC sequencing: at most one `SnapshotPin` per transaction, every
///   `VersionRead` follows its transaction's pin and reads at or below
///   the pinned sequence, and every `VersionWrite` installs *above*
///   the pin (a commit's sequence postdates its snapshot).
///
/// Call only when [`Recorder::dropped`] is zero — a wrapped ring loses
/// prefixes, which legitimately breaks these invariants.
pub fn validate_history(events: &[Event]) -> Result<(), String> {
    #[derive(Default)]
    struct TxnCheck {
        begun: bool,
        terminals: u32,
        aborted: bool,
        last_ts: u64,
        events: u32,
        pin: Option<u64>,
        wal_syncs: u32,
        checkpoint: Option<u64>,
    }
    let mut txns: BTreeMap<u64, TxnCheck> = BTreeMap::new();
    // The durable floor: the highest checkpoint installed so far in
    // merged order. Checkpoints only move forward, and no later sync
    // may report a horizon below one.
    let mut last_checkpoint: Option<u64> = None;
    for ev in events {
        let t = txns.entry(ev.txn).or_default();
        if ev.ts < t.last_ts {
            return Err(format!(
                "txn {}: timestamp went backwards ({} -> {})",
                ev.txn, t.last_ts, ev.ts
            ));
        }
        t.last_ts = ev.ts;
        t.events += 1;
        match ev.kind {
            EventKind::Begin => {
                if t.begun {
                    return Err(format!("txn {}: duplicate Begin", ev.txn));
                }
                if t.events != 1 {
                    return Err(format!("txn {}: Begin is not its first event", ev.txn));
                }
                t.begun = true;
            }
            // Markers are exempt from the lifecycle rules: anomalies
            // may trail an abort, and chaos-layer Fault / Escalate
            // events are commentary on the schedule, not part of the
            // transaction protocol (a forced-abort Fault is recorded
            // concurrently with the victim's own terminal, so it may
            // land on either side of it in the merged order).
            EventKind::Anomaly { .. } | EventKind::Fault { .. } | EventKind::Escalate { .. } => {}
            EventKind::Fire { .. }
            | EventKind::VersionWrite { .. }
            | EventKind::WalSync { .. }
            | EventKind::Checkpoint { .. }
            | EventKind::ElidedCommit { .. } => {
                // Fire (and the MVCC VersionWrite / durability WalSync
                // / Checkpoint records that share its timing) trails
                // the Commit it describes (the sequence number only
                // exists after the commit critical section), so it is
                // exempt from the after-terminal rule — but never
                // legal before Begin or on an abort.
                if !t.begun {
                    return Err(format!("txn {}: {:?} before Begin", ev.txn, ev.kind));
                }
                if t.aborted {
                    return Err(format!(
                        "txn {}: {:?} on an aborted transaction",
                        ev.txn, ev.kind
                    ));
                }
                match ev.kind {
                    EventKind::Checkpoint { seq } => {
                        if t.checkpoint.is_some() {
                            return Err(format!("txn {}: duplicate Checkpoint", ev.txn));
                        }
                        if last_checkpoint.is_some_and(|c| seq < c) {
                            return Err(format!(
                                "txn {}: Checkpoint seq went backwards ({} -> {seq})",
                                ev.txn,
                                last_checkpoint.unwrap_or(0)
                            ));
                        }
                        last_checkpoint = Some(seq);
                        t.checkpoint = Some(seq);
                    }
                    EventKind::WalSync { seq } => {
                        if t.wal_syncs > 0 {
                            return Err(format!("txn {}: duplicate WalSync", ev.txn));
                        }
                        t.wal_syncs += 1;
                        // A checkpoint's log rotation forces durability
                        // through its sequence, so no later sync can
                        // report a horizon below it.
                        if last_checkpoint.is_some_and(|c| seq < c) {
                            return Err(format!(
                                "txn {}: WalSync horizon {seq} below the last Checkpoint {}",
                                ev.txn,
                                last_checkpoint.unwrap_or(0)
                            ));
                        }
                    }
                    EventKind::VersionWrite { seq, .. } if t.pin.is_some_and(|p| seq <= p) => {
                        return Err(format!(
                            "txn {}: VersionWrite seq {seq} not above the pinned snapshot {}",
                            ev.txn,
                            t.pin.unwrap_or(0)
                        ));
                    }
                    _ => {}
                }
            }
            EventKind::SnapshotPin { seq } => {
                if !t.begun {
                    return Err(format!("txn {}: SnapshotPin before Begin", ev.txn));
                }
                if t.terminals > 0 {
                    return Err(format!("txn {}: SnapshotPin after a terminal event", ev.txn));
                }
                if t.pin.is_some() {
                    return Err(format!("txn {}: duplicate SnapshotPin", ev.txn));
                }
                t.pin = Some(seq);
            }
            EventKind::VersionRead { seq, .. } => {
                if !t.begun {
                    return Err(format!("txn {}: VersionRead before Begin", ev.txn));
                }
                if t.terminals > 0 {
                    return Err(format!("txn {}: VersionRead after a terminal event", ev.txn));
                }
                match t.pin {
                    None => {
                        return Err(format!(
                            "txn {}: VersionRead without a SnapshotPin",
                            ev.txn
                        ))
                    }
                    Some(p) if seq > p => {
                        return Err(format!(
                            "txn {}: VersionRead at seq {seq} above the pinned snapshot {p}",
                            ev.txn
                        ))
                    }
                    Some(_) => {}
                }
            }
            kind => {
                if !t.begun {
                    return Err(format!("txn {}: {kind:?} before Begin", ev.txn));
                }
                if t.terminals > 0 {
                    return Err(format!("txn {}: {kind:?} after a terminal event", ev.txn));
                }
                if kind.is_terminal() {
                    t.terminals += 1;
                    if matches!(kind, EventKind::Abort { .. }) {
                        t.aborted = true;
                    }
                }
            }
        }
    }
    for (txn, t) in &txns {
        if t.begun && t.terminals != 1 {
            return Err(format!(
                "txn {txn}: {} terminal events (expected exactly 1)",
                t.terminals
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ts: u64, txn: u64, kind: EventKind) -> Event {
        Event { ts, txn, kind }
    }

    #[test]
    fn record_and_report_counts() {
        let r = Recorder::default();
        r.record(0, EventKind::Begin);
        r.record(
            0,
            EventKind::Grant {
                resource: 2,
                mode: "Rc",
            },
        );
        r.record(0, EventKind::Commit);
        r.record(1, EventKind::Begin);
        r.record(
            1,
            EventKind::Abort {
                cause: AbortCause::Stale,
            },
        );
        let rep = r.report();
        assert_eq!((rep.begins, rep.grants, rep.commits, rep.aborts), (2, 1, 1, 1));
        assert_eq!(r.aborts_by_cause(AbortCause::Stale), 1);
        assert_eq!(r.aborts_by_cause(AbortCause::Doomed), 0);
        assert_eq!(rep.abort_cause_total(), 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn history_merges_sorted_and_validates() {
        let r = Recorder::default();
        for txn in 0..4u64 {
            r.record(txn, EventKind::Begin);
            r.record(
                txn,
                EventKind::Grant {
                    resource: txn,
                    mode: "Rc",
                },
            );
            r.record(txn, EventKind::Commit);
        }
        let h = r.history();
        assert_eq!(h.len(), 12);
        assert!(h.windows(2).all(|w| w[0].ts <= w[1].ts), "sorted by ts");
        validate_history(&h).unwrap();
    }

    #[test]
    fn cross_thread_recording_is_complete() {
        let r = std::sync::Arc::new(Recorder::default());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..50 {
                        let txn = t * 100 + i;
                        r.record(txn, EventKind::Begin);
                        r.record(txn, EventKind::Commit);
                    }
                });
            }
        });
        let rep = r.report();
        assert_eq!((rep.begins, rep.commits), (400, 400));
        assert_eq!(r.dropped(), 0);
        validate_history(&r.history()).unwrap();
    }

    #[test]
    fn overflow_counts_drops() {
        let r = Recorder::with_capacity(1, 4);
        for txn in 0..10 {
            r.record(txn, EventKind::Begin);
        }
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.history().len(), 4);
    }

    #[test]
    fn validation_rejects_malformed_histories() {
        // Missing terminal.
        let h = vec![e(0, 1, EventKind::Begin)];
        assert!(validate_history(&h).unwrap_err().contains("terminal"));
        // Double terminal.
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(
                2,
                1,
                EventKind::Abort {
                    cause: AbortCause::Stale,
                },
            ),
        ];
        assert!(validate_history(&h).is_err());
        // Backwards time.
        let h = vec![e(5, 1, EventKind::Begin), e(3, 1, EventKind::Commit)];
        assert!(validate_history(&h).unwrap_err().contains("backwards"));
        // Event before begin.
        let h = vec![e(0, 1, EventKind::Commit)];
        assert!(validate_history(&h).unwrap_err().contains("before Begin"));
        // Duplicate begin.
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Begin),
            e(2, 1, EventKind::Commit),
        ];
        assert!(validate_history(&h).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn empty_history_is_trivially_valid() {
        validate_history(&[]).unwrap();
    }

    #[test]
    fn abort_without_begin_is_rejected() {
        let h = vec![e(
            0,
            9,
            EventKind::Abort {
                cause: AbortCause::Doomed,
            },
        )];
        let err = validate_history(&h).unwrap_err();
        assert!(err.contains("before Begin"), "{err}");
    }

    #[test]
    fn duplicate_commit_is_rejected() {
        let h = vec![
            e(0, 3, EventKind::Begin),
            e(1, 3, EventKind::Commit),
            e(2, 3, EventKind::Commit),
        ];
        let err = validate_history(&h).unwrap_err();
        assert!(err.contains("after a terminal"), "{err}");
    }

    #[test]
    fn cross_slot_timestamp_ties_are_fine() {
        // Two transactions recorded on different worker slots can share
        // identical timestamps; monotonicity is only *per transaction*,
        // and equal timestamps within one transaction are allowed too.
        let h = vec![
            e(5, 1, EventKind::Begin),
            e(5, 2, EventKind::Begin),
            e(5, 1, EventKind::Commit),
            e(5, 2, EventKind::Commit),
        ];
        validate_history(&h).unwrap();
    }

    #[test]
    fn fire_may_trail_its_commit_but_not_an_abort() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(2, 1, EventKind::Fire { rule: 0, seq: 0 }),
        ];
        validate_history(&h).unwrap();
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(
                1,
                1,
                EventKind::Abort {
                    cause: AbortCause::Stale,
                },
            ),
            e(2, 1, EventKind::Fire { rule: 0, seq: 0 }),
        ];
        let err = validate_history(&h).unwrap_err();
        assert!(err.contains("aborted"), "{err}");
        // And never before Begin.
        let h = vec![e(0, 1, EventKind::Fire { rule: 0, seq: 0 })];
        assert!(validate_history(&h).unwrap_err().contains("before Begin"));
    }

    #[test]
    fn rule_interner_is_idempotent_and_ordered() {
        let r = Recorder::default();
        assert_eq!(r.intern_rule("alpha"), 0);
        assert_eq!(r.intern_rule("beta"), 1);
        assert_eq!(r.intern_rule("alpha"), 0);
        assert_eq!(r.rule_names(), vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(r.rule_name(1).as_deref(), Some("beta"));
        assert_eq!(r.rule_name(2), None);
    }

    #[test]
    fn anomaly_markers_do_not_break_validation() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(
                1,
                1,
                EventKind::Abort {
                    cause: AbortCause::Deadlock,
                },
            ),
            e(2, 1, EventKind::Anomaly { what: "late" }),
        ];
        validate_history(&h).unwrap();
    }

    #[test]
    fn wal_sequencing_rules_hold_and_falsify() {
        // A healthy durable history: checkpoint at 8, then syncs at and
        // above the checkpoint.
        let good = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(2, 1, EventKind::Checkpoint { seq: 8 }),
            e(3, 1, EventKind::WalSync { seq: 8 }),
            e(4, 2, EventKind::Begin),
            e(5, 2, EventKind::Commit),
            e(6, 2, EventKind::WalSync { seq: 9 }),
        ];
        validate_history(&good).unwrap();
        // Corruption 1: a sync horizon below the installed checkpoint.
        let mut bad = good.clone();
        bad[6] = e(6, 2, EventKind::WalSync { seq: 7 });
        let err = validate_history(&bad).unwrap_err();
        assert!(err.contains("below the last Checkpoint"), "{err}");
        // Corruption 2: checkpoints going backwards.
        let bad = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(2, 1, EventKind::Checkpoint { seq: 16 }),
            e(3, 2, EventKind::Begin),
            e(4, 2, EventKind::Commit),
            e(5, 2, EventKind::Checkpoint { seq: 8 }),
        ];
        let err = validate_history(&bad).unwrap_err();
        assert!(err.contains("Checkpoint seq went backwards"), "{err}");
        // Corruption 3: one commit claiming two syncs (or checkpoints).
        let bad = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(2, 1, EventKind::WalSync { seq: 1 }),
            e(3, 1, EventKind::WalSync { seq: 2 }),
        ];
        assert!(validate_history(&bad).unwrap_err().contains("duplicate WalSync"));
        let bad = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(2, 1, EventKind::Checkpoint { seq: 4 }),
            e(3, 1, EventKind::Checkpoint { seq: 8 }),
        ];
        assert!(validate_history(&bad).unwrap_err().contains("duplicate Checkpoint"));
    }

    #[test]
    fn snapshot_sequencing_rules_hold_and_falsify() {
        // A healthy MVCC attempt: pin at 5, read at/below 5, install
        // above 5.
        let good = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::SnapshotPin { seq: 5 }),
            e(2, 1, EventKind::VersionRead { resource: 9, seq: 5 }),
            e(3, 1, EventKind::VersionRead { resource: 10, seq: 3 }),
            e(4, 1, EventKind::Commit),
            e(5, 1, EventKind::VersionWrite { resource: 9, seq: 6 }),
        ];
        validate_history(&good).unwrap();
        // Corruption 1: a read above the pinned snapshot.
        let mut bad = good.clone();
        bad[2] = e(2, 1, EventKind::VersionRead { resource: 9, seq: 6 });
        let err = validate_history(&bad).unwrap_err();
        assert!(err.contains("above the pinned snapshot"), "{err}");
        // Corruption 2: a read with no pin at all.
        let bad = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::VersionRead { resource: 9, seq: 5 }),
            e(2, 1, EventKind::Commit),
        ];
        let err = validate_history(&bad).unwrap_err();
        assert!(err.contains("without a SnapshotPin"), "{err}");
        // Corruption 3: two pins on one transaction.
        let bad = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::SnapshotPin { seq: 5 }),
            e(2, 1, EventKind::SnapshotPin { seq: 6 }),
            e(3, 1, EventKind::Commit),
        ];
        assert!(validate_history(&bad).unwrap_err().contains("duplicate SnapshotPin"));
        // Corruption 4: the installed version does not postdate the pin.
        let mut bad = good;
        bad[5] = e(5, 1, EventKind::VersionWrite { resource: 9, seq: 5 });
        let err = validate_history(&bad).unwrap_err();
        assert!(err.contains("not above the pinned snapshot"), "{err}");
        // And a pin after the terminal is still rejected.
        let bad = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Commit),
            e(2, 1, EventKind::SnapshotPin { seq: 5 }),
        ];
        assert!(validate_history(&bad).unwrap_err().contains("after a terminal"));
    }

    #[test]
    fn rule_tables_accumulate() {
        let r = Recorder::default();
        r.rule_fired("bump");
        r.rule_fired("bump");
        r.rule_aborted("bump");
        r.rule_fired("other");
        let rep = r.report();
        let bump = rep.rules.iter().find(|r| r.name == "bump").unwrap();
        assert_eq!((bump.fired, bump.aborted), (2, 1));
        assert_eq!(rep.rules.len(), 2);
    }
}
