//! Merged-history (de)serialization: `Vec<Event>` ↔ JSON.
//!
//! The analysis layer consumes merged histories; persisting them lets a
//! run be recorded once and analyzed offline (`analyze <history.json>`)
//! or shipped as a CI artifact. The format is one JSON array of event
//! objects, each `{"ts": …, "txn": …, "kind": "…", …payload}`, wrapped
//! in a `dps-history-v1` envelope by [`history_to_json`].
//!
//! [`Event`] is `Copy` and its string payloads are `&'static str`, so
//! the parser re-interns mode and anomaly names against closed static
//! tables ([`intern_mode`], [`intern_anomaly`]); an unknown mode is a
//! parse error (the lock layer's mode alphabet is closed), an unknown
//! anomaly string maps to the catch-all `"other"`.
//!
//! Backwards compatibility: `Block` events written before the `holder`
//! field existed parse with `holder: None`, and `Doom`'s JSON key is
//! `"holder"` to match (the Rust field stays `by`).

use crate::event::{AbortCause, Event, EventKind, ESCALATE_ACTIONS, FAULT_KINDS};
use crate::json::Json;

/// The closed alphabet of lock-mode names the lock layer emits.
pub const MODES: [&str; 5] = ["S", "X", "Rc", "Ra", "Wa"];

/// Known anomaly descriptions (events carry `&'static str`).
pub const ANOMALIES: [&str; 3] = ["abort-failed", "late", "other"];

/// Re-interns a mode name against [`MODES`]. `None` if unknown.
pub fn intern_mode(name: &str) -> Option<&'static str> {
    MODES.iter().find(|m| **m == name).copied()
}

/// Re-interns an anomaly description against [`ANOMALIES`], falling
/// back to the catch-all `"other"` for strings this build doesn't know.
pub fn intern_anomaly(name: &str) -> &'static str {
    ANOMALIES.iter().find(|a| **a == name).copied().unwrap_or("other")
}

/// Re-interns a fault-kind name against [`FAULT_KINDS`]. `None` if
/// unknown (the fault alphabet is closed, like lock modes).
pub fn intern_fault(name: &str) -> Option<&'static str> {
    FAULT_KINDS.iter().find(|k| **k == name).copied()
}

/// Re-interns an escalation action against [`ESCALATE_ACTIONS`].
/// `None` if unknown.
pub fn intern_escalate(name: &str) -> Option<&'static str> {
    ESCALATE_ACTIONS.iter().find(|a| **a == name).copied()
}

/// Serializes one event as a JSON object.
pub fn event_to_json(ev: &Event) -> Json {
    let mut fields = vec![
        ("ts".into(), Json::u64(ev.ts)),
        ("txn".into(), Json::u64(ev.txn)),
    ];
    let kind: &str = match ev.kind {
        EventKind::Begin => "begin",
        EventKind::Grant { resource, mode } => {
            fields.push(("resource".into(), Json::u64(resource)));
            fields.push(("mode".into(), Json::str(mode)));
            "grant"
        }
        EventKind::Block {
            resource,
            mode,
            holder,
        } => {
            fields.push(("resource".into(), Json::u64(resource)));
            fields.push(("mode".into(), Json::str(mode)));
            if let Some(h) = holder {
                fields.push(("holder".into(), Json::u64(h)));
            }
            "block"
        }
        EventKind::Doom { by } => {
            fields.push(("holder".into(), Json::u64(by)));
            "doom"
        }
        EventKind::Deadlock => "deadlock",
        EventKind::Commit => "commit",
        EventKind::Fire { rule, seq } => {
            fields.push(("rule".into(), Json::u64(u64::from(rule))));
            fields.push(("seq".into(), Json::u64(seq)));
            "fire"
        }
        EventKind::Abort { cause } => {
            fields.push(("cause".into(), Json::str(cause.name())));
            "abort"
        }
        EventKind::Anomaly { what } => {
            fields.push(("what".into(), Json::str(what)));
            "anomaly"
        }
        EventKind::Fault { kind } => {
            fields.push(("fault".into(), Json::str(kind)));
            "fault"
        }
        EventKind::Escalate { resource, action } => {
            fields.push(("resource".into(), Json::u64(resource)));
            fields.push(("action".into(), Json::str(action)));
            "escalate"
        }
        EventKind::SnapshotPin { seq } => {
            fields.push(("seq".into(), Json::u64(seq)));
            "snapshot"
        }
        EventKind::VersionRead { resource, seq } => {
            fields.push(("resource".into(), Json::u64(resource)));
            fields.push(("seq".into(), Json::u64(seq)));
            "vread"
        }
        EventKind::VersionWrite { resource, seq } => {
            fields.push(("resource".into(), Json::u64(resource)));
            fields.push(("seq".into(), Json::u64(seq)));
            "vwrite"
        }
        EventKind::WalSync { seq } => {
            fields.push(("seq".into(), Json::u64(seq)));
            "wal_sync"
        }
        EventKind::Checkpoint { seq } => {
            fields.push(("seq".into(), Json::u64(seq)));
            "checkpoint"
        }
        EventKind::ElidedCommit { resources } => {
            fields.push(("resources".into(), Json::u64(u64::from(resources))));
            "elided"
        }
    };
    fields.insert(2, ("kind".into(), Json::str(kind)));
    Json::Obj(fields)
}

/// Parses one event object (inverse of [`event_to_json`]).
pub fn event_from_json(j: &Json) -> Result<Event, String> {
    let need_u64 = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event missing integer {key:?}"))
    };
    let ts = need_u64("ts")?;
    let txn = need_u64("txn")?;
    let kind_name = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("event missing string \"kind\"")?;
    let mode = || -> Result<&'static str, String> {
        let m = j
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("event missing string \"mode\"")?;
        intern_mode(m).ok_or_else(|| format!("unknown lock mode {m:?}"))
    };
    let kind = match kind_name {
        "begin" => EventKind::Begin,
        "grant" => EventKind::Grant {
            resource: need_u64("resource")?,
            mode: mode()?,
        },
        "block" => EventKind::Block {
            resource: need_u64("resource")?,
            mode: mode()?,
            // Old-shape histories predate the holder field.
            holder: j.get("holder").and_then(Json::as_u64),
        },
        "doom" => EventKind::Doom {
            by: need_u64("holder")?,
        },
        "deadlock" => EventKind::Deadlock,
        "commit" => EventKind::Commit,
        "fire" => EventKind::Fire {
            rule: u32::try_from(need_u64("rule")?)
                .map_err(|_| "fire rule id exceeds u32".to_string())?,
            seq: need_u64("seq")?,
        },
        "abort" => {
            let c = j
                .get("cause")
                .and_then(Json::as_str)
                .ok_or("abort event missing string \"cause\"")?;
            let cause = AbortCause::ALL
                .iter()
                .find(|k| k.name() == c)
                .copied()
                .ok_or_else(|| format!("unknown abort cause {c:?}"))?;
            EventKind::Abort { cause }
        }
        "anomaly" => {
            let w = j
                .get("what")
                .and_then(Json::as_str)
                .ok_or("anomaly event missing string \"what\"")?;
            EventKind::Anomaly {
                what: intern_anomaly(w),
            }
        }
        "fault" => {
            let k = j
                .get("fault")
                .and_then(Json::as_str)
                .ok_or("fault event missing string \"fault\"")?;
            EventKind::Fault {
                kind: intern_fault(k).ok_or_else(|| format!("unknown fault kind {k:?}"))?,
            }
        }
        "escalate" => {
            let a = j
                .get("action")
                .and_then(Json::as_str)
                .ok_or("escalate event missing string \"action\"")?;
            EventKind::Escalate {
                resource: need_u64("resource")?,
                action: intern_escalate(a)
                    .ok_or_else(|| format!("unknown escalate action {a:?}"))?,
            }
        }
        "snapshot" => EventKind::SnapshotPin {
            seq: need_u64("seq")?,
        },
        "vread" => EventKind::VersionRead {
            resource: need_u64("resource")?,
            seq: need_u64("seq")?,
        },
        "vwrite" => EventKind::VersionWrite {
            resource: need_u64("resource")?,
            seq: need_u64("seq")?,
        },
        "wal_sync" => EventKind::WalSync {
            seq: need_u64("seq")?,
        },
        "checkpoint" => EventKind::Checkpoint {
            seq: need_u64("seq")?,
        },
        "elided" => EventKind::ElidedCommit {
            resources: u32::try_from(need_u64("resources")?)
                .map_err(|_| "elided resources count exceeds u32".to_string())?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(Event { ts, txn, kind })
}

/// Wraps a merged history in a `dps-history-v1` envelope.
pub fn history_to_json(events: &[Event]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("dps-history-v1")),
        (
            "events".into(),
            Json::Arr(events.iter().map(event_to_json).collect()),
        ),
    ])
}

/// Parses a `dps-history-v1` envelope (or a bare event array) back
/// into a `Vec<Event>`.
pub fn history_from_json(j: &Json) -> Result<Vec<Event>, String> {
    let arr = match j {
        Json::Arr(a) => a,
        _ => {
            if let Some(schema) = j.get("schema").and_then(Json::as_str) {
                if schema != "dps-history-v1" {
                    return Err(format!("unexpected history schema {schema:?}"));
                }
            }
            j.get("events")
                .and_then(Json::as_arr)
                .ok_or("history document missing \"events\" array")?
        }
    };
    arr.iter().map(event_from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                ts: 0,
                txn: 1,
                kind: EventKind::Begin,
            },
            Event {
                ts: 1,
                txn: 1,
                kind: EventKind::Grant {
                    resource: 8,
                    mode: "Rc",
                },
            },
            Event {
                ts: 2,
                txn: 2,
                kind: EventKind::Begin,
            },
            Event {
                ts: 3,
                txn: 2,
                kind: EventKind::Block {
                    resource: 8,
                    mode: "Wa",
                    holder: Some(1),
                },
            },
            Event {
                ts: 4,
                txn: 1,
                kind: EventKind::Commit,
            },
            Event {
                ts: 5,
                txn: 1,
                kind: EventKind::Fire { rule: 3, seq: 0 },
            },
            Event {
                ts: 6,
                txn: 2,
                kind: EventKind::Abort {
                    cause: AbortCause::Doomed,
                },
            },
            Event {
                ts: 7,
                txn: 2,
                kind: EventKind::Anomaly { what: "late" },
            },
            Event {
                ts: 8,
                txn: 2,
                kind: EventKind::Fault {
                    kind: "forced_abort",
                },
            },
            Event {
                ts: 9,
                txn: 1,
                kind: EventKind::Escalate {
                    resource: 8,
                    action: "escalate",
                },
            },
            Event {
                ts: 10,
                txn: 3,
                kind: EventKind::SnapshotPin { seq: 4 },
            },
            Event {
                ts: 11,
                txn: 3,
                kind: EventKind::VersionRead { resource: 8, seq: 2 },
            },
            Event {
                ts: 12,
                txn: 3,
                kind: EventKind::VersionWrite { resource: 8, seq: 5 },
            },
            Event {
                ts: 13,
                txn: 3,
                kind: EventKind::WalSync { seq: 5 },
            },
            Event {
                ts: 14,
                txn: 3,
                kind: EventKind::Checkpoint { seq: 5 },
            },
            Event {
                ts: 15,
                txn: 3,
                kind: EventKind::ElidedCommit { resources: 4 },
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_event() {
        let h = sample();
        let text = history_to_json(&h).to_string_pretty();
        let parsed = history_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn doom_serializes_under_holder_key() {
        let ev = Event {
            ts: 9,
            txn: 4,
            kind: EventKind::Doom { by: 11 },
        };
        let j = event_to_json(&ev);
        assert_eq!(j.get("holder").and_then(Json::as_u64), Some(11));
        assert_eq!(event_from_json(&j).unwrap(), ev);
    }

    #[test]
    fn old_shape_block_without_holder_parses() {
        let j = json::parse(
            r#"{"ts": 3, "txn": 2, "kind": "block", "resource": 8, "mode": "Wa"}"#,
        )
        .unwrap();
        assert_eq!(
            event_from_json(&j).unwrap().kind,
            EventKind::Block {
                resource: 8,
                mode: "Wa",
                holder: None
            }
        );
    }

    #[test]
    fn unknown_mode_is_a_parse_error() {
        let j = json::parse(r#"{"ts": 0, "txn": 0, "kind": "grant", "resource": 1, "mode": "Z"}"#)
            .unwrap();
        assert!(event_from_json(&j).unwrap_err().contains("unknown lock mode"));
    }

    #[test]
    fn unknown_fault_or_action_is_a_parse_error() {
        let j =
            json::parse(r#"{"ts": 0, "txn": 0, "kind": "fault", "fault": "gremlin"}"#).unwrap();
        assert!(event_from_json(&j).unwrap_err().contains("unknown fault kind"));
        let j = json::parse(
            r#"{"ts": 0, "txn": 0, "kind": "escalate", "resource": 3, "action": "panic"}"#,
        )
        .unwrap();
        assert!(event_from_json(&j).unwrap_err().contains("unknown escalate action"));
    }

    #[test]
    fn unknown_anomaly_maps_to_other() {
        let j = json::parse(r#"{"ts": 0, "txn": 0, "kind": "anomaly", "what": "novel"}"#).unwrap();
        assert_eq!(
            event_from_json(&j).unwrap().kind,
            EventKind::Anomaly { what: "other" }
        );
    }

    #[test]
    fn bare_array_form_is_accepted() {
        let h = sample();
        let bare = Json::Arr(h.iter().map(event_to_json).collect()).to_string_compact();
        let parsed = history_from_json(&json::parse(&bare).unwrap()).unwrap();
        assert_eq!(parsed, h);
    }
}
