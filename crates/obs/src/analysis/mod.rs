//! Trace analysis: what a merged history *means*.
//!
//! The raw event stream (PR 2) records what happened; this layer
//! explains it, along the three axes the paper's §5 says govern
//! dynamic-mode speed-up:
//!
//! * [`graph`] — the blocking / wait-for graph (who waited for whom,
//!   on what, for how long), reconstructed from `Block{holder}` /
//!   `Doom{by}` / `Grant` events;
//! * [`attribution`] — the per-resource contention table: blocked-ns,
//!   distinct blockers and aborts caused, per resource (the degree of
//!   conflict made visible, in the coordination-attribution spirit of
//!   Bailis et al.);
//! * [`critical_path`] — the heaviest dependency chain, effective
//!   parallelism and the wasted-work fraction `f`;
//! * [`checker`] — §3's Theorem 2 (`ES_M ⊆ ES_single`) as an
//!   executable assertion: recover the commit sequence from `Fire`
//!   records, verify it structurally, and let the caller replay it
//!   through the single-thread oracle;
//! * [`si_checker`] — the polygraph-based snapshot-isolation /
//!   serializability checker over MVCC histories (`SnapshotPin` /
//!   `VersionRead` / `VersionWrite` events): reads-from, version-order
//!   and anti-dependency edges, cycle search, first-committer-wins.
//!   Runs only when a history carries MVCC events; lock-era histories
//!   leave it silent.
//!
//! [`analyze`] runs all of them and [`RunAnalysis::to_json`] emits the
//! per-run body of a `dps-analysis-report-v1` document.

pub mod attribution;
pub mod checker;
pub mod critical_path;
pub mod graph;
pub mod si_checker;

pub use attribution::{contention_table, ResourceContention};
pub use checker::{check, CheckerReport, CommitRecord, Verdict};
pub use critical_path::{critical_path, CriticalPathReport};
pub use graph::{build, BlockingGraph, EdgeKind, TxnSpan, WaitEdge};
pub use si_checker::{SiReport, SiTxn};

use crate::event::Event;
use crate::json::Json;

/// Everything the analysis layer extracts from one run's history.
#[derive(Clone, Debug)]
pub struct RunAnalysis {
    /// The reconstructed blocking graph.
    pub graph: BlockingGraph,
    /// Per-resource contention, sorted by blocked-ns descending.
    pub contention: Vec<ResourceContention>,
    /// Critical path / speed-up factors.
    pub critical: CriticalPathReport,
    /// Commit-sequence recovery + structural checks (+ replay verdict
    /// once the caller attaches it).
    pub checker: CheckerReport,
    /// SI/serializability polygraph findings; `None` when the history
    /// carries no MVCC events (lock-era runs).
    pub si: Option<SiReport>,
}

/// Runs the full analysis pipeline on a merged history.
pub fn analyze(history: &[Event]) -> RunAnalysis {
    let graph = build(history);
    let contention = contention_table(&graph);
    let critical = critical_path(&graph);
    let checker = check(history, &graph);
    let si_txns = si_checker::extract(history);
    let si = if si_txns.is_empty() {
        None
    } else {
        Some(si_checker::check(&si_txns))
    };
    RunAnalysis {
        graph,
        contention,
        critical,
        checker,
        si,
    }
}

impl RunAnalysis {
    /// Attaches the caller's §3 replay result to the checker (see
    /// [`checker`] module docs for why replay lives with the caller).
    pub fn set_replay_result(&mut self, result: Result<(), String>) {
        self.checker.set_replay_result(result);
    }

    /// Combined verdict: the §3 checker AND (when the history is an
    /// MVCC one) the SI/serializability polygraph.
    pub fn verdict(&self) -> Verdict {
        let si_ok = self
            .si
            .as_ref()
            .is_none_or(|s| s.verdict() == Verdict::Consistent);
        if self.checker.verdict() == Verdict::Consistent && si_ok {
            Verdict::Consistent
        } else {
            Verdict::Inconsistent
        }
    }

    /// Serializes the analysis as the per-run body of a
    /// `dps-analysis-report-v1` document. `top_contended` caps the
    /// contention table (0 = unlimited).
    pub fn to_json(&self, top_contended: usize) -> Json {
        let committed = self.graph.spans.values().filter(|s| s.committed).count();
        let aborted = self
            .graph
            .spans
            .values()
            .filter(|s| s.abort_cause.is_some())
            .count();
        let txns = Json::Obj(vec![
            ("total".into(), Json::u64(self.graph.spans.len() as u64)),
            ("committed".into(), Json::u64(committed as u64)),
            ("aborted".into(), Json::u64(aborted as u64)),
        ]);
        let rows = if top_contended == 0 {
            &self.contention[..]
        } else {
            &self.contention[..self.contention.len().min(top_contended)]
        };
        let contention = Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("resource".into(), Json::u64(r.resource)),
                        ("blocks".into(), Json::u64(r.blocks)),
                        ("blocked_ns".into(), Json::u64(r.blocked_ns)),
                        ("distinct_blockers".into(), Json::u64(r.distinct_blockers)),
                        ("dooms_caused".into(), Json::u64(r.dooms_caused)),
                        ("deadlock_aborts".into(), Json::u64(r.deadlock_aborts)),
                    ])
                })
                .collect(),
        );
        let c = &self.critical;
        let critical = Json::Obj(vec![
            ("wall_ns".into(), Json::u64(c.wall_ns)),
            ("total_busy_ns".into(), Json::u64(c.total_busy_ns)),
            ("useful_busy_ns".into(), Json::u64(c.useful_busy_ns)),
            ("wasted_ns".into(), Json::u64(c.wasted_ns)),
            ("wasted_fraction".into(), Json::Num(c.wasted_fraction)),
            ("critical_path_ns".into(), Json::u64(c.critical_path_ns)),
            (
                "critical_path_txns".into(),
                Json::Arr(c.critical_path.iter().map(|&t| Json::u64(t)).collect()),
            ),
            (
                "effective_parallelism".into(),
                Json::Num(c.effective_parallelism),
            ),
            (
                "max_speedup_estimate".into(),
                Json::Num(c.max_speedup_estimate),
            ),
        ]);
        let checker = Json::Obj(vec![
            ("commits".into(), Json::u64(self.checker.commits.len() as u64)),
            (
                "structural_errors".into(),
                Json::Arr(
                    self.checker
                        .structural_errors
                        .iter()
                        .map(|e| Json::str(e.clone()))
                        .collect(),
                ),
            ),
            (
                "replay".into(),
                Json::str(match &self.checker.replay_result {
                    None => "not-run",
                    Some(Ok(())) => "consistent",
                    Some(Err(_)) => "inconsistent",
                }),
            ),
            (
                "replay_error".into(),
                match &self.checker.replay_result {
                    Some(Err(e)) => Json::str(e.clone()),
                    _ => Json::Null,
                },
            ),
            ("verdict".into(), Json::str(self.verdict().name())),
        ]);
        let mut doc = vec![
            ("txns".into(), txns),
            ("contention".into(), contention),
            ("critical_path".into(), critical),
            ("checker".into(), checker),
        ];
        if let Some(si) = &self.si {
            doc.push((
                "si_checker".into(),
                Json::Obj(vec![
                    ("committed".into(), Json::u64(si.committed as u64)),
                    ("edges".into(), Json::u64(si.edges as u64)),
                    (
                        "violations".into(),
                        Json::Arr(si.violations.iter().map(|v| Json::str(v.clone())).collect()),
                    ),
                    (
                        "cycle".into(),
                        match &si.cycle {
                            Some(path) => {
                                Json::Arr(path.iter().map(|&t| Json::u64(t)).collect())
                            }
                            None => Json::Null,
                        },
                    ),
                    ("verdict".into(), Json::str(si.verdict().name())),
                ]),
            ));
        }
        Json::Obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;

    fn e(ts: u64, txn: u64, kind: EventKind) -> Event {
        Event { ts, txn, kind }
    }

    #[test]
    fn analyze_pipeline_and_json_shape() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Grant { resource: 4, mode: "X" }),
            e(2, 2, EventKind::Begin),
            e(3, 2, EventKind::Block { resource: 4, mode: "X", holder: Some(1) }),
            e(10, 1, EventKind::Commit),
            e(11, 1, EventKind::Fire { rule: 0, seq: 0 }),
            e(12, 2, EventKind::Grant { resource: 4, mode: "X" }),
            e(20, 2, EventKind::Commit),
            e(21, 2, EventKind::Fire { rule: 1, seq: 1 }),
        ];
        let mut a = analyze(&h);
        assert_eq!(a.verdict(), Verdict::Consistent);
        assert_eq!(a.checker.rule_sequence(), vec![0, 1]);
        assert_eq!(a.contention.len(), 1);
        a.set_replay_result(Ok(()));
        let doc = json::parse(&a.to_json(0).to_string_pretty()).unwrap();
        assert_eq!(doc.at(&["txns", "total"]).and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.at(&["checker", "verdict"]).and_then(Json::as_str),
            Some("consistent")
        );
        assert_eq!(
            doc.at(&["checker", "replay"]).and_then(Json::as_str),
            Some("consistent")
        );
        assert!(doc
            .at(&["critical_path", "effective_parallelism"])
            .and_then(Json::as_f64)
            .is_some());
        let rows = doc.get("contention").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("resource").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn top_contended_caps_the_table() {
        let mut h = Vec::new();
        for i in 0..5u64 {
            let holder = 100 + i;
            h.push(e(i * 100, holder, EventKind::Begin));
            h.push(e(i * 100 + 1, holder, EventKind::Grant { resource: i, mode: "X" }));
            h.push(e(i * 100 + 2, i, EventKind::Begin));
            h.push(e(
                i * 100 + 3,
                i,
                EventKind::Block { resource: i, mode: "X", holder: Some(holder) },
            ));
            h.push(e(i * 100 + 10, holder, EventKind::Commit));
            h.push(e(i * 100 + 11, i, EventKind::Grant { resource: i, mode: "X" }));
            h.push(e(i * 100 + 12, i, EventKind::Commit));
        }
        let a = analyze(&h);
        assert_eq!(a.contention.len(), 5);
        let doc = a.to_json(2);
        assert_eq!(doc.get("contention").and_then(Json::as_arr).unwrap().len(), 2);
    }
}
