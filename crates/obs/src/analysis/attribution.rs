//! Per-resource contention attribution.
//!
//! Bailis et al. (*Coordination Avoidance in Database Systems*) argue
//! that the first step toward avoiding coordination is knowing **which
//! coordination costs what**. This module folds the blocking graph into
//! a per-resource table: how long requests queued on each resource, how
//! many distinct transactions did the blocking, and how many aborts the
//! resource caused (dooms resolved by intersecting the victim's read
//! grants with the committer's write grants; deadlock aborts charged to
//! the resource the victim was queued on when it was chosen).

use std::collections::{BTreeMap, BTreeSet};

use crate::event::AbortCause;

use super::graph::{BlockingGraph, EdgeKind};

/// One row of the contention table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceContention {
    /// Opaque resource key (the lock layer's tuple/relation encoding).
    pub resource: u64,
    /// Number of blocked lock requests on this resource.
    pub blocks: u64,
    /// Total nanoseconds requests spent queued on it.
    pub blocked_ns: u64,
    /// Distinct transactions observed holding it against a waiter.
    pub distinct_blockers: u64,
    /// Commit-time dooms attributed to this resource. A doom involving
    /// several contended resources counts once per resource (the
    /// committer invalidated all of them at once), so the column can
    /// sum to more than the run's doom total.
    pub dooms_caused: u64,
    /// Deadlock-victim aborts whose victim was queued on this resource.
    pub deadlock_aborts: u64,
}

/// The read modes a doom victim held (`Rc` under the 3-mode protocol,
/// `S` under 2PL) and the write modes a committer dooms through.
fn is_read_mode(m: &str) -> bool {
    matches!(m, "Rc" | "S")
}
fn is_write_mode(m: &str) -> bool {
    matches!(m, "Wa" | "X")
}

/// Builds the per-resource contention table, sorted by `blocked_ns`
/// descending (ties: by resource key).
pub fn contention_table(g: &BlockingGraph) -> Vec<ResourceContention> {
    let mut rows: BTreeMap<u64, ResourceContention> = BTreeMap::new();
    let mut blockers: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();

    for edge in &g.edges {
        let Some(res) = edge.resource else { continue };
        let row = rows.entry(res).or_insert_with(|| ResourceContention {
            resource: res,
            ..Default::default()
        });
        match edge.kind {
            EdgeKind::Wait | EdgeKind::DeadlockWait => {
                row.blocks += 1;
                row.blocked_ns += edge.duration_ns();
                if let Some(h) = edge.holder {
                    blockers.entry(res).or_default().insert(h);
                }
                if edge.kind == EdgeKind::DeadlockWait {
                    row.deadlock_aborts += 1;
                }
            }
            EdgeKind::Doom => {}
        }
    }

    // Doom attribution: victim's read grants ∩ committer's write
    // grants. When the intersection is empty (grants missing from a
    // truncated history), the doom stays unattributed rather than being
    // charged to an invented resource.
    for span in g.spans.values() {
        if span.abort_cause != Some(AbortCause::Doomed) {
            continue;
        }
        let Some(by) = span.doomed_by else { continue };
        let Some(committer) = g.spans.get(&by) else { continue };
        let victim_reads: BTreeSet<u64> = span
            .grants
            .iter()
            .filter(|(_, m)| is_read_mode(m))
            .map(|&(r, _)| r)
            .collect();
        let committer_writes: BTreeSet<u64> = committer
            .grants
            .iter()
            .filter(|(_, m)| is_write_mode(m))
            .map(|&(r, _)| r)
            .collect();
        for &res in committer_writes.intersection(&victim_reads) {
            rows.entry(res)
                .or_insert_with(|| ResourceContention {
                    resource: res,
                    ..Default::default()
                })
                .dooms_caused += 1;
        }
    }

    let mut out: Vec<ResourceContention> = rows
        .into_values()
        .map(|mut row| {
            row.distinct_blockers =
                blockers.get(&row.resource).map_or(0, |s| s.len() as u64);
            row
        })
        .collect();
    out.sort_by(|a, b| {
        b.blocked_ns
            .cmp(&a.blocked_ns)
            .then_with(|| b.dooms_caused.cmp(&a.dooms_caused))
            .then_with(|| a.resource.cmp(&b.resource))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::super::graph::build;
    use super::*;
    use crate::event::{AbortCause, Event, EventKind};

    fn e(ts: u64, txn: u64, kind: EventKind) -> Event {
        Event { ts, txn, kind }
    }

    #[test]
    fn waits_aggregate_per_resource() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Grant { resource: 6, mode: "X" }),
            e(2, 2, EventKind::Begin),
            e(3, 2, EventKind::Block { resource: 6, mode: "X", holder: Some(1) }),
            e(8, 1, EventKind::Commit),
            e(9, 2, EventKind::Grant { resource: 6, mode: "X" }),
            e(10, 3, EventKind::Begin),
            e(11, 3, EventKind::Block { resource: 6, mode: "X", holder: Some(2) }),
            e(14, 2, EventKind::Commit),
            e(15, 3, EventKind::Grant { resource: 6, mode: "X" }),
            e(16, 3, EventKind::Commit),
        ];
        let table = contention_table(&build(&h));
        assert_eq!(table.len(), 1);
        let row = &table[0];
        assert_eq!(row.resource, 6);
        assert_eq!(row.blocks, 2);
        assert_eq!(row.blocked_ns, 6 + 4);
        assert_eq!(row.distinct_blockers, 2, "txn 1 and txn 2 each blocked someone");
        assert_eq!(row.dooms_caused, 0);
    }

    #[test]
    fn dooms_attributed_via_grant_intersection() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Grant { resource: 6, mode: "Rc" }),
            e(2, 1, EventKind::Grant { resource: 8, mode: "Rc" }),
            e(3, 2, EventKind::Begin),
            e(4, 2, EventKind::Grant { resource: 8, mode: "Wa" }),
            e(5, 2, EventKind::Grant { resource: 12, mode: "Wa" }),
            e(6, 1, EventKind::Doom { by: 2 }),
            e(7, 2, EventKind::Commit),
            e(8, 1, EventKind::Abort { cause: AbortCause::Doomed }),
        ];
        let table = contention_table(&build(&h));
        // Only resource 8 is both read by the victim and written by the
        // committer.
        let row8 = table.iter().find(|r| r.resource == 8).unwrap();
        assert_eq!(row8.dooms_caused, 1);
        assert!(table.iter().all(|r| r.resource == 8 || r.dooms_caused == 0));
    }

    #[test]
    fn deadlock_abort_charged_to_queued_resource() {
        let h = vec![
            e(0, 5, EventKind::Begin),
            e(1, 5, EventKind::Block { resource: 2, mode: "X", holder: Some(6) }),
            e(2, 5, EventKind::Deadlock),
            e(3, 5, EventKind::Abort { cause: AbortCause::Deadlock }),
        ];
        let table = contention_table(&build(&h));
        let row = table.iter().find(|r| r.resource == 2).unwrap();
        assert_eq!(row.deadlock_aborts, 1);
    }
}
