//! Critical-path extraction and the paper-§5 speed-up estimate.
//!
//! §5 bounds dynamic-mode speed-up by three factors: the degree of
//! conflict, the wasted-work fraction `f`, and the execution-time
//! distribution. This module computes all three from the blocking
//! graph:
//!
//! * each transaction is a node weighted by its **busy time** (span
//!   minus lock-wait time);
//! * wait and doom edges impose `holder → waiter` dependencies, kept
//!   only when the holder finished no later than the waiter (ties
//!   broken by txn id) so the graph is a DAG by construction;
//! * the **critical path** is the heaviest dependency chain — the
//!   irreducible serial core of the run. `effective parallelism` =
//!   total busy ÷ critical path; `max speed-up estimate` = *useful*
//!   busy (committed transactions only) ÷ critical path — what a
//!   perfect scheduler could achieve without shortening any firing;
//! * `f` = aborted transactions' busy time ÷ total busy time.

use std::collections::BTreeMap;

use super::graph::BlockingGraph;

/// The critical-path / speed-up summary of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPathReport {
    /// Number of transactions (committed + aborted).
    pub txns: u64,
    /// Wall clock from first Begin to last terminal (ns).
    pub wall_ns: u64,
    /// Σ busy time over every transaction (ns).
    pub total_busy_ns: u64,
    /// Σ busy time over committed transactions (ns).
    pub useful_busy_ns: u64,
    /// Σ busy time over aborted transactions (ns) — the wasted work.
    pub wasted_ns: u64,
    /// §5's `f`: `wasted_ns / total_busy_ns` (0 when nothing ran).
    pub wasted_fraction: f64,
    /// Weight of the heaviest dependency chain (ns).
    pub critical_path_ns: u64,
    /// The transactions on that chain, in dependency order.
    pub critical_path: Vec<u64>,
    /// `total_busy_ns / critical_path_ns` (1.0 when serial).
    pub effective_parallelism: f64,
    /// `useful_busy_ns / critical_path_ns` — the §5 max-speed-up
    /// estimate after discounting wasted work.
    pub max_speedup_estimate: f64,
}

/// Computes the critical path of a blocking graph.
pub fn critical_path(g: &BlockingGraph) -> CriticalPathReport {
    let mut rep = CriticalPathReport {
        txns: g.spans.len() as u64,
        ..Default::default()
    };
    if g.spans.is_empty() {
        return rep;
    }
    let first_begin = g.spans.values().map(|s| s.begin_ts).min().unwrap_or(0);
    let last_end = g.spans.values().map(|s| s.end_ts).max().unwrap_or(0);
    rep.wall_ns = last_end.saturating_sub(first_begin);
    for span in g.spans.values() {
        let busy = span.busy_ns();
        rep.total_busy_ns += busy;
        if span.committed {
            rep.useful_busy_ns += busy;
        } else {
            rep.wasted_ns += busy;
        }
    }
    rep.wasted_fraction = if rep.total_busy_ns > 0 {
        rep.wasted_ns as f64 / rep.total_busy_ns as f64
    } else {
        0.0
    };

    // Dependency edges holder → waiter, deduplicated, restricted to an
    // order that makes the graph acyclic: an edge is kept only if the
    // holder's (end_ts, txn) is strictly less than the waiter's. Wait
    // edges almost always satisfy this (the holder released before the
    // waiter proceeded); the filter only drops edges that would break
    // the DAG, e.g. mutual waits recorded around a deadlock.
    let order_key = |txn: u64| -> (u64, u64) {
        let span = &g.spans[&txn];
        (span.end_ts, txn)
    };
    let mut preds: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for edge in &g.edges {
        let Some(h) = edge.holder else { continue };
        if h == edge.waiter || !g.spans.contains_key(&h) {
            continue;
        }
        if order_key(h) < order_key(edge.waiter) {
            let p = preds.entry(edge.waiter).or_default();
            if !p.contains(&h) {
                p.push(h);
            }
        }
    }

    // Longest-path DP over nodes in (end_ts, txn) order — a valid
    // topological order for the edge set above.
    let mut nodes: Vec<u64> = g.spans.keys().copied().collect();
    nodes.sort_by_key(|&t| order_key(t));
    let mut dist: BTreeMap<u64, u64> = BTreeMap::new();
    let mut parent: BTreeMap<u64, u64> = BTreeMap::new();
    for &n in &nodes {
        let busy = g.spans[&n].busy_ns();
        let mut best: u64 = 0;
        if let Some(ps) = preds.get(&n) {
            for &p in ps {
                let d = dist[&p];
                if d > best {
                    best = d;
                    parent.insert(n, p);
                }
            }
        }
        dist.insert(n, best + busy);
    }
    let (&tail, &len) = dist
        .iter()
        .max_by_key(|&(&t, &d)| (d, std::cmp::Reverse(t)))
        .expect("non-empty");
    rep.critical_path_ns = len;
    let mut path = vec![tail];
    let mut cur = tail;
    while let Some(&p) = parent.get(&cur) {
        path.push(p);
        cur = p;
    }
    path.reverse();
    rep.critical_path = path;
    if rep.critical_path_ns > 0 {
        rep.effective_parallelism = rep.total_busy_ns as f64 / rep.critical_path_ns as f64;
        rep.max_speedup_estimate = rep.useful_busy_ns as f64 / rep.critical_path_ns as f64;
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::super::graph::build;
    use super::*;
    use crate::event::{AbortCause, Event, EventKind};

    fn e(ts: u64, txn: u64, kind: EventKind) -> Event {
        Event { ts, txn, kind }
    }

    #[test]
    fn serial_chain_has_no_parallelism() {
        // 1 holds, 2 waits its whole life: critical path = busy(1) + busy(2).
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(0, 1, EventKind::Grant { resource: 2, mode: "X" }),
            e(0, 2, EventKind::Begin),
            e(0, 2, EventKind::Block { resource: 2, mode: "X", holder: Some(1) }),
            e(100, 1, EventKind::Commit),
            e(100, 2, EventKind::Grant { resource: 2, mode: "X" }),
            e(200, 2, EventKind::Commit),
        ];
        let rep = critical_path(&build(&h));
        assert_eq!(rep.wall_ns, 200);
        // busy(1) = 100, busy(2) = 200 - 100 blocked = 100.
        assert_eq!(rep.total_busy_ns, 200);
        assert_eq!(rep.critical_path_ns, 200);
        assert_eq!(rep.critical_path, vec![1, 2]);
        assert!((rep.effective_parallelism - 1.0).abs() < 1e-9);
        assert_eq!(rep.wasted_fraction, 0.0);
    }

    #[test]
    fn independent_txns_run_in_parallel() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(0, 2, EventKind::Begin),
            e(100, 1, EventKind::Commit),
            e(100, 2, EventKind::Commit),
        ];
        let rep = critical_path(&build(&h));
        assert_eq!(rep.total_busy_ns, 200);
        assert_eq!(rep.critical_path_ns, 100, "no edges → heaviest single node");
        assert!((rep.effective_parallelism - 2.0).abs() < 1e-9);
    }

    #[test]
    fn aborted_work_is_wasted() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(0, 2, EventKind::Begin),
            e(100, 1, EventKind::Commit),
            e(50, 2, EventKind::Abort { cause: AbortCause::Doomed }),
        ];
        let rep = critical_path(&build(&h));
        assert_eq!(rep.useful_busy_ns, 100);
        assert_eq!(rep.wasted_ns, 50);
        assert!((rep.wasted_fraction - 50.0 / 150.0).abs() < 1e-9);
        assert!(rep.max_speedup_estimate <= rep.effective_parallelism);
    }

    #[test]
    fn doom_edge_serialises_committer_and_victim() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(0, 2, EventKind::Begin),
            e(60, 2, EventKind::Doom { by: 1 }),
            e(50, 1, EventKind::Commit),
            e(70, 2, EventKind::Abort { cause: AbortCause::Doomed }),
        ];
        let rep = critical_path(&build(&h));
        // Edge 1 → 2 (1 ended at 50 < 2's 70): path busy(1)+busy(2) = 50+70.
        assert_eq!(rep.critical_path, vec![1, 2]);
        assert_eq!(rep.critical_path_ns, 120);
    }

    #[test]
    fn empty_history_yields_zeroes() {
        let rep = critical_path(&build(&[]));
        assert_eq!(rep.txns, 0);
        assert_eq!(rep.critical_path_ns, 0);
        assert!(rep.critical_path.is_empty());
    }
}
