//! History-based semantic-consistency checking — §3's Theorem 2
//! (`ES_M ⊆ ES_single`) as an executable assertion.
//!
//! The check has two halves:
//!
//! 1. **Structural** (this module, pure history): recover the commit
//!    order from `Fire { rule, seq }` records and verify it is sound —
//!    every committed transaction carries exactly one `Fire`, no
//!    aborted transaction carries any, the sequence numbers form a
//!    contiguous `0..n` permutation, and commit-event timestamps are
//!    non-decreasing along the sequence (the engine appends to the
//!    trace *inside* the commit critical section, so trace order must
//!    equal commit order — a violation means the parallel run's
//!    recorded firing sequence is not the one it actually performed).
//! 2. **Replay** (supplied by the caller): feed the recovered firing
//!    sequence through the single-thread engine's execution-graph
//!    oracle (`validate_trace` in `dps-core`, Defs 3.1–3.2). This crate
//!    sits below `dps-core`, so it cannot replay itself; the
//!    [`CheckerReport`] carries the structural verdict and the caller
//!    attaches the replay result via
//!    [`CheckerReport::set_replay_result`]. Both halves must pass for a
//!    [`Verdict::Consistent`].
//!
//! Per Biswas & Enea, the per-transaction histories are exactly the
//! raw material needed: no engine cooperation beyond the event stream.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

use super::graph::BlockingGraph;

/// One recovered commit, in sequence order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Transaction id.
    pub txn: u64,
    /// 0-based slot in the global commit sequence.
    pub seq: u64,
    /// Interned rule id (resolve via `Recorder::rule_names`).
    pub rule: u32,
    /// Commit-event timestamp (ns).
    pub commit_ts: u64,
}

/// Overall verdict of the consistency check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Firing sequence recovered cleanly and (if replayed) is a member
    /// of `ES_single`.
    Consistent,
    /// A structural error or a replay violation.
    Inconsistent,
}

impl Verdict {
    /// Stable machine-readable name (the CI gate string).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Consistent => "consistent",
            Verdict::Inconsistent => "inconsistent",
        }
    }
}

/// The checker's findings on one history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckerReport {
    /// Recovered commits, sorted by `seq`.
    pub commits: Vec<CommitRecord>,
    /// Structural violations (empty on a sound history).
    pub structural_errors: Vec<String>,
    /// `Some(Err(why))` if the caller replayed the sequence through the
    /// single-thread oracle and it violated the execution graph;
    /// `Some(Ok(()))` if the replay succeeded; `None` if not replayed.
    pub replay_result: Option<Result<(), String>>,
}

impl CheckerReport {
    /// Attaches the caller's §3 replay result (see module docs).
    pub fn set_replay_result(&mut self, result: Result<(), String>) {
        self.replay_result = Some(result);
    }

    /// The recovered rule-id firing sequence, in commit order.
    pub fn rule_sequence(&self) -> Vec<u32> {
        self.commits.iter().map(|c| c.rule).collect()
    }

    /// Combined verdict: structural soundness AND (if present) replay
    /// success.
    pub fn verdict(&self) -> Verdict {
        let replay_ok = !matches!(self.replay_result, Some(Err(_)));
        if self.structural_errors.is_empty() && replay_ok {
            Verdict::Consistent
        } else {
            Verdict::Inconsistent
        }
    }
}

/// Recovers the commit order from a merged history and runs every
/// structural check. `graph` must be built from the same history.
pub fn check(history: &[Event], graph: &BlockingGraph) -> CheckerReport {
    let mut rep = CheckerReport::default();
    let mut fires: BTreeMap<u64, Vec<(u32, u64, u64)>> = BTreeMap::new(); // txn -> (rule, seq, ts)
    for ev in history {
        if let EventKind::Fire { rule, seq } = ev.kind {
            fires.entry(ev.txn).or_default().push((rule, seq, ev.ts));
        }
    }

    // Pair Fires with terminals.
    for (txn, span) in &graph.spans {
        let txn_fires = fires.get(txn).map_or(&[][..], Vec::as_slice);
        if span.committed {
            match txn_fires.len() {
                0 => rep
                    .structural_errors
                    .push(format!("txn {txn}: committed but has no Fire record")),
                1 => {}
                n => rep
                    .structural_errors
                    .push(format!("txn {txn}: {n} Fire records (expected 1)")),
            }
        } else if !txn_fires.is_empty() {
            rep.structural_errors
                .push(format!("txn {txn}: Fire on a transaction that never committed"));
        }
    }

    // Assemble the sequence.
    let mut commits: Vec<CommitRecord> = Vec::new();
    for (txn, span) in &graph.spans {
        if !span.committed {
            continue;
        }
        if let Some(&(rule, seq, _ts)) = fires.get(txn).and_then(|v| v.first()) {
            commits.push(CommitRecord {
                txn: *txn,
                seq,
                rule,
                commit_ts: span.commit_ts.unwrap_or(span.end_ts),
            });
        }
    }
    commits.sort_by_key(|c| (c.seq, c.txn));

    // Sequence numbers must be the contiguous permutation 0..n.
    for (i, c) in commits.iter().enumerate() {
        if c.seq != i as u64 {
            rep.structural_errors.push(format!(
                "commit sequence broken at position {i}: expected seq {i}, found seq {} (txn {})",
                c.seq, c.txn
            ));
            break;
        }
    }

    // Commit timestamps must be non-decreasing along the sequence: the
    // engine holds the world+ledger locks across lm.commit (which
    // stamps the Commit event) and the trace append (which defines
    // `seq`), so the two orders agree on a faithful recording.
    for w in commits.windows(2) {
        if w[1].commit_ts < w[0].commit_ts {
            rep.structural_errors.push(format!(
                "commit timestamps disagree with sequence order: seq {} (txn {}) at {}ns \
                 precedes seq {} (txn {}) at {}ns",
                w[1].seq, w[1].txn, w[1].commit_ts, w[0].seq, w[0].txn, w[0].commit_ts
            ));
            break;
        }
    }

    rep.commits = commits;
    rep
}

#[cfg(test)]
mod tests {
    use super::super::graph::build;
    use super::*;
    use crate::event::AbortCause;

    fn e(ts: u64, txn: u64, kind: EventKind) -> Event {
        Event { ts, txn, kind }
    }

    fn committed(ts0: u64, txn: u64, rule: u32, seq: u64) -> [Event; 3] {
        [
            e(ts0, txn, EventKind::Begin),
            e(ts0 + 5, txn, EventKind::Commit),
            e(ts0 + 6, txn, EventKind::Fire { rule, seq }),
        ]
    }

    #[test]
    fn clean_sequence_is_consistent() {
        let mut h = Vec::new();
        h.extend(committed(0, 10, 2, 0));
        h.extend(committed(10, 11, 0, 1));
        h.extend(committed(20, 12, 2, 2));
        let rep = check(&h, &build(&h));
        assert!(rep.structural_errors.is_empty(), "{:?}", rep.structural_errors);
        assert_eq!(rep.rule_sequence(), vec![2, 0, 2]);
        assert_eq!(rep.verdict(), Verdict::Consistent);
        assert_eq!(rep.commits[1].txn, 11);
    }

    #[test]
    fn replay_failure_flips_the_verdict() {
        let h: Vec<Event> = committed(0, 1, 0, 0).into();
        let mut rep = check(&h, &build(&h));
        assert_eq!(rep.verdict(), Verdict::Consistent);
        rep.set_replay_result(Err("rule not enabled at step 0".into()));
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
    }

    #[test]
    fn missing_fire_is_structural() {
        let h = vec![e(0, 1, EventKind::Begin), e(1, 1, EventKind::Commit)];
        let rep = check(&h, &build(&h));
        assert!(rep.structural_errors.iter().any(|e| e.contains("no Fire")));
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
    }

    #[test]
    fn fire_on_aborted_txn_is_structural() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Abort { cause: AbortCause::Stale }),
            e(2, 1, EventKind::Fire { rule: 0, seq: 0 }),
        ];
        let rep = check(&h, &build(&h));
        assert!(rep
            .structural_errors
            .iter()
            .any(|e| e.contains("never committed")));
    }

    #[test]
    fn gap_in_sequence_is_structural() {
        let mut h = Vec::new();
        h.extend(committed(0, 1, 0, 0));
        h.extend(committed(10, 2, 0, 2)); // seq 1 missing
        let rep = check(&h, &build(&h));
        assert!(rep
            .structural_errors
            .iter()
            .any(|e| e.contains("sequence broken")));
    }

    #[test]
    fn out_of_order_commit_timestamps_are_structural() {
        // seq 0 commits *after* seq 1 in wall time — the injected
        // out-of-order replay of the acceptance criteria.
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(0, 2, EventKind::Begin),
            e(50, 2, EventKind::Commit),
            e(51, 2, EventKind::Fire { rule: 0, seq: 1 }),
            e(60, 1, EventKind::Commit),
            e(61, 1, EventKind::Fire { rule: 0, seq: 0 }),
        ];
        let rep = check(&h, &build(&h));
        assert!(
            rep.structural_errors
                .iter()
                .any(|e| e.contains("timestamps disagree")),
            "{:?}",
            rep.structural_errors
        );
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
    }
}
