//! Reconstruction of the blocking / wait-for graph from a merged
//! history.
//!
//! Every `Block { resource, mode, holder }` opens a **wait interval**
//! for its transaction; the interval closes at the next `Grant` of the
//! same resource by the same transaction (the wait succeeded) or at the
//! transaction's terminal (the wait was cut short by a doom, deadlock
//! or timeout). `Doom { by }` events add doom edges: the victim's fate
//! depends on the committer. The result is the paper-§5 "degree of
//! conflict" made concrete: who waited for whom, on what, for how long.

use std::collections::BTreeMap;

use crate::event::{AbortCause, Event, EventKind};

/// Why one transaction depended on another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// A lock request queued behind the holder.
    Wait,
    /// The waiter was chosen as a deadlock victim while queued here.
    DeadlockWait,
    /// The source doomed the target at commit time (`Rc` reader hit by
    /// a committing `Wa` writer, or engine-level revalidation doom).
    Doom,
}

/// One edge of the blocking graph: `waiter` depended on `holder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked (or doomed) transaction.
    pub waiter: u64,
    /// The transaction it waited for (`None` on old-shape histories
    /// whose `Block` events predate the holder field).
    pub holder: Option<u64>,
    /// The contended resource key (`None` for doom edges — the doom
    /// event spans the whole commit, not one resource; the attribution
    /// layer resolves it from the grant sets).
    pub resource: Option<u64>,
    /// The requested lock mode (`""` for doom edges).
    pub mode: &'static str,
    /// When the dependency started (Block / Doom timestamp, ns).
    pub start_ts: u64,
    /// When it ended (Grant or terminal timestamp, ns).
    pub end_ts: u64,
    /// What kind of dependency.
    pub kind: EdgeKind,
}

impl WaitEdge {
    /// Duration of the dependency in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ts.saturating_sub(self.start_ts)
    }
}

/// Per-transaction summary extracted alongside the edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TxnSpan {
    /// First event timestamp (Begin, ns).
    pub begin_ts: u64,
    /// Last lifecycle timestamp (terminal if present, ns).
    pub end_ts: u64,
    /// Committed?
    pub committed: bool,
    /// Terminal cause if aborted.
    pub abort_cause: Option<AbortCause>,
    /// Total nanoseconds spent blocked in lock waits.
    pub blocked_ns: u64,
    /// `(rule, seq)` from the trailing `Fire` record, if committed.
    pub fire: Option<(u32, u64)>,
    /// Commit-event timestamp (ns), if committed.
    pub commit_ts: Option<u64>,
    /// The committer that doomed this transaction, if any.
    pub doomed_by: Option<u64>,
    /// Every lock grant `(resource, mode)` observed for this txn.
    pub grants: Vec<(u64, &'static str)>,
}

impl TxnSpan {
    /// Wall-clock span of the transaction in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.end_ts.saturating_sub(self.begin_ts)
    }

    /// Span minus lock-wait time: the CPU-busy estimate used as the
    /// node weight in the critical-path analysis.
    pub fn busy_ns(&self) -> u64 {
        self.span_ns().saturating_sub(self.blocked_ns)
    }
}

/// The reconstructed blocking graph.
#[derive(Clone, Debug, Default)]
pub struct BlockingGraph {
    /// Per-transaction spans, keyed by txn id.
    pub spans: BTreeMap<u64, TxnSpan>,
    /// All wait / doom edges, in history order.
    pub edges: Vec<WaitEdge>,
}

/// An in-flight wait interval (Block seen, no Grant/terminal yet).
struct OpenWait {
    resource: u64,
    mode: &'static str,
    holder: Option<u64>,
    start_ts: u64,
    deadlock: bool,
}

/// Builds the blocking graph from a merged, timestamp-sorted history
/// (as produced by [`crate::Recorder::history`]).
pub fn build(history: &[Event]) -> BlockingGraph {
    let mut g = BlockingGraph::default();
    let mut open: BTreeMap<u64, OpenWait> = BTreeMap::new();
    for ev in history {
        let span = g.spans.entry(ev.txn).or_default();
        if span.begin_ts == 0 && matches!(ev.kind, EventKind::Begin) {
            span.begin_ts = ev.ts;
        }
        // Fire trails the terminal; chaos markers (Fault / Escalate)
        // are schedule commentary, not transaction work. Neither may
        // extend the span.
        if !matches!(
            ev.kind,
            EventKind::Fire { .. }
                | EventKind::Fault { .. }
                | EventKind::Escalate { .. }
                | EventKind::WalSync { .. }
                | EventKind::Checkpoint { .. }
                | EventKind::ElidedCommit { .. }
        ) {
            span.end_ts = span.end_ts.max(ev.ts);
        }
        match ev.kind {
            EventKind::Block {
                resource,
                mode,
                holder,
            } => {
                // A new block supersedes any stale open wait (cannot
                // happen in a well-formed history, but be lenient).
                open.insert(
                    ev.txn,
                    OpenWait {
                        resource,
                        mode,
                        holder,
                        start_ts: ev.ts,
                        deadlock: false,
                    },
                );
            }
            EventKind::Grant { resource, mode } => {
                span.grants.push((resource, mode));
                if open.get(&ev.txn).is_some_and(|w| w.resource == resource) {
                    let w = open.remove(&ev.txn).expect("just checked");
                    span.blocked_ns += ev.ts.saturating_sub(w.start_ts);
                    g.edges.push(WaitEdge {
                        waiter: ev.txn,
                        holder: w.holder,
                        resource: Some(w.resource),
                        mode: w.mode,
                        start_ts: w.start_ts,
                        end_ts: ev.ts,
                        kind: if w.deadlock { EdgeKind::DeadlockWait } else { EdgeKind::Wait },
                    });
                }
            }
            EventKind::Doom { by } => {
                span.doomed_by = Some(by);
                g.edges.push(WaitEdge {
                    waiter: ev.txn,
                    holder: Some(by),
                    resource: None,
                    mode: "",
                    start_ts: ev.ts,
                    end_ts: ev.ts,
                    kind: EdgeKind::Doom,
                });
            }
            EventKind::Deadlock => {
                if let Some(w) = open.get_mut(&ev.txn) {
                    w.deadlock = true;
                }
            }
            EventKind::Commit => {
                span.committed = true;
                span.commit_ts = Some(ev.ts);
                close_open_wait(span, &mut g.edges, &mut open, ev.txn, ev.ts);
            }
            EventKind::Abort { cause } => {
                span.abort_cause = Some(cause);
                close_open_wait(span, &mut g.edges, &mut open, ev.txn, ev.ts);
            }
            EventKind::Fire { rule, seq } => {
                span.fire = Some((rule, seq));
            }
            EventKind::Begin
            | EventKind::Anomaly { .. }
            | EventKind::Fault { .. }
            | EventKind::Escalate { .. }
            | EventKind::SnapshotPin { .. }
            | EventKind::VersionRead { .. }
            | EventKind::VersionWrite { .. }
            | EventKind::WalSync { .. }
            | EventKind::Checkpoint { .. }
            | EventKind::ElidedCommit { .. } => {}
        }
    }
    // Any wait still open at end-of-history (ring drop or hung run):
    // close it at its own start so it contributes an edge but no time.
    for (txn, w) in open {
        g.edges.push(WaitEdge {
            waiter: txn,
            holder: w.holder,
            resource: Some(w.resource),
            mode: w.mode,
            start_ts: w.start_ts,
            end_ts: w.start_ts,
            kind: if w.deadlock { EdgeKind::DeadlockWait } else { EdgeKind::Wait },
        });
    }
    g
}

/// Closes a transaction's open wait at its terminal (the wait was cut
/// short — doomed, deadlocked or timed out while queued).
fn close_open_wait(
    span: &mut TxnSpan,
    edges: &mut Vec<WaitEdge>,
    open: &mut BTreeMap<u64, OpenWait>,
    txn: u64,
    ts: u64,
) {
    if let Some(w) = open.remove(&txn) {
        span.blocked_ns += ts.saturating_sub(w.start_ts);
        edges.push(WaitEdge {
            waiter: txn,
            holder: w.holder,
            resource: Some(w.resource),
            mode: w.mode,
            start_ts: w.start_ts,
            end_ts: ts,
            kind: if w.deadlock { EdgeKind::DeadlockWait } else { EdgeKind::Wait },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ts: u64, txn: u64, kind: EventKind) -> Event {
        Event { ts, txn, kind }
    }

    #[test]
    fn wait_interval_closes_on_grant() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::Grant { resource: 4, mode: "X" }),
            e(2, 2, EventKind::Begin),
            e(3, 2, EventKind::Block { resource: 4, mode: "X", holder: Some(1) }),
            e(10, 1, EventKind::Commit),
            e(12, 2, EventKind::Grant { resource: 4, mode: "X" }),
            e(20, 2, EventKind::Commit),
        ];
        let g = build(&h);
        let waits: Vec<_> = g.edges.iter().filter(|w| w.kind == EdgeKind::Wait).collect();
        assert_eq!(waits.len(), 1);
        let w = waits[0];
        assert_eq!((w.waiter, w.holder, w.resource), (2, Some(1), Some(4)));
        assert_eq!(w.duration_ns(), 9);
        assert_eq!(g.spans[&2].blocked_ns, 9);
        assert_eq!(g.spans[&2].busy_ns(), 18 - 9, "span 2..20 minus 9ns blocked");
        assert_eq!(g.spans[&1].blocked_ns, 0);
    }

    #[test]
    fn terminal_closes_an_open_wait_and_doom_adds_an_edge() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 2, EventKind::Begin),
            e(2, 2, EventKind::Block { resource: 8, mode: "Wa", holder: Some(1) }),
            e(5, 2, EventKind::Doom { by: 1 }),
            e(6, 2, EventKind::Abort { cause: AbortCause::Doomed }),
            e(7, 1, EventKind::Commit),
        ];
        let g = build(&h);
        assert_eq!(g.spans[&2].doomed_by, Some(1));
        assert_eq!(g.spans[&2].abort_cause, Some(AbortCause::Doomed));
        assert!(!g.spans[&2].committed);
        let doom = g.edges.iter().find(|w| w.kind == EdgeKind::Doom).unwrap();
        assert_eq!((doom.waiter, doom.holder), (2, Some(1)));
        let wait = g.edges.iter().find(|w| w.kind == EdgeKind::Wait).unwrap();
        assert_eq!(wait.end_ts, 6, "wait cut short by the abort terminal");
        assert_eq!(g.spans[&2].blocked_ns, 4);
    }

    #[test]
    fn deadlock_marks_the_open_wait() {
        let h = vec![
            e(0, 3, EventKind::Begin),
            e(1, 3, EventKind::Block { resource: 2, mode: "X", holder: Some(9) }),
            e(2, 3, EventKind::Deadlock),
            e(3, 3, EventKind::Abort { cause: AbortCause::Deadlock }),
        ];
        let g = build(&h);
        let edge = g.edges.iter().find(|w| w.kind == EdgeKind::DeadlockWait).unwrap();
        assert_eq!(edge.resource, Some(2));
    }

    #[test]
    fn fire_does_not_extend_the_span() {
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(5, 1, EventKind::Commit),
            e(50, 1, EventKind::Fire { rule: 0, seq: 0 }),
        ];
        let g = build(&h);
        assert_eq!(g.spans[&1].end_ts, 5);
        assert_eq!(g.spans[&1].fire, Some((0, 0)));
        assert_eq!(g.spans[&1].commit_ts, Some(5));
    }
}
