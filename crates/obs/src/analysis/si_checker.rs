//! Polygraph-based snapshot-isolation / serializability checking over
//! recovered MVCC histories — "search for a cycle" instead of "trust
//! the protocol" (Biswas & Enea's framing).
//!
//! The MVCC engine emits three event kinds beyond the lock-era
//! lifecycle: `SnapshotPin { seq }` (the read snapshot), `VersionRead
//! { resource, seq }` (which committed version each condition read
//! observed — the `wr` reads-from raw material) and `VersionWrite
//! { resource, seq }` (which version each commit installed — the `ww`
//! version-order raw material). [`extract`] recovers one [`SiTxn`]
//! footprint per transaction from a merged history; [`check`] then
//! verifies, on the committed footprints alone:
//!
//! 1. **Snapshot-consistent reads** — every read observed the *latest*
//!    committed version at or below the reader's snapshot (version 0 is
//!    the initial working memory).
//! 2. **First-committer-wins** — no two committed transactions with
//!    overlapping `[snapshot, commit]` intervals installed versions of
//!    the same element.
//! 3. **Version order = commit order** — a transaction's installed
//!    version sequence must agree with its slot in the global commit
//!    sequence (its `Fire` record), so a swapped version order is
//!    caught even when every individual read looks plausible.
//! 4. **Serializability** — the direct serialization graph over `wr`
//!    (reads-from), `ww` (version order) and `rw` (anti-dependency)
//!    edges must be acyclic. This is the check that catches *write
//!    skew*: two snapshot transactions that each read what the other
//!    wrote produce `rw` edges in both directions — a cycle — while
//!    passing checks 1–3.
//!
//! The checker is deliberately independent of the engine: the
//! falsifiability tests hand-build [`SiTxn`] footprints (and corrupt
//! real histories) to prove it rejects bad executions rather than
//! rubber-stamping whatever the protocol produced.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

use super::checker::Verdict;

/// One transaction's MVCC footprint: what it pinned, read and wrote.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiTxn {
    /// Transaction id.
    pub txn: u64,
    /// Pinned read snapshot (a commit sequence number).
    pub snapshot: u64,
    /// Installing commit sequence, `None` if the transaction aborted
    /// (aborted footprints never enter the polygraph).
    pub commit_seq: Option<u64>,
    /// Slot recovered from the `Fire` record, if any (cross-checked
    /// against `commit_seq`: the installed version must be `fire + 1`).
    pub fire_seq: Option<u64>,
    /// Condition reads: `(resource, version sequence observed)`.
    pub reads: Vec<(u64, u64)>,
    /// Resources this transaction installed new versions of.
    pub writes: Vec<u64>,
}

/// The SI checker's findings on one history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SiReport {
    /// Committed transactions that entered the polygraph.
    pub committed: usize,
    /// Dependency edges materialised (`wr` + `ww` + `rw`).
    pub edges: usize,
    /// Snapshot-isolation violations (checks 1–3; empty on a clean
    /// history).
    pub violations: Vec<String>,
    /// A dependency cycle, as a transaction-id path, if one exists
    /// (check 4; `None` on a serializable history).
    pub cycle: Option<Vec<u64>>,
}

impl SiReport {
    /// Combined verdict: SI-clean AND serializable.
    pub fn verdict(&self) -> Verdict {
        if self.violations.is_empty() && self.cycle.is_none() {
            Verdict::Consistent
        } else {
            Verdict::Inconsistent
        }
    }
}

/// Recovers per-transaction MVCC footprints from a merged history.
/// Transactions without a `SnapshotPin` (lock-era runs, lock-manager
/// bookkeeping) are skipped, so stock histories yield an empty vector
/// and the SI layer stays silent on them.
pub fn extract(history: &[Event]) -> Vec<SiTxn> {
    let mut txns: BTreeMap<u64, SiTxn> = BTreeMap::new();
    let mut pinned: BTreeMap<u64, bool> = BTreeMap::new();
    for ev in history {
        if let EventKind::SnapshotPin { .. } = ev.kind {
            pinned.insert(ev.txn, true);
        }
    }
    for ev in history {
        if !pinned.contains_key(&ev.txn) {
            continue;
        }
        let t = txns.entry(ev.txn).or_insert_with(|| SiTxn {
            txn: ev.txn,
            ..SiTxn::default()
        });
        match ev.kind {
            EventKind::SnapshotPin { seq } => t.snapshot = seq,
            EventKind::VersionRead { resource, seq } => t.reads.push((resource, seq)),
            EventKind::VersionWrite { resource, seq } => {
                t.commit_seq = Some(seq);
                t.writes.push(resource);
            }
            EventKind::Fire { seq, .. } => t.fire_seq = Some(seq),
            _ => {}
        }
    }
    txns.into_values().collect()
}

/// Runs every SI and serializability check over a set of footprints.
pub fn check(txns: &[SiTxn]) -> SiReport {
    let mut rep = SiReport::default();
    let committed: Vec<&SiTxn> = txns.iter().filter(|t| t.commit_seq.is_some()).collect();
    rep.committed = committed.len();

    // Check 3: version order must agree with the commit order the Fire
    // records carry (version seq = fire slot + 1 by construction).
    for t in &committed {
        if let (Some(cs), Some(fs)) = (t.commit_seq, t.fire_seq) {
            if cs != fs + 1 {
                rep.violations.push(format!(
                    "txn {}: installed version seq {} disagrees with commit slot {} \
                     (expected {})",
                    t.txn,
                    cs,
                    fs,
                    fs + 1
                ));
            }
        }
    }

    // The committed version history per resource: seq -> writer txn.
    // Version 0 is the initial working memory (no writer).
    let mut versions: BTreeMap<u64, BTreeMap<u64, u64>> = BTreeMap::new();
    for t in &committed {
        let seq = t.commit_seq.unwrap();
        for &res in &t.writes {
            if let Some(prev) = versions.entry(res).or_default().insert(seq, t.txn) {
                rep.violations.push(format!(
                    "resource {res}: two transactions ({prev} and {}) installed version {seq}",
                    t.txn
                ));
            }
        }
    }

    // Check 1: every read observed the latest committed version at or
    // below the reader's snapshot.
    for t in &committed {
        for &(res, v) in &t.reads {
            let chain = versions.get(&res);
            let expected = chain
                .map(|c| {
                    c.range(..=t.snapshot)
                        .next_back()
                        .map(|(&s, _)| s)
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            if v != expected {
                rep.violations.push(format!(
                    "txn {}: read version {v} of resource {res} at snapshot {} \
                     (latest committed was {expected})",
                    t.txn, t.snapshot
                ));
            } else if v != 0 && chain.is_none_or(|c| !c.contains_key(&v)) {
                rep.violations.push(format!(
                    "txn {}: read version {v} of resource {res} which no transaction installed",
                    t.txn
                ));
            }
        }
    }

    // Check 2: first-committer-wins. Two committed writers of the same
    // element whose [snapshot, commit] intervals overlap are concurrent
    // under SI; the second to commit should have aborted.
    for (res, chain) in &versions {
        let writers: Vec<(u64, u64)> = chain.iter().map(|(&s, &t)| (s, t)).collect();
        for (i, &(s1, t1)) in writers.iter().enumerate() {
            for &(s2, t2) in &writers[i + 1..] {
                let (sn1, sn2) = (snapshot_of(&committed, t1), snapshot_of(&committed, t2));
                if sn1 < s2 && sn2 < s1 {
                    rep.violations.push(format!(
                        "resource {res}: concurrent writers {t1} (snapshot {sn1}, commit {s1}) \
                         and {t2} (snapshot {sn2}, commit {s2}) — first-committer-wins violated"
                    ));
                }
            }
        }
    }

    // Check 4: the direct serialization graph must be acyclic.
    let index: BTreeMap<u64, usize> = committed.iter().enumerate().map(|(i, t)| (t.txn, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); committed.len()];
    let edge = |adj: &mut Vec<Vec<usize>>, from: u64, to: u64, count: &mut usize| {
        if from == to {
            return;
        }
        if let (Some(&f), Some(&t)) = (index.get(&from), index.get(&to)) {
            if !adj[f].contains(&t) {
                adj[f].push(t);
                *count += 1;
            }
        }
    };
    for chain in versions.values() {
        // ww: version order.
        let writers: Vec<u64> = chain.values().copied().collect();
        for w in writers.windows(2) {
            edge(&mut adj, w[0], w[1], &mut rep.edges);
        }
    }
    for t in &committed {
        for &(res, v) in &t.reads {
            let chain = versions.get(&res);
            // wr: the version's writer happens before its reader.
            if v != 0 {
                if let Some(&writer) = chain.and_then(|c| c.get(&v)) {
                    edge(&mut adj, writer, t.txn, &mut rep.edges);
                }
            }
            // rw: the reader happens before the installer of the *next*
            // version (the anti-dependency edge; the ww chain covers
            // later versions transitively).
            if let Some((_, &next_writer)) =
                chain.and_then(|c| c.range(v + 1..).next()) {
                edge(&mut adj, t.txn, next_writer, &mut rep.edges);
            }
        }
    }
    rep.cycle = find_cycle(&adj).map(|path| {
        path.into_iter().map(|i| committed[i].txn).collect()
    });
    rep
}

/// Convenience: extract + check in one call.
pub fn check_history(history: &[Event]) -> SiReport {
    check(&extract(history))
}

fn snapshot_of(committed: &[&SiTxn], txn: u64) -> u64 {
    committed
        .iter()
        .find(|t| t.txn == txn)
        .map(|t| t.snapshot)
        .unwrap_or(0)
}

/// Iterative three-colour DFS; returns one cycle as a node path.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; adj.len()];
    let mut parent = vec![usize::MAX; adj.len()];
    for start in 0..adj.len() {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (node, next-edge-index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = Colour::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let to = adj[node][*next];
                *next += 1;
                match colour[to] {
                    Colour::White => {
                        colour[to] = Colour::Grey;
                        parent[to] = node;
                        stack.push((to, 0));
                    }
                    Colour::Grey => {
                        // Found a back edge node -> to: walk parents back
                        // to `to` for the cycle path.
                        let mut path = vec![node];
                        let mut cur = node;
                        while cur != to {
                            cur = parent[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(txn: u64, snapshot: u64, seq: u64, reads: &[(u64, u64)], writes: &[u64]) -> SiTxn {
        SiTxn {
            txn,
            snapshot,
            commit_seq: Some(seq),
            fire_seq: Some(seq - 1),
            reads: reads.to_vec(),
            writes: writes.to_vec(),
        }
    }

    #[test]
    fn serial_history_is_consistent() {
        // T1 reads x@0, writes x (seq 1); T2 at snapshot 1 reads x@1,
        // writes y (seq 2).
        let txns = vec![
            committed(1, 0, 1, &[(10, 0)], &[10]),
            committed(2, 1, 2, &[(10, 1)], &[20]),
        ];
        let rep = check(&txns);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(rep.cycle.is_none());
        assert_eq!(rep.verdict(), Verdict::Consistent);
        assert_eq!(rep.committed, 2);
    }

    #[test]
    fn write_skew_is_a_cycle() {
        // The classic: both read {x, y} at snapshot 0, T1 writes x, T2
        // writes y. SI-legal read-wise, but rw edges run both ways.
        let txns = vec![
            committed(1, 0, 1, &[(10, 0), (20, 0)], &[10]),
            committed(2, 0, 2, &[(10, 0), (20, 0)], &[20]),
        ];
        let rep = check(&txns);
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
        let cycle = rep.cycle.expect("write skew must close a cycle");
        assert!(cycle.contains(&1) && cycle.contains(&2), "{cycle:?}");
    }

    #[test]
    fn stale_read_is_a_violation() {
        // T2's snapshot (1) covers T1's write of x, but it read v0.
        let txns = vec![
            committed(1, 0, 1, &[], &[10]),
            committed(2, 1, 2, &[(10, 0)], &[20]),
        ];
        let rep = check(&txns);
        assert!(
            rep.violations.iter().any(|v| v.contains("latest committed")),
            "{:?}",
            rep.violations
        );
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
    }

    #[test]
    fn first_committer_wins_violation_is_caught() {
        // Both pinned snapshot 0 and both installed versions of x.
        let txns = vec![
            committed(1, 0, 1, &[], &[10]),
            committed(2, 0, 2, &[], &[10]),
        ];
        let rep = check(&txns);
        assert!(
            rep.violations.iter().any(|v| v.contains("first-committer-wins")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn version_order_disagreeing_with_commit_order_is_caught() {
        let mut t = committed(1, 0, 5, &[], &[10]);
        t.fire_seq = Some(1); // slot 1 should install version 2, not 5
        let rep = check(&[t]);
        assert!(
            rep.violations.iter().any(|v| v.contains("disagrees with commit slot")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn aborted_footprints_stay_out_of_the_polygraph() {
        let aborted = SiTxn {
            txn: 9,
            snapshot: 0,
            commit_seq: None,
            fire_seq: None,
            reads: vec![(10, 0)],
            writes: vec![],
        };
        let rep = check(&[aborted, committed(1, 0, 1, &[(10, 0)], &[10])]);
        assert_eq!(rep.committed, 1);
        assert_eq!(rep.verdict(), Verdict::Consistent);
    }

    #[test]
    fn extract_recovers_footprints_and_skips_lock_era_txns() {
        use crate::event::Event;
        let e = |ts, txn, kind| Event { ts, txn, kind };
        let h = vec![
            e(0, 1, EventKind::Begin),
            e(1, 1, EventKind::SnapshotPin { seq: 0 }),
            e(2, 1, EventKind::VersionRead { resource: 10, seq: 0 }),
            e(3, 1, EventKind::Commit),
            e(4, 1, EventKind::Fire { rule: 0, seq: 0 }),
            e(5, 1, EventKind::VersionWrite { resource: 10, seq: 1 }),
            // Lock-era transaction: no pin, must be skipped.
            e(6, 2, EventKind::Begin),
            e(7, 2, EventKind::Grant { resource: 10, mode: "Rc" }),
            e(8, 2, EventKind::Commit),
        ];
        let txns = extract(&h);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].txn, 1);
        assert_eq!(txns[0].commit_seq, Some(1));
        assert_eq!(txns[0].fire_seq, Some(0));
        assert_eq!(txns[0].reads, vec![(10, 0)]);
        assert_eq!(txns[0].writes, vec![10]);
        assert_eq!(check_history(&h).verdict(), Verdict::Consistent);
    }
}
