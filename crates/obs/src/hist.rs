//! Fixed-bucket latency histograms.
//!
//! Log₂ buckets over nanoseconds: bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i)` ns, bucket 0 covers exactly 0 ns. Recording is a
//! handful of relaxed atomic increments — cheap enough for the lock
//! manager's grant path — and quantiles are estimated from the bucket
//! boundaries at snapshot time (an estimate's error is bounded by one
//! octave, which is ample for the §5 speed-up analysis the paper calls
//! for: it distinguishes "microseconds of lock wait" from "milliseconds
//! of lock wait", not 5% deltas).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Number of log₂ buckets (covers 0 ns up to > 2⁶² ns ≈ 146 years).
pub const BUCKETS: usize = 64;

/// The instrumented phases of a production's lifecycle, one histogram
/// each. The taxonomy follows Figures 4.1/4.2: condition evaluation
/// under `Rc`/`S` locks, RHS execution, action locks, atomic commit —
/// plus the lock-manager-level wait time that §5's speed-up factor
/// analysis needs broken out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Time a `lock()` request spent blocked before grant (or failure).
    LockWait,
    /// Claim → condition locks → re-validation (LHS evaluation span).
    LhsEval,
    /// RHS execution + action-lock acquisition (the transaction body).
    RhsAct,
    /// The commit critical section (lock-manager commit + WM apply).
    Commit,
    /// Applying a published WM delta batch to one match shard's Rete
    /// (the sharded pipeline's per-shard `catch_up` work — both the
    /// committer's fan-out and stolen catch-up applies land here).
    MatchApply,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 5] = [
        Phase::LockWait,
        Phase::LhsEval,
        Phase::RhsAct,
        Phase::Commit,
        Phase::MatchApply,
    ];

    /// Stable machine-readable name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::LockWait => "lock_wait",
            Phase::LhsEval => "lhs_eval",
            Phase::RhsAct => "rhs_act",
            Phase::Commit => "commit",
            Phase::MatchApply => "match_apply",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::LockWait => 0,
            Phase::LhsEval => 1,
            Phase::RhsAct => 2,
            Phase::Commit => 3,
            Phase::MatchApply => 4,
        }
    }
}

/// A concurrent log₂ histogram of nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a nanosecond value (clamped into the top bucket).
fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i).wrapping_sub(1).max(1)
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_of(ns)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(ns, Relaxed);
        self.max.fetch_max(ns, Relaxed);
    }

    /// An immutable snapshot for reporting.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (log₂ buckets; see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded nanoseconds.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl HistSnapshot {
    /// Estimated `q`-quantile in nanoseconds (`q` in `[0, 1]`): the
    /// upper bound of the first bucket at which the cumulative count
    /// reaches `ceil(q * count)`, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (ns).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (ns).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (ns).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Render nanoseconds human-readably.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl fmt::Display for HistSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:<7} p50={:<9} p95={:<9} p99={:<9} max={:<9} mean={}",
            self.count,
            fmt_ns(self.p50()),
            fmt_ns(self.p95()),
            fmt_ns(self.p99()),
            fmt_ns(self.max),
            fmt_ns(self.mean()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1, "clamped to top bucket");
    }

    #[test]
    fn extreme_value_stays_in_range() {
        // u64::MAX has 64 significant bits; ensure record() cannot panic.
        let h = Histogram::default();
        h.record(Duration::from_secs(u64::MAX / 2_000_000_000));
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = Histogram::default();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(Duration::from_nanos(ns));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 100_000);
        // p50 falls in the bucket of 200–400: upper bound ≤ 511.
        assert!(s.p50() >= 200 && s.p50() <= 511, "p50={}", s.p50());
        // p99 lands in the top bucket, clamped to max.
        assert_eq!(s.p99(), 100_000);
        assert_eq!(s.mean(), (100 + 200 + 400 + 800 + 100_000) / 5);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.p50(), s.p99(), s.max, s.mean()), (0, 0, 0, 0, 0));
    }

    #[test]
    fn zero_duration_goes_to_bucket_zero() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["lock_wait", "lhs_eval", "rhs_act", "commit", "match_apply"]
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
