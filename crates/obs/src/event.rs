//! Transaction lifecycle events and the per-worker event ring.
//!
//! Events are the raw material for any consistency or performance
//! analysis of a transactional history (Biswas & Enea's framing): each
//! records *which* transaction did *what*, *when* — with timestamps in
//! nanoseconds from a common per-[`crate::Recorder`] epoch, so merged
//! histories are totally orderable.
//!
//! The crate sits below `dps-lock` and `dps-core` in the dependency
//! order, so events speak in plain integers: `txn` is the numeric
//! transaction id and `resource` an opaque resource key (the lock layer
//! encodes tuple/relation ids into it; see its docs).

/// Why a transaction aborted. The union of lock-manager causes
/// (doomed-by-writer, deadlock, timeout) and engine causes (stale
/// claim, failed revalidation, RHS evaluation error) — the paper's §5
/// wasted-work factor `f` decomposed by origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Doomed by a committing `Wa` holder (Figure 4.3(b)).
    Doomed,
    /// Chosen as a deadlock victim.
    Deadlock,
    /// Claim invalidated before/while acquiring condition locks.
    Stale,
    /// Engine-level revalidation failed (policy `Revalidate`).
    Revalidation,
    /// The RHS failed to evaluate (e.g. division by zero).
    EvalError,
    /// A lock wait exceeded the configured timeout.
    Timeout,
    /// Forced abort injected by the chaos fault injector (never occurs
    /// in production runs; kept separate so injected failures cannot
    /// masquerade as — or pollute the statistics of — organic causes).
    Injected,
    /// MVCC commit-time self-validation failed: the snapshot the claim
    /// was pinned against is no longer current and the instantiation
    /// has left the conflict set. Distinct from [`AbortCause::Stale`]
    /// (pre-execution claim invalidation) and from the legacy
    /// reader-abort causes ([`AbortCause::Doomed`] /
    /// [`AbortCause::Revalidation`]) so stock-vs-MVCC comparisons
    /// cannot silently fold one into the other.
    SnapshotStale,
    /// Elided-commit revalidation failed: a lock-skipping firing of a
    /// provably-commutative rule found one of its matched tuples
    /// changed between claim and commit. Structurally the same check
    /// as [`AbortCause::SnapshotStale`], but kept distinct so the
    /// coordination-avoidance fast path's (rare) retries cannot be
    /// mistaken for MVCC validation failures in A/B comparisons.
    ElisionStale,
}

impl AbortCause {
    /// Every cause, in display order.
    pub const ALL: [AbortCause; 9] = [
        AbortCause::Doomed,
        AbortCause::Deadlock,
        AbortCause::Stale,
        AbortCause::Revalidation,
        AbortCause::EvalError,
        AbortCause::Timeout,
        AbortCause::Injected,
        AbortCause::SnapshotStale,
        AbortCause::ElisionStale,
    ];

    /// Stable machine-readable name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::Doomed => "doomed",
            AbortCause::Deadlock => "deadlock",
            AbortCause::Stale => "stale",
            AbortCause::Revalidation => "revalidation",
            AbortCause::EvalError => "eval_error",
            AbortCause::Timeout => "timeout",
            AbortCause::Injected => "injected",
            AbortCause::SnapshotStale => "snapshot_stale",
            AbortCause::ElisionStale => "elision_stale",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            AbortCause::Doomed => 0,
            AbortCause::Deadlock => 1,
            AbortCause::Stale => 2,
            AbortCause::Revalidation => 3,
            AbortCause::EvalError => 4,
            AbortCause::Timeout => 5,
            AbortCause::Injected => 6,
            AbortCause::SnapshotStale => 7,
            AbortCause::ElisionStale => 8,
        }
    }
}

/// What happened.
///
/// Emission responsibilities (documented here because the history
/// well-formedness check in [`crate::validate_history`] depends on
/// them): the **lock manager** emits `Begin`, `Grant`, `Block`, `Doom`,
/// `Deadlock` and `Commit`; the **engine** emits the single
/// `Abort { cause }` terminal for every transaction that does not
/// commit (it is the only layer that knows the full cause taxonomy),
/// one `Fire { rule, seq }` per *committed* transaction naming its
/// slot in the global commit sequence, plus `Anomaly` markers for
/// accounting races that should never happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Transaction began.
    Begin,
    /// A lock was granted.
    Grant {
        /// Opaque resource key (see module docs).
        resource: u64,
        /// Lock-mode name (`"Rc"`, `"Wa"`, `"S"`, …).
        mode: &'static str,
    },
    /// A lock request blocked (first time only per request).
    Block {
        /// Opaque resource key.
        resource: u64,
        /// Lock-mode name.
        mode: &'static str,
        /// The transaction currently holding (or queued ahead on) the
        /// resource that caused the block — the *wait-for edge target*
        /// the analysis layer reconstructs blocking graphs from.
        /// `None` when the lock manager could not name one (shouldn't
        /// happen, but old histories predate the field).
        holder: Option<u64>,
    },
    /// Doomed by a committing writer.
    Doom {
        /// The committing writer's transaction id.
        by: u64,
    },
    /// Doomed as a deadlock victim.
    Deadlock,
    /// Transaction committed (terminal).
    Commit,
    /// The committed firing's place in the global commit sequence:
    /// `seq` is the 0-based position in the engine's trace and `rule`
    /// an interned rule-name id (see [`crate::Recorder::intern_rule`]).
    /// Emitted by the engine immediately after the commit critical
    /// section, so it may trail the `Commit` terminal — the semantic
    /// checker (§3 Theorem 2) pairs them back up.
    Fire {
        /// Interned rule-name id.
        rule: u32,
        /// 0-based position in the global commit sequence.
        seq: u64,
    },
    /// Transaction aborted (terminal), with its cause.
    Abort {
        /// Why.
        cause: AbortCause,
    },
    /// An accounting anomaly (e.g. an abort call that failed with
    /// something other than the benign auto-abort race).
    Anomaly {
        /// Short static description.
        what: &'static str,
    },
    /// A chaos-layer fault was injected at this point (grant delay,
    /// spurious wakeup, forced abort, RHS stall, …). First-class so
    /// the attribution table can explain *why* a chaos run degraded;
    /// never emitted outside fault-injected runs.
    Fault {
        /// Short static fault-kind name (one of
        /// [`crate::event::FAULT_KINDS`]).
        kind: &'static str,
    },
    /// The adaptive governor changed a resource's degradation state
    /// (escalate to pessimistic locking, serialize, de-escalate).
    /// `txn` is the transaction whose outcome triggered the decision.
    Escalate {
        /// Opaque resource key (see module docs).
        resource: u64,
        /// Short static action name (one of
        /// [`crate::event::ESCALATE_ACTIONS`]).
        action: &'static str,
    },
    /// MVCC: the transaction pinned its read snapshot at this commit
    /// sequence number. All of its condition reads observe the
    /// versioned working memory `as_of(seq)`; no `Rc` locks are taken.
    SnapshotPin {
        /// The pinned commit sequence number.
        seq: u64,
    },
    /// MVCC: a condition read of one versioned element. `seq` is the
    /// commit sequence that *created* the version observed — the
    /// reads-from edge (`wr`) raw material for the SI/serializability
    /// polygraph checker.
    VersionRead {
        /// Opaque resource key (see module docs).
        resource: u64,
        /// Commit sequence of the version read (0 = initial WM).
        seq: u64,
    },
    /// MVCC: the committed transaction installed a new version of this
    /// element. `seq` is the installing commit sequence (equal to the
    /// transaction's `Fire` seq + 1; the version-order / `ww` raw
    /// material). Like `Fire`, it trails the `Commit` terminal because
    /// the sequence number only exists after the commit critical
    /// section.
    VersionWrite {
        /// Opaque resource key (see module docs).
        resource: u64,
        /// Installing commit sequence.
        seq: u64,
    },
    /// Durability: the WAL group-commit fsync that made this
    /// transaction's commit durable completed; `seq` is the durable
    /// horizon the flush published. Emitted after the commit critical
    /// section, so it trails the `Commit` terminal like `Fire` does.
    WalSync {
        /// Durable horizon (highest commit seq covered by the fsync).
        seq: u64,
    },
    /// Durability: a checkpoint snapshot was installed at this commit
    /// sequence number (log segments before it become prunable). Also
    /// trails the emitting transaction's terminal.
    Checkpoint {
        /// The checkpointed commit sequence number.
        seq: u64,
    },
    /// Coordination avoidance: this transaction committed through the
    /// lock-elision fast path — zero `R_a`/`W_a` lock-manager traffic,
    /// validated instead by the commit-time tuple-timestamp check.
    /// `resources` counts the lock acquisitions that were skipped.
    /// Emitted after the commit critical section, so like `Fire` it may
    /// trail the `Commit` terminal.
    ElidedCommit {
        /// Number of lock acquisitions the fast path skipped.
        resources: u32,
    },
}

/// Closed vocabulary of [`EventKind::Fault`] kinds — the JSON
/// round-trip interns against this table, so fault names survive the
/// `&'static str` representation.
pub const FAULT_KINDS: [&str; 11] = [
    "grant_delay",
    "spurious_wakeup",
    "forced_abort",
    "rhs_stall",
    "timeout_storm",
    "timeout_race_stall",
    "wal_kill",
    "drop_mid_claim",
    "drop_mid_rhs",
    "slowloris",
    "rhs_panic",
];

/// Closed vocabulary of [`EventKind::Escalate`] actions (the governor's
/// degradation state machine): `escalate` = optimistic → pessimistic
/// lock modes for the resource, `serialize` = route through the global
/// serial fallback, `deescalate` = back to optimistic.
pub const ESCALATE_ACTIONS: [&str; 3] = ["escalate", "serialize", "deescalate"];

impl EventKind {
    /// `true` for the two terminal kinds (`Commit` / `Abort`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, EventKind::Commit | EventKind::Abort { .. })
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder's epoch (monotonic).
    pub ts: u64,
    /// Numeric transaction id.
    pub txn: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A bounded circular buffer of events. One per worker slot; when full
/// it overwrites the oldest entry and the recorder counts the drop, so
/// recording can never block or grow without bound.
#[derive(Debug)]
pub(crate) struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest element (only meaningful once wrapped).
    head: usize,
    /// Total pushes ever (≥ `buf.len()`); `pushes - capacity` of them
    /// were dropped once wrapped.
    pushes: u64,
}

impl Ring {
    pub fn new(capacity: usize) -> Self {
        Ring {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            pushes: 0,
        }
    }

    /// Pushes an event; returns `true` if an old event was overwritten.
    pub fn push(&mut self, ev: Event) -> bool {
        self.pushes += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            true
        }
    }

    /// Events in arrival order.
    pub fn iter_ordered(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event {
            ts,
            txn: ts,
            kind: EventKind::Begin,
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut r = Ring::new(3);
        for t in 0..5 {
            let dropped = r.push(ev(t));
            assert_eq!(dropped, t >= 3);
        }
        let got: Vec<u64> = r.iter_ordered().map(|e| e.ts).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushes, 5);
    }

    #[test]
    fn ring_below_capacity_preserves_everything() {
        let mut r = Ring::new(8);
        for t in 0..4 {
            assert!(!r.push(ev(t)));
        }
        let got: Vec<u64> = r.iter_ordered().map(|e| e.ts).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn terminal_kinds() {
        assert!(EventKind::Commit.is_terminal());
        assert!(EventKind::Abort {
            cause: AbortCause::Stale
        }
        .is_terminal());
        assert!(!EventKind::Begin.is_terminal());
        assert!(!EventKind::Anomaly { what: "x" }.is_terminal());
        assert!(!EventKind::Fire { rule: 0, seq: 0 }.is_terminal());
        assert!(!EventKind::Block {
            resource: 1,
            mode: "S",
            holder: Some(7)
        }
        .is_terminal());
    }

    #[test]
    fn cause_names_align_with_all() {
        for (i, c) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }
}
