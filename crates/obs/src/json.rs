//! A minimal JSON value, serializer and parser.
//!
//! The workspace is dependency-free (no `serde`), but the observability
//! layer must emit machine-readable reports and CI must shape-check
//! them. This module provides exactly that: a [`Json`] tree with a
//! `Display` serializer (stable key order — objects are ordered vectors,
//! not maps) and a small recursive-descent [`parse`] used by the report
//! validators. Numbers are `f64` (every counter we export fits in the
//! 2⁵³ exact-integer range).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for integer counters.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Convenience constructor for `u64` counters (lossless below 2⁵³).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `at(&["a", "b"])` ≡ `get("a")?.get("b")`.
    pub fn at(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_value(out: &mut String, v: &Json, indent: usize, pretty: bool) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            if !items.is_empty() {
                pad(out, indent);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                out.push('"');
                escape_into(out, k);
                out.push_str("\":");
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            if !members.is_empty() {
                pad(out, indent);
            }
            out.push('}');
        }
    }
}

impl Json {
    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        out
    }

    /// Two-space-indented serialization.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0, true);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

/// Parses a JSON document. Returns a descriptive error on malformed
/// input (byte offset included).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not needed for our reports;
                        // map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("bad UTF-8")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("schema".into(), Json::str("v1")),
            ("n".into(), Json::u64(42)),
            ("pi".into(), Json::Num(1.5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::u64(1), Json::str("two"), Json::Obj(vec![])]),
            ),
        ]);
        for s in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&s).unwrap(), v, "roundtrip failed for: {s}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Obj(vec![(
            "k\"ey\\".into(),
            Json::str("line1\nline2\ttab \"quoted\" \u{1}"),
        )]);
        let s = v.to_string_compact();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::str("µs → naïve 漢");
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(parse(r#""µs""#).unwrap(), Json::str("µs"));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-3.5").unwrap().as_f64(), Some(-3.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("2.5").unwrap().as_u64(), None, "non-integer");
    }

    #[test]
    fn lookup_helpers() {
        let v = parse(r#"{"a": {"b": [1, 2, 3]}}"#).unwrap();
        assert_eq!(
            v.at(&["a", "b"]).and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(v.get("missing").is_none());
        assert!(v.at(&["a", "missing"]).is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::u64(7).to_string_compact(), "7");
        assert_eq!(Json::Num(7.25).to_string_compact(), "7.25");
    }
}
