//! Live telemetry: a time-series metrics registry with a background
//! sampler.
//!
//! Every other surface in `dps-obs` is post-hoc — event rings and
//! histograms are merged and summarised only after `run()` drains, so a
//! doom storm that resolves mid-run and a steady 10% degradation
//! produce the same end-of-run aggregates. This module adds the time
//! axis:
//!
//! * **Probes** — `'static` closures over the atomics the engine, lock
//!   manager, match pipeline, WAL and governor already maintain.
//!   Registering a probe costs the hot path *nothing*: the sampler
//!   reads the same counters the end-of-run reports read, which is
//!   also why tick-integrated totals reconcile *exactly* with the
//!   event-ring aggregates (they are literally the same cells).
//! * **[`TickHist`]** — a per-tick log₂ latency histogram for sites
//!   that need a distribution per tick (lock-wait p50/p99), drained
//!   with `swap(0)` each sample so ticks never double-count.
//! * **[`Telemetry`]** — the registry plus a background sampler thread
//!   ([`Telemetry::start`] / [`Telemetry::stop`]) appending one sample
//!   per series per tick into fixed-capacity ring buffers. `stop`
//!   takes one forced final sample after joining, so the last sample
//!   of every cumulative counter equals the run total.
//! * **[`TimelineDoc`]** — the `dps-timeline-v1` JSON shape embedded
//!   in every bench report, with a parser ([`TimelineDoc::from_json`])
//!   and a structural validator ([`TimelineDoc::validate`]) shared by
//!   `obs_check` and the round-trip property tests.
//!
//! **Lock-order note:** sampling never takes an engine lock. The only
//! mutex the sampler thread acquires is the registry's own series
//! mutex; every probe reads relaxed atomics (mirrors are maintained at
//! the engine's own mutation sites for state that lives behind a
//! mutex, e.g. the governor's escalation sets). A probe that locked an
//! engine mutex could deadlock against a worker holding that mutex
//! while blocking on something the sampler pins — so the contract is:
//! probes are lock-free reads, full stop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Json;

/// Schema tag of the embedded timeline document.
pub const TIMELINE_SCHEMA: &str = "dps-timeline-v1";

/// Log₂ buckets of a [`TickHist`] (same octave layout as
/// [`crate::hist::Histogram`]).
const TICK_BUCKETS: usize = 64;

/// Sampler configuration.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Sampling period of the background ticker.
    pub tick: Duration,
    /// Ring capacity per series: the newest `capacity` samples are
    /// kept, older ones are dropped (counted in
    /// [`TimelineDoc::dropped`]).
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            tick: Duration::from_millis(10),
            capacity: 8192,
        }
    }
}

/// What a series' samples mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Cumulative, non-decreasing (rates are first differences; the
    /// final sample is the run total).
    Counter,
    /// Point-in-time level (depths, lags, occupancy, per-tick stats).
    Gauge,
}

impl SeriesKind {
    /// Stable machine-readable name (the JSON `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }

    /// Inverse of [`SeriesKind::name`].
    pub fn parse(s: &str) -> Option<SeriesKind> {
        match s {
            "counter" => Some(SeriesKind::Counter),
            "gauge" => Some(SeriesKind::Gauge),
            _ => None,
        }
    }
}

/// A concurrent per-tick log₂ histogram. Recording is two relaxed
/// atomic ops (cheap enough for the lock manager's wait path); the
/// sampler drains it with `swap(0)` each tick, expanding into
/// `count` / `p50_ns` / `p99_ns` / `max_ns` gauge sub-series.
#[derive(Debug)]
pub struct TickHist {
    buckets: [AtomicU64; TICK_BUCKETS],
    max: AtomicU64,
}

impl Default for TickHist {
    fn default() -> Self {
        TickHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }
}

/// Per-tick statistics drained from a [`TickHist`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Samples recorded this tick.
    pub count: u64,
    /// Estimated median (ns; octave-bounded like the phase histograms).
    pub p50_ns: u64,
    /// Estimated 99th percentile (ns).
    pub p99_ns: u64,
    /// Largest sample this tick (exact).
    pub max_ns: u64,
}

impl TickHist {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = ((u64::BITS - ns.leading_zeros()) as usize).min(TICK_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Relaxed);
        self.max.fetch_max(ns, Relaxed);
    }

    /// Drains everything recorded since the last drain into one tick's
    /// statistics. Concurrent `record`s land in this tick or the next,
    /// never both.
    pub fn drain(&self) -> TickStats {
        let counts: [u64; TICK_BUCKETS] = std::array::from_fn(|i| self.buckets[i].swap(0, Relaxed));
        let max_ns = self.max.swap(0, Relaxed);
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return TickStats::default();
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    let upper = if i == 0 { 0 } else { (1u64 << i).wrapping_sub(1).max(1) };
                    return upper.min(max_ns);
                }
            }
            max_ns
        };
        TickStats {
            count,
            p50_ns: quantile(0.50),
            p99_ns: quantile(0.99),
            max_ns,
        }
    }
}

type Probe = Box<dyn Fn() -> u64 + Send + Sync>;

enum Source {
    /// One probe feeding one series.
    Probe { series: usize, read: Probe },
    /// A per-tick histogram feeding four gauge sub-series
    /// (`count` / `p50_ns` / `p99_ns` / `max_ns`, consecutive from
    /// `series`).
    Hist { series: usize, hist: Arc<TickHist> },
}

struct SeriesBuf {
    name: String,
    kind: SeriesKind,
    samples: Vec<u64>,
}

#[derive(Default)]
struct Registry {
    sources: Vec<Source>,
    series: Vec<SeriesBuf>,
}

impl Registry {
    fn push_series(&mut self, name: String, kind: SeriesKind) -> usize {
        self.series.push(SeriesBuf {
            name,
            kind,
            samples: Vec::new(),
        });
        self.series.len() - 1
    }
}

/// The metrics registry + background sampler. Share as
/// `Option<Arc<Telemetry>>` — the same zero-cost seam as `observe`
/// (off ⇒ one branch on a `None`; on ⇒ the hot path still pays
/// nothing, only the sampler thread works).
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Mutex<Registry>,
    ticks: AtomicU64,
    dropped: AtomicU64,
    stop: AtomicBool,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("config", &self.config)
            .field("ticks", &self.ticks.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// An empty registry with the given sampler configuration.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            registry: Mutex::new(Registry::default()),
            ticks: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            handle: Mutex::new(None),
        }
    }

    /// The sampler configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Registers a cumulative counter series. `read` must be a
    /// lock-free read (a relaxed atomic load, or a few of them).
    pub fn counter(&self, name: impl Into<String>, read: impl Fn() -> u64 + Send + Sync + 'static) {
        self.probe(name.into(), SeriesKind::Counter, Box::new(read));
    }

    /// Registers a point-in-time gauge series. Same lock-free contract
    /// as [`Telemetry::counter`].
    pub fn gauge(&self, name: impl Into<String>, read: impl Fn() -> u64 + Send + Sync + 'static) {
        self.probe(name.into(), SeriesKind::Gauge, Box::new(read));
    }

    fn probe(&self, name: String, kind: SeriesKind, read: Probe) {
        let mut reg = self.registry.lock().unwrap();
        let series = reg.push_series(name, kind);
        reg.sources.push(Source::Probe { series, read });
    }

    /// Registers a per-tick histogram, expanded into four gauge
    /// sub-series: `<name>.count`, `<name>.p50_ns`, `<name>.p99_ns`,
    /// `<name>.max_ns`.
    pub fn hist(&self, name: &str, hist: Arc<TickHist>) {
        let mut reg = self.registry.lock().unwrap();
        let series = reg.push_series(format!("{name}.count"), SeriesKind::Gauge);
        for sub in ["p50_ns", "p99_ns", "max_ns"] {
            reg.push_series(format!("{name}.{sub}"), SeriesKind::Gauge);
        }
        reg.sources.push(Source::Hist { series, hist });
    }

    /// Takes one sample of every source. Called by the ticker thread;
    /// also safe to call directly (single-tick tests, forced final
    /// sample).
    pub fn sample(&self) {
        let mut reg = self.registry.lock().unwrap();
        let cap = self.config.capacity.max(1);
        let reg = &mut *reg;
        let mut dropped = 0u64;
        let mut push = |series: &mut Vec<SeriesBuf>, idx: usize, v: u64| {
            let buf = &mut series[idx].samples;
            if buf.len() >= cap {
                buf.remove(0);
                dropped += 1;
            }
            buf.push(v);
        };
        for source in &reg.sources {
            match source {
                Source::Probe { series, read, .. } => {
                    push(&mut reg.series, *series, read());
                }
                Source::Hist { series, hist } => {
                    let s = hist.drain();
                    push(&mut reg.series, *series, s.count);
                    push(&mut reg.series, series + 1, s.p50_ns);
                    push(&mut reg.series, series + 2, s.p99_ns);
                    push(&mut reg.series, series + 3, s.max_ns);
                }
            }
        }
        self.dropped.fetch_add(dropped, Relaxed);
        self.ticks.fetch_add(1, Relaxed);
    }

    /// Starts the background ticker. Registrations after `start` still
    /// work (their series simply begin short).
    pub fn start(self: &Arc<Self>) {
        let mut handle = self.handle.lock().unwrap();
        if handle.is_some() {
            return;
        }
        self.stop.store(false, Relaxed);
        let tel = Arc::clone(self);
        *handle = Some(std::thread::spawn(move || {
            while !tel.stop.load(Relaxed) {
                std::thread::park_timeout(tel.config.tick);
                if tel.stop.load(Relaxed) {
                    break;
                }
                tel.sample();
            }
        }));
    }

    /// Stops the ticker and takes one forced final sample, so the last
    /// sample of every counter series equals the value at the moment of
    /// `stop` — the reconciliation anchor the cross-validation tests
    /// (and `obs_check`) rely on.
    pub fn stop(&self) {
        let handle = self.handle.lock().unwrap().take();
        if let Some(h) = handle {
            self.stop.store(true, Relaxed);
            h.thread().unpark();
            let _ = h.join();
        }
        self.sample();
    }

    /// Ticks sampled so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Relaxed)
    }

    /// Snapshot of the whole registry as a [`TimelineDoc`].
    pub fn doc(&self) -> TimelineDoc {
        let reg = self.registry.lock().unwrap();
        TimelineDoc {
            tick_ns: self.config.tick.as_nanos().min(u128::from(u64::MAX)) as u64,
            ticks: self.ticks.load(Relaxed),
            dropped: self.dropped.load(Relaxed),
            series: reg
                .series
                .iter()
                .map(|s| Series {
                    name: s.name.clone(),
                    kind: s.kind,
                    samples: s.samples.clone(),
                })
                .collect(),
        }
    }
}

/// One time series of a [`TimelineDoc`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Series {
    /// Dotted metric name (e.g. `engine.commits`, `lock.wait.p99_ns`).
    pub name: String,
    /// Counter (cumulative) or gauge (level).
    pub kind: SeriesKind,
    /// One value per retained tick, oldest first.
    pub samples: Vec<u64>,
}

/// The `dps-timeline-v1` document: everything the sampler captured,
/// embedded under the `"timeline"` key of the bench reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineDoc {
    /// Sampling period, nanoseconds.
    pub tick_ns: u64,
    /// Total ticks sampled (≥ retained samples when rings overflowed).
    pub ticks: u64,
    /// Samples dropped to ring capacity, summed over all series.
    pub dropped: u64,
    /// The series, in registration order.
    pub series: Vec<Series>,
}

impl TimelineDoc {
    /// The JSON shape (`dps-timeline-v1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(TIMELINE_SCHEMA)),
            ("tick_ns".into(), Json::u64(self.tick_ns)),
            ("ticks".into(), Json::u64(self.ticks)),
            ("dropped".into(), Json::u64(self.dropped)),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(s.name.clone())),
                                ("kind".into(), Json::str(s.kind.name())),
                                (
                                    "samples".into(),
                                    Json::Arr(s.samples.iter().map(|&v| Json::u64(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a `dps-timeline-v1` document (inverse of
    /// [`TimelineDoc::to_json`]).
    pub fn from_json(v: &Json) -> Result<TimelineDoc, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("timeline: missing schema")?;
        if schema != TIMELINE_SCHEMA {
            return Err(format!("timeline: unknown schema '{schema}'"));
        }
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("timeline: missing integer '{k}'"))
        };
        let mut series = Vec::new();
        for (i, s) in v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or("timeline: missing series array")?
            .iter()
            .enumerate()
        {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("timeline: series {i} missing name"))?
                .to_owned();
            let kind = s
                .get("kind")
                .and_then(Json::as_str)
                .and_then(SeriesKind::parse)
                .ok_or(format!("timeline: series '{name}' has a bad kind"))?;
            let samples = s
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or(format!("timeline: series '{name}' missing samples"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or(format!("timeline: series '{name}' has a non-integer sample"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            series.push(Series { name, kind, samples });
        }
        Ok(TimelineDoc {
            tick_ns: field("tick_ns")?,
            ticks: field("ticks")?,
            dropped: field("dropped")?,
            series,
        })
    }

    /// Structural validity: positive tick, no series longer than the
    /// tick count, counter series non-decreasing, unique names. This is
    /// what `obs_check` runs against every embedded timeline.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick_ns == 0 {
            return Err("timeline: tick_ns must be positive".into());
        }
        let mut seen = std::collections::HashSet::new();
        for s in &self.series {
            if !seen.insert(s.name.as_str()) {
                return Err(format!("timeline: duplicate series '{}'", s.name));
            }
            if (s.samples.len() as u64) > self.ticks {
                return Err(format!(
                    "timeline: series '{}' has {} samples over {} ticks",
                    s.name,
                    s.samples.len(),
                    self.ticks
                ));
            }
            if s.kind == SeriesKind::Counter {
                if let Some(w) = s.samples.windows(2).find(|w| w[1] < w[0]) {
                    return Err(format!(
                        "timeline: counter '{}' decreases ({} -> {})",
                        s.name, w[0], w[1]
                    ));
                }
            }
        }
        Ok(())
    }

    /// The named series, if present.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The last sample of the named series (the run total for a
    /// counter).
    pub fn last(&self, name: &str) -> Option<u64> {
        self.series(name).and_then(|s| s.samples.last().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn counter_series_accumulate_and_reconcile() {
        let tel = Telemetry::new(TelemetryConfig::default());
        let cell = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&cell);
        tel.counter("c", move || c.load(Relaxed));
        for i in 1..=5u64 {
            cell.store(i * 10, Relaxed);
            tel.sample();
        }
        let doc = tel.doc();
        assert_eq!(doc.ticks, 5);
        assert_eq!(doc.series("c").unwrap().samples, vec![10, 20, 30, 40, 50]);
        assert_eq!(doc.last("c"), Some(cell.load(Relaxed)));
        doc.validate().unwrap();
    }

    #[test]
    fn ring_capacity_drops_oldest() {
        let tel = Telemetry::new(TelemetryConfig {
            tick: Duration::from_millis(1),
            capacity: 3,
        });
        let cell = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&cell);
        tel.gauge("g", move || c.load(Relaxed));
        for i in 0..10u64 {
            cell.store(i, Relaxed);
            tel.sample();
        }
        let doc = tel.doc();
        assert_eq!(doc.series("g").unwrap().samples, vec![7, 8, 9]);
        assert_eq!(doc.ticks, 10);
        assert_eq!(doc.dropped, 7);
        doc.validate().unwrap();
    }

    #[test]
    fn tick_hist_drains_per_tick() {
        let h = TickHist::default();
        for ns in [100u64, 200, 400, 100_000] {
            h.record(Duration::from_nanos(ns));
        }
        let t = h.drain();
        assert_eq!(t.count, 4);
        assert!(t.p50_ns >= 200 && t.p50_ns <= 511, "p50={}", t.p50_ns);
        assert_eq!(t.p99_ns, 100_000, "top bucket clamps to the exact max");
        assert_eq!(t.max_ns, 100_000);
        // Drained: the next tick starts from zero.
        assert_eq!(h.drain(), TickStats::default());
    }

    #[test]
    fn hist_source_expands_to_four_series() {
        let tel = Telemetry::new(TelemetryConfig::default());
        let h = Arc::new(TickHist::default());
        tel.hist("lock.wait", Arc::clone(&h));
        h.record(Duration::from_nanos(1000));
        tel.sample();
        tel.sample(); // an empty tick
        let doc = tel.doc();
        assert_eq!(doc.series("lock.wait.count").unwrap().samples, vec![1, 0]);
        assert_eq!(doc.series("lock.wait.max_ns").unwrap().samples[0], 1000);
        assert_eq!(doc.series("lock.wait.p99_ns").unwrap().samples[1], 0);
        doc.validate().unwrap();
    }

    #[test]
    fn background_sampler_runs_and_stops() {
        let tel = Arc::new(Telemetry::new(TelemetryConfig {
            tick: Duration::from_millis(1),
            capacity: 64,
        }));
        let cell = Arc::new(AtomicU64::new(7));
        let c = Arc::clone(&cell);
        tel.counter("c", move || c.load(Relaxed));
        tel.start();
        std::thread::sleep(Duration::from_millis(20));
        cell.store(99, Relaxed);
        tel.stop();
        let doc = tel.doc();
        assert!(doc.ticks >= 1, "sampler ticked");
        // The forced final sample anchors the counter at its total.
        assert_eq!(doc.last("c"), Some(99));
        // Idempotent: a second stop only adds another (identical) sample.
        tel.stop();
        assert_eq!(tel.doc().last("c"), Some(99));
    }

    #[test]
    fn json_roundtrip_preserves_the_doc() {
        let doc = TimelineDoc {
            tick_ns: 10_000_000,
            ticks: 3,
            dropped: 0,
            series: vec![
                Series {
                    name: "engine.commits".into(),
                    kind: SeriesKind::Counter,
                    samples: vec![0, 5, 9],
                },
                Series {
                    name: "pipeline.log_depth".into(),
                    kind: SeriesKind::Gauge,
                    samples: vec![3, 1, 0],
                },
            ],
        };
        let text = doc.to_json().to_string_pretty();
        let back = TimelineDoc::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
        back.validate().unwrap();
    }

    #[test]
    fn validate_rejects_corrupted_docs() {
        let good = TimelineDoc {
            tick_ns: 1,
            ticks: 2,
            dropped: 0,
            series: vec![Series {
                name: "c".into(),
                kind: SeriesKind::Counter,
                samples: vec![1, 2],
            }],
        };
        good.validate().unwrap();
        let mut decreasing = good.clone();
        decreasing.series[0].samples = vec![2, 1];
        assert!(decreasing.validate().is_err(), "decreasing counter");
        let mut overlong = good.clone();
        overlong.series[0].samples = vec![1, 2, 3];
        assert!(overlong.validate().is_err(), "more samples than ticks");
        let mut dup = good.clone();
        dup.series.push(dup.series[0].clone());
        assert!(dup.validate().is_err(), "duplicate name");
        let mut zero_tick = good;
        zero_tick.tick_ns = 0;
        assert!(zero_tick.validate().is_err(), "zero tick");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shapes() {
        for bad in [
            r#"{"schema":"dps-timeline-v2","tick_ns":1,"ticks":0,"dropped":0,"series":[]}"#,
            r#"{"tick_ns":1,"ticks":0,"dropped":0,"series":[]}"#,
            r#"{"schema":"dps-timeline-v1","tick_ns":1,"ticks":0,"dropped":0}"#,
            r#"{"schema":"dps-timeline-v1","tick_ns":1,"ticks":0,"dropped":0,"series":[{"name":"x","kind":"bogus","samples":[]}]}"#,
            r#"{"schema":"dps-timeline-v1","tick_ns":1,"ticks":0,"dropped":0,"series":[{"name":"x","kind":"gauge","samples":[1.5]}]}"#,
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(TimelineDoc::from_json(&v).is_err(), "should reject: {bad}");
        }
    }
}
