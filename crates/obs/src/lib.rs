//! # `dps-obs` — observability for the production-system stack
//!
//! The paper's §5 argues that the dynamic approach's speed-up is
//! governed by three factors: the **degree of conflict** (how often
//! concurrent productions collide), the **wasted-work fraction `f`**
//! (execution time thrown away by aborts) and the per-production
//! execution-time distribution. Optimising any of them requires
//! *seeing* them first. This crate is the dependency-free seeing
//! apparatus, threaded through `dps-lock`, `dps-core` and `dps-bench`:
//!
//! * **[`Recorder`]** — the shared sink. Per-worker-slot [event
//!   rings](event) record the transaction lifecycle (`Begin` / `Grant`
//!   / `Block` / `Doom` / `Deadlock` / `Commit` / `Abort`-with-cause)
//!   with monotonic nanosecond timestamps from a common epoch;
//!   [`Recorder::history`] merges them into one global history on
//!   demand, and [`validate_history`] checks its well-formedness
//!   (recorded per-transaction histories are the raw material for any
//!   consistency or performance analysis — Biswas & Enea).
//! * **[Histograms](hist)** — fixed log₂-bucket latency histograms
//!   (p50/p95/p99/max) for the lock-wait, LHS-eval, RHS-act and commit
//!   phases of Figures 4.1/4.2.
//! * **Per-rule tables** — firing/abort breakdown per rule name.
//! * **[JSON](json)** — a hand-rolled writer *and* parser, so benches
//!   emit machine-readable reports and CI can shape-check them without
//!   `serde` (and [histories round-trip](history) for offline analysis).
//! * **[Analysis](analysis)** — the explanation layer over the raw
//!   stream: blocking/wait-for graph reconstruction, per-resource
//!   contention attribution, critical-path extraction (effective
//!   parallelism, wasted-work `f`) and the §3-Theorem-2 commit-sequence
//!   checker ([`analyze`]).
//!
//! Everything is toggleable and cheap: instrumentation sites hold an
//! `Option<Arc<Recorder>>`, so "off" costs one branch on a `None`.
//!
//! ```
//! use dps_obs::{EventKind, Phase, Recorder, validate_history};
//! use std::time::Duration;
//!
//! let rec = Recorder::default();
//! rec.record(0, EventKind::Begin);
//! rec.phase(Phase::LockWait, Duration::from_micros(12));
//! rec.record(0, EventKind::Commit);
//! rec.rule_fired("bump");
//!
//! validate_history(&rec.history()).unwrap();
//! let report = rec.report();
//! assert_eq!(report.commits, 1);
//! println!("{report}");                       // human
//! let doc = report.to_json().to_string_pretty(); // machine
//! assert!(doc.contains("\"lock_wait\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod hist;
pub mod history;
pub mod json;
mod recorder;
mod report;
pub mod timeline;

pub use analysis::{analyze, RunAnalysis, Verdict};
pub use event::{AbortCause, Event, EventKind, ESCALATE_ACTIONS, FAULT_KINDS};
pub use hist::{HistSnapshot, Histogram, Phase};
pub use history::{history_from_json, history_to_json};
pub use recorder::{validate_history, Recorder, RuleStat, DEFAULT_RING_CAPACITY, DEFAULT_SLOTS};
pub use report::{FanoutStats, ObsReport, RuleRow};
pub use timeline::{
    Series, SeriesKind, Telemetry, TelemetryConfig, TickHist, TimelineDoc, TIMELINE_SCHEMA,
};
