//! Class-partitioned relations with secondary ordered indexes.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

use crate::{Atom, Value, Wme, WmeId};

/// One relation: all live WMEs of a single class, with a secondary
/// **ordered** index per attribute (`attribute → value → ids`), serving
/// equality *and* range selections.
///
/// The indexes serve several masters: equality and range selections by
/// API users, and the statistics the catalogue exposes for
/// lock-escalation decisions. Range selections are type-segregated by
/// the [`Value`] total order (all `Int`s sort before all `Float`s, so a
/// numeric range should stick to one numeric type).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: BTreeMap<WmeId, Wme>,
    index: HashMap<Atom, BTreeMap<Value, HashSet<WmeId>>>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Looks up a tuple by id.
    pub fn get(&self, id: WmeId) -> Option<&Wme> {
        self.tuples.get(&id)
    }

    /// Returns `true` if the tuple is live in this relation.
    pub fn contains(&self, id: WmeId) -> bool {
        self.tuples.contains_key(&id)
    }

    /// Iterates tuples in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Wme> {
        self.tuples.values()
    }

    /// Equality selection via the secondary index: all tuples whose
    /// attribute `attr` equals `value` (strict equality; numeric coercion
    /// is the caller's concern).
    pub fn select_eq<'a>(&'a self, attr: &str, value: &Value) -> impl Iterator<Item = &'a Wme> {
        self.index
            .get(attr)
            .and_then(|by_val| by_val.get(value))
            .into_iter()
            .flatten()
            .filter_map(|id| self.tuples.get(id))
    }

    /// Number of tuples matching an equality selection, without
    /// materialising them.
    pub fn count_eq(&self, attr: &str, value: &Value) -> usize {
        self.index
            .get(attr)
            .and_then(|by_val| by_val.get(value))
            .map_or(0, HashSet::len)
    }

    /// Range selection via the ordered index: all tuples whose attribute
    /// `attr` lies in `[lo, hi]` bounds. `Bound::Unbounded` opens either
    /// end.
    ///
    /// ```
    /// # use dps_wm::{WorkingMemory, WmeData, Value};
    /// # use std::ops::Bound;
    /// let mut wm = WorkingMemory::new();
    /// for n in [1i64, 5, 9] { wm.insert(WmeData::new("t").with("n", n)); }
    /// let rel = wm.relation("t").unwrap();
    /// let hits: Vec<i64> = rel
    ///     .select_range("n", Bound::Included(&Value::Int(2)), Bound::Excluded(&Value::Int(9)))
    ///     .filter_map(|w| w.get("n").and_then(|v| v.as_i64()))
    ///     .collect();
    /// assert_eq!(hits, [5]);
    /// ```
    pub fn select_range<'a>(
        &'a self,
        attr: &str,
        lo: Bound<&'a Value>,
        hi: Bound<&'a Value>,
    ) -> impl Iterator<Item = &'a Wme> {
        self.index
            .get(attr)
            .into_iter()
            .flat_map(move |by_val| by_val.range::<Value, _>((lo, hi)))
            .flat_map(|(_, ids)| ids)
            .filter_map(|id| self.tuples.get(id))
    }

    /// Number of tuples in the range, without materialising them.
    pub fn count_range(&self, attr: &str, lo: Bound<&Value>, hi: Bound<&Value>) -> usize {
        self.index.get(attr).map_or(0, |by_val| {
            by_val
                .range::<Value, _>((lo, hi))
                .map(|(_, ids)| ids.len())
                .sum()
        })
    }

    /// The smallest and largest values of `attr` currently indexed.
    pub fn value_bounds(&self, attr: &str) -> Option<(&Value, &Value)> {
        let by_val = self.index.get(attr)?;
        let min = by_val.keys().next()?;
        let max = by_val.keys().next_back()?;
        Some((min, max))
    }

    /// Inserts a tuple. The caller (the store) guarantees id freshness.
    pub(crate) fn insert(&mut self, wme: Wme) {
        for (attr, value) in &wme.data.attrs {
            self.index
                .entry(attr.clone())
                .or_default()
                .entry(value.clone())
                .or_default()
                .insert(wme.id);
        }
        self.tuples.insert(wme.id, wme);
    }

    /// Removes a tuple, returning it when present.
    pub(crate) fn remove(&mut self, id: WmeId) -> Option<Wme> {
        let wme = self.tuples.remove(&id)?;
        for (attr, value) in &wme.data.attrs {
            if let Some(by_val) = self.index.get_mut(attr) {
                if let Some(ids) = by_val.get_mut(value) {
                    ids.remove(&id);
                    if ids.is_empty() {
                        by_val.remove(value);
                    }
                }
                if by_val.is_empty() {
                    self.index.remove(attr);
                }
            }
        }
        Some(wme)
    }

    /// Internal consistency check used by tests: every index entry points
    /// at a live tuple that actually carries that value, and every tuple
    /// attribute is indexed.
    #[doc(hidden)]
    pub fn check_index_invariants(&self) -> bool {
        for (attr, by_val) in &self.index {
            for (value, ids) in by_val {
                for id in ids {
                    match self.tuples.get(id) {
                        Some(w) if w.data.attrs.get(attr) == Some(value) => {}
                        _ => return false,
                    }
                }
            }
        }
        for wme in self.tuples.values() {
            for (attr, value) in &wme.data.attrs {
                let ok = self
                    .index
                    .get(attr)
                    .and_then(|bv| bv.get(value))
                    .is_some_and(|ids| ids.contains(&wme.id));
                if !ok {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WmeData;

    fn wme(id: u64, ts: u64, pairs: &[(&str, Value)]) -> Wme {
        let mut data = WmeData::new("c");
        for (a, v) in pairs {
            data.set(*a, v.clone());
        }
        Wme {
            id: WmeId(id),
            data,
            timestamp: ts,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut r = Relation::new();
        r.insert(wme(1, 1, &[("a", Value::Int(5))]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(WmeId(1)));
        let out = r.remove(WmeId(1)).unwrap();
        assert_eq!(out.id, WmeId(1));
        assert!(r.is_empty());
        assert!(r.check_index_invariants());
    }

    #[test]
    fn select_eq_uses_index() {
        let mut r = Relation::new();
        r.insert(wme(1, 1, &[("status", Value::from("open"))]));
        r.insert(wme(2, 2, &[("status", Value::from("open"))]));
        r.insert(wme(3, 3, &[("status", Value::from("closed"))]));
        let open: Vec<u64> = r
            .select_eq("status", &Value::from("open"))
            .map(|w| w.id.0)
            .collect();
        assert_eq!(open.len(), 2);
        assert!(open.contains(&1) && open.contains(&2));
        assert_eq!(r.count_eq("status", &Value::from("closed")), 1);
        assert_eq!(r.count_eq("status", &Value::from("missing")), 0);
        assert_eq!(r.count_eq("nope", &Value::from("open")), 0);
    }

    #[test]
    fn range_selection() {
        use std::ops::Bound::*;
        let mut r = Relation::new();
        for (id, v) in [(1u64, 2i64), (2, 5), (3, 5), (4, 9)] {
            r.insert(wme(id, id, &[("n", Value::Int(v))]));
        }
        let ids = |lo, hi| -> Vec<u64> {
            let mut v: Vec<u64> = r.select_range("n", lo, hi).map(|w| w.id.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            ids(Included(&Value::Int(3)), Included(&Value::Int(9))),
            [2, 3, 4]
        );
        assert_eq!(ids(Excluded(&Value::Int(5)), Unbounded), [4]);
        assert_eq!(ids(Unbounded, Excluded(&Value::Int(5))), [1]);
        assert_eq!(
            r.count_range("n", Included(&Value::Int(5)), Included(&Value::Int(5))),
            2
        );
        assert_eq!(r.count_range("zzz", Unbounded, Unbounded), 0);
        assert_eq!(r.value_bounds("n"), Some((&Value::Int(2), &Value::Int(9))));
        assert_eq!(r.value_bounds("zzz"), None);
    }

    #[test]
    fn range_is_type_segregated() {
        use std::ops::Bound::*;
        let mut r = Relation::new();
        r.insert(wme(1, 1, &[("v", Value::Int(5))]));
        r.insert(wme(2, 2, &[("v", Value::from("sym"))]));
        // An integer range never returns symbols.
        assert_eq!(
            r.select_range("v", Included(&Value::Int(0)), Included(&Value::Int(10)))
                .count(),
            1
        );
    }

    #[test]
    fn remove_cleans_empty_index_buckets() {
        let mut r = Relation::new();
        r.insert(wme(1, 1, &[("a", Value::Int(1)), ("b", Value::Int(2))]));
        r.remove(WmeId(1));
        assert!(r.index.is_empty());
        assert!(r.check_index_invariants());
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut r = Relation::new();
        r.insert(wme(5, 1, &[]));
        r.insert(wme(2, 2, &[]));
        r.insert(wme(9, 3, &[]));
        let ids: Vec<u64> = r.iter().map(|w| w.id.0).collect();
        assert_eq!(ids, [2, 5, 9]);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut r = Relation::new();
        assert!(r.remove(WmeId(7)).is_none());
    }

    #[test]
    fn invariants_hold_under_mixed_ops() {
        let mut r = Relation::new();
        for i in 0..50u64 {
            r.insert(wme(i, i, &[("k", Value::Int((i % 5) as i64))]));
        }
        for i in (0..50u64).step_by(3) {
            r.remove(WmeId(i));
        }
        assert!(r.check_index_invariants());
        assert_eq!(
            r.count_eq("k", &Value::Int(0)),
            r.select_eq("k", &Value::Int(0)).count()
        );
    }
}
