//! Cheaply cloneable interned-style strings for class names, attribute
//! names and symbolic values.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A cheaply cloneable immutable string.
///
/// Class names, attribute names and symbols occur in huge numbers of WMEs,
/// tokens and rule instantiations; `Atom` makes copying them a reference
/// count bump rather than a heap allocation. Equality and hashing are by
/// string content, so atoms behave like ordinary strings in maps.
///
/// ```
/// use dps_wm::Atom;
/// let a = Atom::from("goal");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "goal");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(Arc<str>);

impl Atom {
    /// Creates an atom from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Atom(Arc::from(s.as_ref()))
    }

    /// Returns the string content.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the length of the string in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the string is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::new(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom(Arc::from(s))
    }
}

impl From<&String> for Atom {
    fn from(s: &String) -> Self {
        Atom::new(s)
    }
}

impl Borrow<str> for Atom {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Atom {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Atom {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Atom {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_is_by_content() {
        let a = Atom::from("alpha");
        let b = Atom::new(String::from("alpha"));
        assert_eq!(a, b);
        assert_ne!(a, Atom::from("beta"));
    }

    #[test]
    fn clone_shares_allocation() {
        let a = Atom::from("shared");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn usable_as_str_key() {
        let mut m: HashMap<Atom, i32> = HashMap::new();
        m.insert(Atom::from("k"), 7);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(m.get("k"), Some(&7));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Atom::from("b"), Atom::from("a"), Atom::from("c")];
        v.sort();
        let s: Vec<&str> = v.iter().map(|a| a.as_str()).collect();
        assert_eq!(s, ["a", "b", "c"]);
    }

    #[test]
    fn display_and_debug() {
        let a = Atom::from("x");
        assert_eq!(format!("{a}"), "x");
        assert_eq!(format!("{a:?}"), "\"x\"");
    }

    #[test]
    fn emptiness() {
        assert!(Atom::from("").is_empty());
        assert_eq!(Atom::from("ab").len(), 2);
    }
}
