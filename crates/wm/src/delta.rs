//! Buffered RHS effects and the change log produced by applying them.
//!
//! The paper (§4.2) requires that "the WM content is atomically updated,
//! only when a production reaches its commit point". A worker therefore
//! accumulates its RHS effects in a [`DeltaSet`] while holding locks, and
//! the engine applies the whole set in one [`crate::WorkingMemory::apply`]
//! call at commit. The result is a list of [`Change`]s — the exact feed an
//! incremental matcher (Rete/TREAT) needs.

use std::collections::BTreeMap;

use crate::{Atom, Value, Wme, WmeData, WmeId};

/// One buffered RHS operation. `create`/`modify`/`delete` mirror the
/// paper's §2 RHS operation list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// `create`: insert a new element.
    Create(WmeData),
    /// `modify`: overwrite the listed attributes of an existing element.
    /// OPS5 semantics: the element is re-timestamped (remove + insert).
    Modify {
        /// Element to modify.
        id: WmeId,
        /// Attributes to overwrite (others are preserved).
        changes: BTreeMap<Atom, Value>,
    },
    /// `delete`: remove an element.
    Remove(WmeId),
}

/// An ordered collection of buffered operations forming one atomic update.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSet {
    ops: Vec<Delta>,
}

impl DeltaSet {
    /// Creates an empty delta set.
    pub fn new() -> Self {
        DeltaSet::default()
    }

    /// Buffers a `create`.
    pub fn create(&mut self, data: WmeData) {
        self.ops.push(Delta::Create(data));
    }

    /// Buffers a `modify` of selected attributes.
    pub fn modify(&mut self, id: WmeId, changes: impl IntoIterator<Item = (Atom, Value)>) {
        self.ops.push(Delta::Modify {
            id,
            changes: changes.into_iter().collect(),
        });
    }

    /// Buffers a `delete`.
    pub fn remove(&mut self, id: WmeId) {
        self.ops.push(Delta::Remove(id));
    }

    /// Appends another delta set after this one.
    pub fn extend(&mut self, other: DeltaSet) {
        self.ops.extend(other.ops);
    }

    /// The buffered operations in application order.
    pub fn ops(&self) -> &[Delta] {
        &self.ops
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Ids of pre-existing elements this delta set writes (modifies or
    /// removes). Used to derive the `W_a` lock set of an RHS.
    pub fn written_ids(&self) -> impl Iterator<Item = WmeId> + '_ {
        self.ops.iter().filter_map(|op| match op {
            Delta::Modify { id, .. } | Delta::Remove(id) => Some(*id),
            Delta::Create(_) => None,
        })
    }

    /// Classes into which this delta set inserts new elements. Inserts
    /// cannot lock a tuple id (it does not exist yet), so insertion
    /// conflicts are handled at relation granularity (§4.3 escalation).
    pub fn created_classes(&self) -> impl Iterator<Item = &Atom> {
        self.ops.iter().filter_map(|op| match op {
            Delta::Create(d) => Some(&d.class),
            _ => None,
        })
    }
}

impl FromIterator<Delta> for DeltaSet {
    fn from_iter<T: IntoIterator<Item = Delta>>(iter: T) -> Self {
        DeltaSet {
            ops: iter.into_iter().collect(),
        }
    }
}

/// One observable change to working memory, as seen by a matcher.
///
/// A `modify` appears as a `Removed` of the old element followed by an
/// `Added` of the new one (same id, fresh timestamp), which is exactly how
/// OPS5's Rete treats modifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Change {
    /// An element entered working memory.
    Added(Wme),
    /// An element left working memory.
    Removed(Wme),
}

impl Change {
    /// The element the change concerns.
    pub fn wme(&self) -> &Wme {
        match self {
            Change::Added(w) | Change::Removed(w) => w,
        }
    }

    /// `true` for `Added`.
    pub fn is_add(&self) -> bool {
        matches!(self, Change::Added(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_ops_in_order() {
        let mut d = DeltaSet::new();
        d.create(WmeData::new("a"));
        d.remove(WmeId(3));
        d.modify(WmeId(4), [(Atom::from("x"), Value::Int(1))]);
        assert_eq!(d.len(), 3);
        assert!(matches!(d.ops()[0], Delta::Create(_)));
        assert!(matches!(d.ops()[1], Delta::Remove(_)));
        assert!(matches!(d.ops()[2], Delta::Modify { .. }));
    }

    #[test]
    fn written_ids_excludes_creates() {
        let mut d = DeltaSet::new();
        d.create(WmeData::new("a"));
        d.remove(WmeId(3));
        d.modify(WmeId(4), []);
        let ids: Vec<WmeId> = d.written_ids().collect();
        assert_eq!(ids, [WmeId(3), WmeId(4)]);
    }

    #[test]
    fn created_classes_lists_insert_targets() {
        let mut d = DeltaSet::new();
        d.create(WmeData::new("a"));
        d.create(WmeData::new("b"));
        d.remove(WmeId(1));
        let cs: Vec<&str> = d.created_classes().map(|a| a.as_str()).collect();
        assert_eq!(cs, ["a", "b"]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = DeltaSet::new();
        a.remove(WmeId(1));
        let mut b = DeltaSet::new();
        b.remove(WmeId(2));
        a.extend(b);
        assert_eq!(a.written_ids().collect::<Vec<_>>(), [WmeId(1), WmeId(2)]);
    }

    #[test]
    fn change_accessors() {
        let w = Wme {
            id: WmeId(1),
            data: WmeData::new("c"),
            timestamp: 1,
        };
        let add = Change::Added(w.clone());
        let rem = Change::Removed(w.clone());
        assert!(add.is_add());
        assert!(!rem.is_add());
        assert_eq!(add.wme().id, WmeId(1));
    }
}
