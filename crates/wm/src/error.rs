//! Error type for working-memory operations.

use std::fmt;

use crate::WmeId;

/// Errors raised by working-memory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WmError {
    /// The referenced element does not exist (never inserted or removed).
    NoSuchWme(WmeId),
    /// A delta set referenced the same element in conflicting ways (e.g.
    /// modify after remove).
    ConflictingDelta(WmeId),
    /// The class is not registered in the catalogue and the store is in
    /// strict-schema mode.
    UnknownClass(String),
}

impl fmt::Display for WmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WmError::NoSuchWme(id) => write!(f, "no such working-memory element: {id}"),
            WmError::ConflictingDelta(id) => {
                write!(f, "delta set references {id} in conflicting ways")
            }
            WmError::UnknownClass(c) => write!(f, "unknown class {c:?} (strict schema mode)"),
        }
    }
}

impl std::error::Error for WmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            WmError::NoSuchWme(WmeId(3)).to_string(),
            "no such working-memory element: w3"
        );
        assert!(WmError::UnknownClass("x".into())
            .to_string()
            .contains("strict"));
        assert!(WmError::ConflictingDelta(WmeId(1))
            .to_string()
            .contains("w1"));
    }
}
