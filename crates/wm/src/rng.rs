//! A small deterministic PRNG (SplitMix64) used by the simulator, the
//! property-test harnesses and the benches.
//!
//! The workspace is deliberately dependency-free, so instead of pulling
//! in the `rand` crate we keep one tiny, seedable, reproducible
//! generator here in the base crate. It is **not** cryptographically
//! secure and is not meant to be; it exists to drive randomized tests
//! and synthetic workloads with stable, portable sequences.

/// A seedable SplitMix64 generator.
///
/// ```
/// use dps_wm::rng::SmallRng;
/// let mut a = SmallRng::seed_from_u64(42);
/// let mut b = SmallRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical sequences on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng {
            // Pre-mix so small consecutive seeds diverge immediately.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            self.random_f64() < p
        }
    }

    /// A uniform index in `0..n`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Modulo bias is negligible for the small ranges used in tests.
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// A uniform integer in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "bad range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = r.range_u64(3, 9);
            assert!((3..=9).contains(&u));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            assert!(r.index(4) < 4);
            let f = r.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
        let hits = (0..1000).filter(|_| r.random_bool(0.5)).count();
        assert!((300..700).contains(&hits), "p=0.5 should be near half: {hits}");
    }

    #[test]
    fn spread_over_small_range() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.index(6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells of 0..6 hit");
    }
}
